//! Persistence for ANALYZE results — the `pg_statistic` of this toy store.
//!
//! What a database durably stores after ANALYZE is not the estimator
//! object but the *evidence*: the sample, the method, and the relation
//! metadata; estimators are rebuilt deterministically on load. The format
//! is a self-describing line-oriented text format (no external
//! serialization dependency). Version 2 adds a per-entry FNV-1a checksum
//! so bit rot is detected at the damaged entry, not smeared across the
//! whole catalog:
//!
//! ```text
//! selest-statistics v2
//! stat <relation> <column> <kind> <n_rows> <domain_lo> <domain_hi>
//! sample <len> v1 v2 ... vlen
//! check <fnv1a64-hex-of-the-two-lines-above>
//! ```
//!
//! Version 1 files (no `check` lines) still load. Durability hardening:
//!
//! * [`save_to_path`] writes atomically with full durability ordering —
//!   temp file in the same directory, fsync file, fsync parent dir,
//!   rename, fsync parent dir again — so a crash mid-save leaves the
//!   previous file intact (never torn), and a crash *after* the rename
//!   cannot lose the new name to an unsynced directory; failures are
//!   typed [`EstimateError::Io`] values naming the path and operation;
//! * [`decode`] is strict and reports the 1-based line and byte offset of
//!   the first problem; it never panics and never silently truncates;
//!   the `*_from_path` loaders additionally stamp the file path onto
//!   every corruption error so `fsck` output names the exact site;
//! * [`decode_lenient`] recovers per entry: damaged entries are skipped
//!   and reported, intact entries still load — one flipped bit costs one
//!   column's statistics, not the catalog.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use selest_core::fault::EstimateError;
use selest_core::{Domain, SelectivityEstimator};

use crate::catalog::EstimatorKind;

/// Header of the legacy checksum-free format.
pub const HEADER_V1: &str = "selest-statistics v1";
/// Header of the current checksummed format.
pub const HEADER_V2: &str = "selest-statistics v2";

/// One persisted statistics entry: everything needed to rebuild the
/// estimator. Name and sample fields are `Arc`-backed so catalog exports
/// are views over the stored evidence, not copies of it (`Clone` is a
/// couple of refcount bumps).
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedStatistics {
    /// Relation name (no whitespace).
    pub relation: Arc<str>,
    /// Column name (no whitespace).
    pub column: Arc<str>,
    /// Estimator kind to rebuild.
    pub kind: EstimatorKind,
    /// Relation row count at ANALYZE time.
    pub n_rows: usize,
    /// Column domain.
    pub domain: Domain,
    /// The retained sample.
    pub sample: Arc<[f64]>,
}

impl PersistedStatistics {
    /// Rebuild the estimator from the persisted evidence. Panics on
    /// degenerate evidence; the serving path uses
    /// [`PersistedStatistics::try_rebuild`].
    pub fn rebuild(&self) -> Box<dyn SelectivityEstimator + Send + Sync> {
        crate::catalog::build_estimator_from_sample(&self.sample, self.domain, self.kind)
    }

    /// Panic-free rebuild: sanitizes the sample and converts construction
    /// failures into typed errors.
    pub fn try_rebuild(
        &self,
    ) -> Result<Box<dyn SelectivityEstimator + Send + Sync>, EstimateError> {
        crate::catalog::try_build_estimator_from_sample(&self.sample, self.domain, self.kind)
            .map(|(est, _audit)| est)
    }
}

/// 64-bit FNV-1a — the dependency-free checksum guarding each entry.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

pub(crate) fn kind_token(kind: EstimatorKind) -> &'static str {
    match kind {
        EstimatorKind::Uniform => "uniform",
        EstimatorKind::Sampling => "sampling",
        EstimatorKind::EquiWidth => "equiwidth",
        EstimatorKind::EquiDepth => "equidepth",
        EstimatorKind::MaxDiff => "maxdiff",
        EstimatorKind::Ash => "ash",
        EstimatorKind::Kernel => "kernel",
        EstimatorKind::Hybrid => "hybrid",
    }
}

pub(crate) fn parse_kind(token: &str) -> Result<EstimatorKind, String> {
    Ok(match token {
        "uniform" => EstimatorKind::Uniform,
        "sampling" => EstimatorKind::Sampling,
        "equiwidth" => EstimatorKind::EquiWidth,
        "equidepth" => EstimatorKind::EquiDepth,
        "maxdiff" => EstimatorKind::MaxDiff,
        "ash" => EstimatorKind::Ash,
        "kernel" => EstimatorKind::Kernel,
        "hybrid" => EstimatorKind::Hybrid,
        other => return Err(format!("unknown estimator kind {other:?}")),
    })
}

fn entry_lines(e: &PersistedStatistics) -> (String, String) {
    let stat = format!(
        "stat {} {} {} {} {} {}",
        e.relation,
        e.column,
        kind_token(e.kind),
        e.n_rows,
        e.domain.lo(),
        e.domain.hi()
    );
    let mut sample = format!("sample {}", e.sample.len());
    for v in e.sample.iter() {
        let _ = write!(sample, " {v}");
    }
    (stat, sample)
}

/// Serialize a set of statistics entries in the v2 (checksummed) format.
pub fn encode(entries: &[PersistedStatistics]) -> String {
    let mut out = String::from(HEADER_V2);
    out.push('\n');
    for e in entries {
        assert!(
            !e.relation.contains(char::is_whitespace) && !e.column.contains(char::is_whitespace),
            "relation/column names must not contain whitespace"
        );
        let (stat, sample) = entry_lines(e);
        let check = fnv1a64(format!("{stat}\n{sample}\n").as_bytes());
        let _ = writeln!(out, "{stat}\n{sample}\ncheck {check:016x}");
    }
    out
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Version {
    V1,
    V2,
}

fn corrupt(line: usize, message: impl Into<String>) -> EstimateError {
    EstimateError::CorruptEntry {
        path: None,
        line: line.max(1),
        offset: 0,
        message: message.into(),
    }
}

/// Byte offset of the start of each line of `text` (companion to
/// `text.lines()` indexing).
fn line_offsets(text: &str) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut pos = 0;
    for line in text.split_inclusive('\n') {
        offsets.push(pos);
        pos += line.len();
    }
    offsets
}

/// Stamp the byte offset of the damaged line onto a decode error, so
/// quarantine reports and `fsck` output name the exact corruption site.
fn stamp_offset(mut e: EstimateError, offsets: &[usize], text_len: usize) -> EstimateError {
    if let EstimateError::CorruptEntry { line, offset, .. } = &mut e {
        *offset = offsets
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(text_len);
    }
    e
}

/// Parse one entry starting at `lines[i]` (a non-empty line). Returns the
/// entry and the index just past it. Errors carry the 1-based line number
/// of the offending line.
fn parse_entry(
    lines: &[&str],
    i: usize,
    version: Version,
) -> Result<(PersistedStatistics, usize), EstimateError> {
    let stat_line = lines[i];
    let lineno = i + 1;
    let mut parts = stat_line.split_whitespace();
    if parts.next() != Some("stat") {
        return Err(corrupt(
            lineno,
            format!("expected 'stat' line, got {stat_line:?}"),
        ));
    }
    let relation = parts
        .next()
        .ok_or_else(|| corrupt(lineno, "missing relation"))?
        .to_owned();
    let column = parts
        .next()
        .ok_or_else(|| corrupt(lineno, "missing column"))?
        .to_owned();
    let kind = parse_kind(
        parts
            .next()
            .ok_or_else(|| corrupt(lineno, "missing kind"))?,
    )
    .map_err(|m| corrupt(lineno, m))?;
    let n_rows: usize = parts
        .next()
        .ok_or_else(|| corrupt(lineno, "missing n_rows"))?
        .parse()
        .map_err(|e| corrupt(lineno, format!("bad n_rows: {e}")))?;
    let lo: f64 = parts
        .next()
        .ok_or_else(|| corrupt(lineno, "missing domain lo"))?
        .parse()
        .map_err(|e| corrupt(lineno, format!("bad domain lo: {e}")))?;
    let hi: f64 = parts
        .next()
        .ok_or_else(|| corrupt(lineno, "missing domain hi"))?
        .parse()
        .map_err(|e| corrupt(lineno, format!("bad domain hi: {e}")))?;
    if let Some(extra) = parts.next() {
        return Err(corrupt(
            lineno,
            format!("trailing token {extra:?} on 'stat' line"),
        ));
    }
    let domain =
        Domain::try_new(lo, hi).map_err(|e| corrupt(lineno, format!("invalid domain: {e}")))?;

    let sample_line = *lines
        .get(i + 1)
        .ok_or_else(|| corrupt(lineno + 1, "missing 'sample' line (truncated file?)"))?;
    let sample_lineno = i + 2;
    let mut sp = sample_line.split_whitespace();
    if sp.next() != Some("sample") {
        return Err(corrupt(
            sample_lineno,
            format!("expected 'sample' line, got {sample_line:?}"),
        ));
    }
    let len: usize = sp
        .next()
        .ok_or_else(|| corrupt(sample_lineno, "missing sample length"))?
        .parse()
        .map_err(|e| corrupt(sample_lineno, format!("bad sample length: {e}")))?;
    let sample: Vec<f64> = sp
        .map(|t| {
            t.parse::<f64>()
                .map_err(|e| corrupt(sample_lineno, format!("bad sample value {t:?}: {e}")))
        })
        .collect::<Result<_, _>>()?;
    if sample.len() != len {
        return Err(corrupt(
            sample_lineno,
            format!(
                "sample length mismatch: header says {len}, found {}",
                sample.len()
            ),
        ));
    }

    let next = match version {
        Version::V1 => i + 2,
        Version::V2 => {
            let check_line = *lines
                .get(i + 2)
                .ok_or_else(|| corrupt(lineno + 2, "missing 'check' line (truncated file?)"))?;
            let check_lineno = i + 3;
            let mut cp = check_line.split_whitespace();
            if cp.next() != Some("check") {
                return Err(corrupt(
                    check_lineno,
                    format!("expected 'check' line, got {check_line:?}"),
                ));
            }
            let stored = u64::from_str_radix(
                cp.next()
                    .ok_or_else(|| corrupt(check_lineno, "missing checksum"))?,
                16,
            )
            .map_err(|e| corrupt(check_lineno, format!("bad checksum: {e}")))?;
            let actual = fnv1a64(format!("{stat_line}\n{sample_line}\n").as_bytes());
            if stored != actual {
                return Err(corrupt(
                    check_lineno,
                    format!("checksum mismatch: stored {stored:016x}, computed {actual:016x}"),
                ));
            }
            i + 3
        }
    };
    Ok((
        PersistedStatistics {
            relation: relation.into(),
            column: column.into(),
            kind,
            n_rows,
            domain,
            sample: sample.into(),
        },
        next,
    ))
}

fn parse_header(lines: &[&str]) -> Result<Version, EstimateError> {
    match lines.first() {
        Some(&h) if h == HEADER_V1 => Ok(Version::V1),
        Some(&h) if h == HEADER_V2 => Ok(Version::V2),
        Some(&h) => Err(corrupt(1, format!("bad header: {h:?}"))),
        None => Err(corrupt(1, "empty statistics file")),
    }
}

/// Parse a serialized statistics file (v1 or v2), strictly: the first
/// damaged entry aborts the load with the 1-based line number of the
/// problem. Never panics, never silently drops an entry.
pub fn decode(text: &str) -> Result<Vec<PersistedStatistics>, EstimateError> {
    let lines: Vec<&str> = text.lines().collect();
    let offsets = line_offsets(text);
    let stamp = |e| stamp_offset(e, &offsets, text.len());
    let version = parse_header(&lines).map_err(stamp)?;
    let mut entries = Vec::new();
    let mut i = 1;
    while i < lines.len() {
        if lines[i].trim().is_empty() {
            i += 1;
            continue;
        }
        let (entry, next) = parse_entry(&lines, i, version).map_err(stamp)?;
        entries.push(entry);
        i = next;
    }
    Ok(entries)
}

/// Outcome of a lenient decode: the entries that survived and one error
/// per entry that did not.
#[derive(Debug)]
pub struct DecodeReport {
    /// Entries that validated.
    pub entries: Vec<PersistedStatistics>,
    /// One [`EstimateError::CorruptEntry`] per damaged entry, in file
    /// order.
    pub errors: Vec<EstimateError>,
}

/// Parse a statistics file, skipping damaged entries instead of aborting:
/// after an error, scanning resumes at the next `stat` line. A header that
/// does not parse still fails the whole file — with no version there is no
/// grammar to recover in.
pub fn decode_lenient(text: &str) -> Result<DecodeReport, EstimateError> {
    let lines: Vec<&str> = text.lines().collect();
    let offsets = line_offsets(text);
    let stamp = |e| stamp_offset(e, &offsets, text.len());
    let version = parse_header(&lines).map_err(stamp)?;
    let mut report = DecodeReport {
        entries: Vec::new(),
        errors: Vec::new(),
    };
    let mut i = 1;
    while i < lines.len() {
        if lines[i].trim().is_empty() {
            i += 1;
            continue;
        }
        match parse_entry(&lines, i, version) {
            Ok((entry, next)) => {
                report.entries.push(entry);
                i = next;
            }
            Err(e) => {
                report.errors.push(stamp(e));
                // Resume at the next plausible entry start.
                i += 1;
                while i < lines.len() && !lines[i].starts_with("stat ") {
                    i += 1;
                }
            }
        }
    }
    Ok(report)
}

pub(crate) fn temp_sibling(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Lower an `io::Error` onto the typed vocabulary with path + operation
/// context.
pub(crate) fn io_error(path: &Path, op: &str, e: std::io::Error) -> EstimateError {
    EstimateError::Io {
        path: path.display().to_string(),
        op: op.to_owned(),
        message: e.to_string(),
    }
}

/// The directory whose entry table holds `path` (the thing a rename
/// mutates, and therefore the thing that needs an fsync of its own).
pub(crate) fn parent_dir(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// fsync a directory so a completed rename (or a freshly created file's
/// entry) survives power loss. On filesystems where directories cannot be
/// opened for sync this degrades to a typed error, never a panic.
pub(crate) fn fsync_dir(dir: &Path) -> Result<(), EstimateError> {
    let d = std::fs::File::open(dir).map_err(|e| io_error(dir, "open parent dir", e))?;
    d.sync_all()
        .map_err(|e| io_error(dir, "fsync parent dir", e))
}

/// Atomically persist `entries` to `path` with the full durability
/// ordering: encode to a temp file in the same directory, fsync the file,
/// fsync the parent directory (so the temp entry is durable before it is
/// committed), rename over the target, and fsync the parent again (so the
/// rename itself survives power loss — without it, some filesystems may
/// forget the new name entirely). A crash at any point leaves either the
/// old file or the new one — never a torn mix. Failures come back as
/// typed [`EstimateError::Io`] values naming the path and operation.
pub fn save_to_path(path: &Path, entries: &[PersistedStatistics]) -> Result<(), EstimateError> {
    write_atomic_durably(path, encode(entries).as_bytes())
}

/// The write→fsync→rename→fsync-dir sequence shared by [`save_to_path`]
/// and the durable store's generation/manifest writers.
pub(crate) fn write_atomic_durably(path: &Path, bytes: &[u8]) -> Result<(), EstimateError> {
    let tmp = temp_sibling(path);
    let parent = parent_dir(path);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_error(&tmp, "create temp", e))?;
        f.write_all(bytes)
            .map_err(|e| io_error(&tmp, "write temp", e))?;
        f.sync_all().map_err(|e| io_error(&tmp, "fsync temp", e))?;
        drop(f);
        fsync_dir(&parent)?;
        std::fs::rename(&tmp, path).map_err(|e| io_error(path, "rename temp over target", e))?;
        fsync_dir(&parent)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Load and strictly decode a statistics file; read failures surface as
/// [`EstimateError::Io`] and decode failures as
/// [`EstimateError::CorruptEntry`] carrying the file path and the
/// line/byte offset of the damage.
pub fn load_from_path(path: &Path) -> Result<Vec<PersistedStatistics>, EstimateError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_error(path, "read", e))?;
    decode(&text).map_err(|e| e.with_path(path))
}

/// Load with per-entry recovery; only an unreadable file or an unusable
/// header fails the call. Per-entry errors carry the file path and the
/// line/byte offset of each corruption site.
pub fn load_lenient_from_path(path: &Path) -> Result<DecodeReport, EstimateError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_error(path, "read", e))?;
    decode_lenient(&text)
        .map(|mut report| {
            report.errors = report
                .errors
                .into_iter()
                .map(|e| e.with_path(path))
                .collect();
            report
        })
        .map_err(|e| e.with_path(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use selest_core::RangeQuery;

    fn entry() -> PersistedStatistics {
        PersistedStatistics {
            relation: "orders".into(),
            column: "amount".into(),
            kind: EstimatorKind::EquiWidth,
            n_rows: 10_000,
            domain: Domain::new(0.0, 1_000.0),
            sample: (0..200).map(|i| i as f64 * 5.0).collect(),
        }
    }

    fn second_entry() -> PersistedStatistics {
        PersistedStatistics {
            column: "day".into(),
            kind: EstimatorKind::Kernel,
            ..entry()
        }
    }

    /// The v1 rendering of an entry set, for backward-compat tests.
    fn encode_v1(entries: &[PersistedStatistics]) -> String {
        let mut out = String::from(HEADER_V1);
        out.push('\n');
        for e in entries {
            let (stat, sample) = entry_lines(e);
            let _ = writeln!(out, "{stat}\n{sample}");
        }
        out
    }

    #[test]
    fn round_trip_preserves_everything() {
        let entries = vec![entry(), second_entry()];
        let text = encode(&entries);
        assert!(text.starts_with(HEADER_V2));
        let back = decode(&text).expect("decode");
        assert_eq!(back, entries);
    }

    #[test]
    fn v1_files_still_load() {
        let entries = vec![entry(), second_entry()];
        let text = encode_v1(&entries);
        let back = decode(&text).expect("v1 decode");
        assert_eq!(back, entries);
        let report = decode_lenient(&text).expect("v1 lenient decode");
        assert_eq!(report.entries, entries);
        assert!(report.errors.is_empty());
    }

    #[test]
    fn rebuilt_estimators_answer_identically() {
        let e = entry();
        let text = encode(std::slice::from_ref(&e));
        let back = decode(&text).expect("decode");
        let est_a = e.rebuild();
        let est_b = back[0].rebuild();
        for (a, b) in [(0.0, 100.0), (250.0, 600.0), (990.0, 1_000.0)] {
            let q = RangeQuery::new(a, b);
            assert_eq!(est_a.selectivity(&q), est_b.selectivity(&q), "[{a},{b}]");
        }
    }

    #[test]
    fn rebuild_reproduces_the_original_estimator() {
        // Persist -> rebuild must equal building directly from the sample.
        let e = entry();
        let rebuilt = e.rebuild();
        let direct = selest_histogram::equi_width(
            &e.sample,
            e.domain,
            selest_histogram::binrules::BinRule::bins(
                &selest_histogram::NormalScaleBins,
                &e.sample,
                &e.domain,
            ),
        );
        let q = RangeQuery::new(123.0, 456.0);
        assert!((rebuilt.selectivity(&q) - direct.selectivity(&q)).abs() < 1e-12);
    }

    #[test]
    fn try_rebuild_survives_degenerate_evidence() {
        let mut e = entry();
        e.sample = vec![f64::NAN, f64::INFINITY].into();
        assert_eq!(e.try_rebuild().err(), Some(EstimateError::EmptySample));
        // A zero-variance sample breaks the normal-scale bin rule; the
        // construction panic must come back as a typed error, not unwind.
        e.sample = vec![500.0; 10].into();
        match e.try_rebuild() {
            Err(EstimateError::Panicked { stage, message }) => {
                assert_eq!(stage, selest_core::fault::FaultStage::Build);
                assert!(message.contains("constant"), "{message:?}");
            }
            other => panic!("expected a caught build panic, got {:?}", other.err()),
        }
        // The sampling rung digests the same evidence fine — that is the
        // degradation ladder's next stop.
        e.kind = EstimatorKind::Sampling;
        assert!(e.try_rebuild().is_ok());
    }

    #[test]
    fn decode_rejects_garbage_with_line_numbers() {
        let expect_line = |text: &str, line: usize, needle: &str| match decode(text) {
            Err(EstimateError::CorruptEntry {
                line: l, message, ..
            }) => {
                assert_eq!(l, line, "wrong line for {text:?}: {message}");
                assert!(message.contains(needle), "{message:?} missing {needle:?}");
            }
            other => panic!("expected CorruptEntry for {text:?}, got {other:?}"),
        };
        expect_line("not a statistics file", 1, "bad header");
        expect_line("", 1, "empty");
        expect_line("selest-statistics v1\nstat only three", 2, "missing kind");
        expect_line(
            "selest-statistics v1\nstat r c warp 10 0 1\nsample 1 1",
            2,
            "unknown estimator kind",
        );
        expect_line(
            "selest-statistics v1\nstat r c kernel 10 0 1\nsample 3 1 2",
            3,
            "length mismatch",
        );
        expect_line(
            "selest-statistics v1\nstat r c kernel 10 0 1",
            3,
            "truncated",
        );
        expect_line(
            "selest-statistics v1\nstat r c kernel ten 0 1\nsample 0",
            2,
            "bad n_rows",
        );
        expect_line(
            "selest-statistics v1\nstat r c kernel 10 5 1\nsample 0",
            2,
            "invalid domain",
        );
        expect_line(
            "selest-statistics v1\nstat r c kernel 10 0 1\nsample 1 oops",
            3,
            "bad sample value",
        );
        expect_line(
            "selest-statistics v1\nstat r c kernel 10 0 1 extra\nsample 0",
            2,
            "trailing token",
        );
    }

    #[test]
    fn bitflips_fail_the_checksum() {
        let text = encode(&[entry()]);
        // Flip one digit inside the sample payload: v1 would silently load
        // a wrong value; v2 must refuse the entry.
        let flipped = text.replacen(" 495 ", " 496 ", 1);
        assert_ne!(flipped, text, "fixture value must appear in the sample");
        match decode(&flipped) {
            Err(EstimateError::CorruptEntry { message, .. }) => {
                assert!(message.contains("checksum mismatch"), "{message:?}");
            }
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn truncated_v2_file_reports_the_cut() {
        let text = encode(&[entry()]);
        // Cut mid-sample-line: the sample length header no longer matches.
        let cut = &text[..text.len() - 40];
        assert!(decode(cut).is_err());
    }

    #[test]
    fn lenient_decode_skips_only_the_damaged_entry() {
        let good = vec![entry(), second_entry()];
        let mut text = encode(&good);
        // Corrupt the first entry's checksum line.
        text = text.replacen("check ", "check 0deadbeef", 1);
        let report = decode_lenient(&text).expect("header is fine");
        assert_eq!(report.entries.len(), 1, "second entry must survive");
        assert_eq!(&*report.entries[0].column, "day");
        assert_eq!(report.errors.len(), 1);
        match &report.errors[0] {
            EstimateError::CorruptEntry { message, .. } => {
                assert!(
                    message.contains("checksum") || message.contains("bad checksum"),
                    "{message:?}"
                );
            }
            other => panic!("expected CorruptEntry, got {other:?}"),
        }
    }

    /// Scratch space under the workspace target dir (kept out of /tmp so
    /// test artifacts stay inside the repository checkout).
    fn scratch_dir() -> PathBuf {
        PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/persist-test"
        ))
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let dir = scratch_dir();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("stats.txt");
        let first = vec![entry()];
        save_to_path(&path, &first).expect("save");
        assert_eq!(load_from_path(&path).expect("load"), first);
        assert!(
            !temp_sibling(&path).exists(),
            "temp file must be renamed away"
        );
        // Overwrite with new content: readers see old-or-new, never torn.
        let second = vec![entry(), second_entry()];
        save_to_path(&path, &second).expect("re-save");
        assert_eq!(load_from_path(&path).expect("reload"), second);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lenient_load_recovers_from_on_disk_damage() {
        let dir = scratch_dir();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("damaged.txt");
        let mut text = encode(&[entry(), second_entry()]);
        text = text.replacen("sample 200", "sample 999", 1); // break entry 1
        std::fs::write(&path, &text).expect("write");
        let report = load_lenient_from_path(&path).expect("lenient load");
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.errors.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_catalog_round_trips() {
        let text = encode(&[]);
        assert_eq!(decode(&text).expect("decode"), Vec::new());
    }

    #[test]
    fn load_errors_name_the_file_line_and_byte_offset() {
        let dir = scratch_dir();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("sited.txt");
        let text = encode(&[entry(), second_entry()]);
        // Damage the first entry's sample-length header so the reported
        // site sits past the file header (line > 1, offset > 0).
        let damaged = text.replacen("sample 200", "sample 999", 1);
        let damage_line = 3; // header, stat line, then the sample line
        std::fs::write(&path, &damaged).expect("write");
        match load_from_path(&path) {
            Err(EstimateError::CorruptEntry {
                path: Some(p),
                line,
                offset,
                ..
            }) => {
                assert!(p.ends_with("sited.txt"), "path context missing: {p}");
                assert_eq!(line, damage_line);
                // The offset must point at the start of the reported line.
                assert_eq!(
                    damaged[..offset].matches('\n').count(),
                    line - 1,
                    "offset {offset} does not start line {line}"
                );
            }
            other => panic!("expected sited CorruptEntry, got {other:?}"),
        }
        let report = load_lenient_from_path(&path).expect("lenient");
        assert_eq!(report.errors.len(), 1);
        match &report.errors[0] {
            EstimateError::CorruptEntry { path: Some(p), .. } => {
                assert!(p.ends_with("sited.txt"));
            }
            other => panic!("expected sited CorruptEntry, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_from_missing_file_is_a_typed_io_error() {
        let path = scratch_dir().join("no-such-file.txt");
        match load_from_path(&path) {
            Err(EstimateError::Io { path: p, op, .. }) => {
                assert!(p.ends_with("no-such-file.txt"), "{p}");
                assert_eq!(op, "read");
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
