//! Persistence for ANALYZE results — the `pg_statistic` of this toy store.
//!
//! What a database durably stores after ANALYZE is not the estimator
//! object but the *evidence*: the sample, the method, and the relation
//! metadata; estimators are rebuilt deterministically on load. The format
//! is a self-describing line-oriented text format (no external
//! serialization dependency):
//!
//! ```text
//! selest-statistics v1
//! stat <relation> <column> <kind> <n_rows> <domain_lo> <domain_hi>
//! sample <len> v1 v2 ... vlen
//! ```

use std::fmt::Write as _;

use selest_core::{Domain, SelectivityEstimator};

use crate::catalog::EstimatorKind;

/// One persisted statistics entry: everything needed to rebuild the
/// estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedStatistics {
    /// Relation name (no whitespace).
    pub relation: String,
    /// Column name (no whitespace).
    pub column: String,
    /// Estimator kind to rebuild.
    pub kind: EstimatorKind,
    /// Relation row count at ANALYZE time.
    pub n_rows: usize,
    /// Column domain.
    pub domain: Domain,
    /// The retained sample.
    pub sample: Vec<f64>,
}

impl PersistedStatistics {
    /// Rebuild the estimator from the persisted evidence.
    pub fn rebuild(&self) -> Box<dyn SelectivityEstimator + Send + Sync> {
        crate::catalog::build_estimator_from_sample(&self.sample, self.domain, self.kind)
    }
}

fn kind_token(kind: EstimatorKind) -> &'static str {
    match kind {
        EstimatorKind::Uniform => "uniform",
        EstimatorKind::Sampling => "sampling",
        EstimatorKind::EquiWidth => "equiwidth",
        EstimatorKind::EquiDepth => "equidepth",
        EstimatorKind::MaxDiff => "maxdiff",
        EstimatorKind::Ash => "ash",
        EstimatorKind::Kernel => "kernel",
        EstimatorKind::Hybrid => "hybrid",
    }
}

fn parse_kind(token: &str) -> Result<EstimatorKind, String> {
    Ok(match token {
        "uniform" => EstimatorKind::Uniform,
        "sampling" => EstimatorKind::Sampling,
        "equiwidth" => EstimatorKind::EquiWidth,
        "equidepth" => EstimatorKind::EquiDepth,
        "maxdiff" => EstimatorKind::MaxDiff,
        "ash" => EstimatorKind::Ash,
        "kernel" => EstimatorKind::Kernel,
        "hybrid" => EstimatorKind::Hybrid,
        other => return Err(format!("unknown estimator kind {other:?}")),
    })
}

/// Serialize a set of statistics entries.
pub fn encode(entries: &[PersistedStatistics]) -> String {
    let mut out = String::from("selest-statistics v1\n");
    for e in entries {
        assert!(
            !e.relation.contains(char::is_whitespace) && !e.column.contains(char::is_whitespace),
            "relation/column names must not contain whitespace"
        );
        let _ = writeln!(
            out,
            "stat {} {} {} {} {} {}",
            e.relation,
            e.column,
            kind_token(e.kind),
            e.n_rows,
            e.domain.lo(),
            e.domain.hi()
        );
        let _ = write!(out, "sample {}", e.sample.len());
        for v in &e.sample {
            let _ = write!(out, " {v}");
        }
        out.push('\n');
    }
    out
}

/// Parse a serialized statistics file.
pub fn decode(text: &str) -> Result<Vec<PersistedStatistics>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some("selest-statistics v1") => {}
        other => return Err(format!("bad header: {other:?}")),
    }
    let mut entries = Vec::new();
    while let Some(line) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("stat") {
            return Err(format!("expected 'stat' line, got {line:?}"));
        }
        let relation = parts.next().ok_or("missing relation")?.to_owned();
        let column = parts.next().ok_or("missing column")?.to_owned();
        let kind = parse_kind(parts.next().ok_or("missing kind")?)?;
        let n_rows: usize = parts
            .next()
            .ok_or("missing n_rows")?
            .parse()
            .map_err(|e| format!("bad n_rows: {e}"))?;
        let lo: f64 = parts
            .next()
            .ok_or("missing domain lo")?
            .parse()
            .map_err(|e| format!("bad domain lo: {e}"))?;
        let hi: f64 = parts
            .next()
            .ok_or("missing domain hi")?
            .parse()
            .map_err(|e| format!("bad domain hi: {e}"))?;
        let sample_line = lines.next().ok_or("missing sample line")?;
        let mut sp = sample_line.split_whitespace();
        if sp.next() != Some("sample") {
            return Err(format!("expected 'sample' line, got {sample_line:?}"));
        }
        let len: usize = sp
            .next()
            .ok_or("missing sample length")?
            .parse()
            .map_err(|e| format!("bad sample length: {e}"))?;
        let sample: Vec<f64> = sp
            .map(|t| t.parse::<f64>().map_err(|e| format!("bad sample value: {e}")))
            .collect::<Result<_, _>>()?;
        if sample.len() != len {
            return Err(format!("sample length mismatch: header {len}, got {}", sample.len()));
        }
        entries.push(PersistedStatistics {
            relation,
            column,
            kind,
            n_rows,
            domain: Domain::new(lo, hi),
            sample,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selest_core::RangeQuery;

    fn entry() -> PersistedStatistics {
        PersistedStatistics {
            relation: "orders".into(),
            column: "amount".into(),
            kind: EstimatorKind::EquiWidth,
            n_rows: 10_000,
            domain: Domain::new(0.0, 1_000.0),
            sample: (0..200).map(|i| i as f64 * 5.0).collect(),
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let entries = vec![
            entry(),
            PersistedStatistics {
                column: "day".into(),
                kind: EstimatorKind::Kernel,
                ..entry()
            },
        ];
        let text = encode(&entries);
        let back = decode(&text).expect("decode");
        assert_eq!(back, entries);
    }

    #[test]
    fn rebuilt_estimators_answer_identically() {
        let e = entry();
        let text = encode(&[e.clone()]);
        let back = decode(&text).expect("decode");
        let est_a = e.rebuild();
        let est_b = back[0].rebuild();
        for (a, b) in [(0.0, 100.0), (250.0, 600.0), (990.0, 1_000.0)] {
            let q = RangeQuery::new(a, b);
            assert_eq!(est_a.selectivity(&q), est_b.selectivity(&q), "[{a},{b}]");
        }
    }

    #[test]
    fn rebuild_reproduces_the_original_estimator() {
        // Persist -> rebuild must equal building directly from the sample.
        let e = entry();
        let rebuilt = e.rebuild();
        let direct = selest_histogram::equi_width(
            &e.sample,
            e.domain,
            selest_histogram::binrules::BinRule::bins(
                &selest_histogram::NormalScaleBins,
                &e.sample,
                &e.domain,
            ),
        );
        let q = RangeQuery::new(123.0, 456.0);
        assert!((rebuilt.selectivity(&q) - direct.selectivity(&q)).abs() < 1e-12);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("not a statistics file").is_err());
        assert!(decode("selest-statistics v1\nstat only three").is_err());
        assert!(decode("selest-statistics v1\nstat r c kernel 10 0 1\nsample 3 1 2").is_err());
        assert!(
            decode("selest-statistics v1\nstat r c warp 10 0 1\nsample 1 1").is_err(),
            "unknown kind must fail"
        );
    }

    #[test]
    fn empty_catalog_round_trips() {
        let text = encode(&[]);
        assert_eq!(decode(&text).expect("decode"), Vec::new());
    }
}
