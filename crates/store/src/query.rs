//! A small typed query layer over the column store: conjunctions of range
//! predicates, estimator-driven planning, and execution — the full loop a
//! database runs for `SELECT .. WHERE a BETWEEN .. AND b BETWEEN ..`.
//!
//! [`Database`] owns relations, sorted indexes, the per-column statistics
//! catalog, and optional per-pair joint statistics. [`Database::explain`]
//! shows what the optimizer would do and why (estimated cardinalities per
//! predicate); [`Database::execute`] runs the chosen plan and reports both
//! the result and the plan for post-hoc accuracy checks.

use std::collections::HashMap;

use selest_core::RangeQuery;

use crate::catalog::{AnalyzeConfig, StatisticsCatalog};
use crate::conjunctive::{CorrelationModel, PairStatistics};
use crate::index::SortedIndex;
use crate::planner::{FETCH_COST_PER_ROW, INDEX_PROBE_COST, SCAN_COST_PER_ROW};
use crate::relation::Relation;

/// One range predicate: `column BETWEEN range.a() AND range.b()`.
#[derive(Debug, Clone)]
pub struct RangePredicate {
    /// Column name.
    pub column: String,
    /// The closed range.
    pub range: RangeQuery,
}

/// A conjunctive selection over one relation.
#[derive(Debug, Clone)]
pub struct SelectQuery {
    /// Target relation.
    pub relation: String,
    /// AND-combined predicates (at least one).
    pub predicates: Vec<RangePredicate>,
}

impl SelectQuery {
    /// Build a query; panics on an empty predicate list.
    pub fn new(relation: &str, predicates: Vec<RangePredicate>) -> Self {
        assert!(
            !predicates.is_empty(),
            "SelectQuery needs at least one predicate"
        );
        SelectQuery {
            relation: relation.to_owned(),
            predicates,
        }
    }
}

/// The access path the planner chose.
#[derive(Debug, Clone, PartialEq)]
pub enum ChosenPath {
    /// Full scan, filtering all predicates.
    SeqScan,
    /// Probe the index on the named column, then filter the rest.
    IndexScan {
        /// The driving indexed column.
        column: String,
    },
}

/// Planner output: path, estimates, costs.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The chosen access path.
    pub path: ChosenPath,
    /// Estimated rows matching the whole conjunction.
    pub estimated_rows: f64,
    /// Estimated rows per predicate, in query order.
    pub per_predicate_rows: Vec<f64>,
    /// Estimated cost of the chosen path.
    pub estimated_cost: f64,
}

/// Execution output: matching row ids plus the plan that produced them.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Row ids matching all predicates, ascending.
    pub rows: Vec<u32>,
    /// The plan that ran.
    pub explanation: Explanation,
}

/// A tiny single-node database: relations, indexes, statistics.
///
/// # Examples
///
/// ```
/// use selest_core::{Domain, RangeQuery};
/// use selest_store::{AnalyzeConfig, Column, Database, RangePredicate, Relation, SelectQuery};
///
/// let domain = Domain::new(0.0, 1000.0);
/// let values: Vec<f64> = (0..5000).map(|i| (i as f64 * 7.31) % 1000.0).collect();
/// let mut rel = Relation::new("t");
/// rel.add_column(Column::new("x", domain, values));
///
/// let mut db = Database::new();
/// db.add_relation(rel);
/// db.create_index("t", "x");
/// db.analyze("t", &AnalyzeConfig::default());
///
/// let q = SelectQuery::new("t", vec![RangePredicate {
///     column: "x".into(),
///     range: RangeQuery::new(100.0, 150.0),
/// }]);
/// let result = db.execute(&q);
/// let est = db.estimate_rows(&q);
/// assert!((est - result.rows.len() as f64).abs() < 40.0);
/// ```
#[derive(Default)]
pub struct Database {
    relations: HashMap<String, Relation>,
    indexes: HashMap<(String, String), SortedIndex>,
    catalog: StatisticsCatalog,
    pair_stats: HashMap<(String, String, String), PairStatistics>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a relation (replacing any previous one of the same name).
    pub fn add_relation(&mut self, relation: Relation) {
        self.relations.insert(relation.name().to_owned(), relation);
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Build a sorted index on `relation.column`.
    pub fn create_index(&mut self, relation: &str, column: &str) {
        let rel = self
            .relations
            .get(relation)
            .unwrap_or_else(|| panic!("no relation {relation}"));
        let col = rel
            .column(column)
            .unwrap_or_else(|| panic!("no column {column} in {relation}"));
        self.indexes.insert(
            (relation.to_owned(), column.to_owned()),
            SortedIndex::build(col),
        );
    }

    /// ANALYZE every column of a relation.
    pub fn analyze(&mut self, relation: &str, config: &AnalyzeConfig) {
        let rel = self
            .relations
            .get(relation)
            .unwrap_or_else(|| panic!("no relation {relation}"));
        self.catalog.analyze(rel, config);
    }

    /// ANALYZE a column pair jointly (enables the 2-D correlation model
    /// for conjunctions over exactly these two columns).
    pub fn analyze_pair(
        &mut self,
        relation: &str,
        col_x: &str,
        col_y: &str,
        config: &AnalyzeConfig,
    ) {
        let rel = self
            .relations
            .get(relation)
            .unwrap_or_else(|| panic!("no relation {relation}"));
        let stats = PairStatistics::analyze(rel, col_x, col_y, config);
        self.pair_stats.insert(
            (relation.to_owned(), col_x.to_owned(), col_y.to_owned()),
            stats,
        );
    }

    /// Estimated rows matching a conjunction. Uses joint pair statistics
    /// when they exist for a two-predicate query, the independence product
    /// of per-column statistics otherwise.
    pub fn estimate_rows(&self, q: &SelectQuery) -> f64 {
        let rel = self
            .relations
            .get(&q.relation)
            .unwrap_or_else(|| panic!("no relation {}", q.relation));
        // Joint model for exactly two predicates with pair statistics
        // (either column order).
        if let [p1, p2] = q.predicates.as_slice() {
            let fwd = (q.relation.clone(), p1.column.clone(), p2.column.clone());
            let rev = (q.relation.clone(), p2.column.clone(), p1.column.clone());
            if let Some(ps) = self.pair_stats.get(&fwd) {
                return ps.estimate_rows(&p1.range, &p2.range, CorrelationModel::Joint2d);
            }
            if let Some(ps) = self.pair_stats.get(&rev) {
                return ps.estimate_rows(&p2.range, &p1.range, CorrelationModel::Joint2d);
            }
        }
        // Independence product.
        let mut sel = 1.0;
        for p in &q.predicates {
            let st = self
                .catalog
                .statistics(&q.relation, &p.column)
                .unwrap_or_else(|| {
                    panic!("no statistics for {}.{}; run ANALYZE", q.relation, p.column)
                });
            sel *= st.estimator.selectivity(&p.range);
        }
        sel * rel.n_rows() as f64
    }

    /// Plan the query without executing it.
    pub fn explain(&self, q: &SelectQuery) -> Explanation {
        let rel = self
            .relations
            .get(&q.relation)
            .unwrap_or_else(|| panic!("no relation {}", q.relation));
        let per_predicate_rows: Vec<f64> = q
            .predicates
            .iter()
            .map(|p| {
                let st = self
                    .catalog
                    .statistics(&q.relation, &p.column)
                    .unwrap_or_else(|| {
                        panic!("no statistics for {}.{}; run ANALYZE", q.relation, p.column)
                    });
                st.estimate_rows(&p.range)
            })
            .collect();
        let estimated_rows = self.estimate_rows(q);
        // Candidate index scans: drive with the indexed predicate whose
        // *individual* estimate is smallest (fetches dominate the cost).
        let seq_cost = rel.n_rows() as f64 * SCAN_COST_PER_ROW;
        let mut best: (ChosenPath, f64) = (ChosenPath::SeqScan, seq_cost);
        for (p, &rows) in q.predicates.iter().zip(&per_predicate_rows) {
            let key = (q.relation.clone(), p.column.clone());
            if self.indexes.contains_key(&key) {
                let cost = INDEX_PROBE_COST + rows * FETCH_COST_PER_ROW;
                if cost < best.1 {
                    best = (
                        ChosenPath::IndexScan {
                            column: p.column.clone(),
                        },
                        cost,
                    );
                }
            }
        }
        Explanation {
            path: best.0,
            estimated_rows,
            per_predicate_rows,
            estimated_cost: best.1,
        }
    }

    /// Plan and execute, returning matching row ids (ascending).
    pub fn execute(&self, q: &SelectQuery) -> QueryResult {
        let rel = self
            .relations
            .get(&q.relation)
            .unwrap_or_else(|| panic!("no relation {}", q.relation));
        let explanation = self.explain(q);
        let matches_all = |row: usize| {
            q.predicates.iter().all(|p| {
                let col = rel.column(&p.column).expect("validated at plan time");
                p.range.matches(col.values()[row])
            })
        };
        let mut rows: Vec<u32> = match &explanation.path {
            ChosenPath::SeqScan => (0..rel.n_rows())
                .filter(|&r| matches_all(r))
                .map(|r| r as u32)
                .collect(),
            ChosenPath::IndexScan { column } => {
                let idx = &self.indexes[&(q.relation.clone(), column.clone())];
                let driving = q
                    .predicates
                    .iter()
                    .find(|p| &p.column == column)
                    .expect("driving predicate exists");
                idx.lookup(&driving.range)
                    .into_iter()
                    .filter(|&r| matches_all(r as usize))
                    .collect()
            }
        };
        rows.sort_unstable();
        QueryResult { rows, explanation }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::EstimatorKind;
    use crate::relation::Column;
    use selest_core::Domain;

    /// orders(amount skewed-low, day uniform, lag = day-correlated).
    fn database() -> Database {
        let d = Domain::new(0.0, 1_000.0);
        let n = 10_000;
        let amount: Vec<f64> = (0..n)
            .map(|i| 1_000.0 * ((i as f64 + 0.5) / n as f64).powi(3))
            .collect();
        let day: Vec<f64> = (0..n).map(|i| ((i * 37) % 1_000) as f64).collect();
        let lag: Vec<f64> = day.iter().map(|&x| (x * 0.9 + 30.0).min(1_000.0)).collect();
        let mut rel = Relation::new("orders");
        rel.add_column(Column::new("amount", d, amount));
        rel.add_column(Column::new("day", d, day));
        rel.add_column(Column::new("lag", d, lag));
        let mut db = Database::new();
        db.add_relation(rel);
        db.create_index("orders", "amount");
        db.analyze(
            "orders",
            &AnalyzeConfig {
                kind: EstimatorKind::Kernel,
                ..Default::default()
            },
        );
        db
    }

    fn pred(column: &str, a: f64, b: f64) -> RangePredicate {
        RangePredicate {
            column: column.into(),
            range: RangeQuery::new(a, b),
        }
    }

    #[test]
    fn execution_matches_a_reference_scan() {
        let db = database();
        let q = SelectQuery::new(
            "orders",
            vec![pred("amount", 100.0, 300.0), pred("day", 0.0, 500.0)],
        );
        let result = db.execute(&q);
        // Reference: brute-force filter.
        let rel = db.relation("orders").unwrap();
        let reference: Vec<u32> = (0..rel.n_rows())
            .filter(|&r| {
                let a = rel.column("amount").unwrap().values()[r];
                let d = rel.column("day").unwrap().values()[r];
                (100.0..=300.0).contains(&a) && (0.0..=500.0).contains(&d)
            })
            .map(|r| r as u32)
            .collect();
        assert_eq!(result.rows, reference);
    }

    #[test]
    fn selective_indexed_predicate_drives_the_plan() {
        let db = database();
        // amount > 900 is rare (cubic skew): index scan on amount.
        let q = SelectQuery::new(
            "orders",
            vec![pred("amount", 900.0, 1_000.0), pred("day", 0.0, 1_000.0)],
        );
        let e = db.explain(&q);
        assert_eq!(
            e.path,
            ChosenPath::IndexScan {
                column: "amount".into()
            }
        );
        // A fat predicate falls back to the scan.
        let q = SelectQuery::new("orders", vec![pred("amount", 0.0, 1_000.0)]);
        assert_eq!(db.explain(&q).path, ChosenPath::SeqScan);
    }

    #[test]
    fn estimates_track_actual_cardinalities() {
        let db = database();
        let q = SelectQuery::new("orders", vec![pred("amount", 0.0, 125.0)]);
        // Cubic skew: amount <= 125 covers the first half of rows.
        let est = db.estimate_rows(&q);
        let actual = db.execute(&q).rows.len() as f64;
        assert!(
            (est - actual).abs() / actual < 0.1,
            "estimate {est} vs actual {actual}"
        );
    }

    #[test]
    fn pair_statistics_fix_correlated_conjunctions() {
        let mut db = database();
        let q = SelectQuery::new(
            "orders",
            vec![pred("day", 400.0, 500.0), pred("lag", 390.0, 480.0)],
        );
        let actual = db.execute(&q).rows.len() as f64;
        assert!(
            actual > 500.0,
            "premise: correlated band is fat, actual {actual}"
        );
        let indep = db.estimate_rows(&q);
        db.analyze_pair("orders", "day", "lag", &AnalyzeConfig::default());
        let joint = db.estimate_rows(&q);
        assert!(
            (joint - actual).abs() < 0.5 * (indep - actual).abs(),
            "joint {joint} should be closer to {actual} than independence {indep}"
        );
    }

    #[test]
    fn explanation_reports_per_predicate_estimates() {
        let db = database();
        let q = SelectQuery::new(
            "orders",
            vec![pred("amount", 0.0, 1_000.0), pred("day", 0.0, 99.0)],
        );
        let e = db.explain(&q);
        assert_eq!(e.per_predicate_rows.len(), 2);
        assert!((e.per_predicate_rows[0] - 10_000.0).abs() < 200.0);
        assert!((e.per_predicate_rows[1] - 1_000.0).abs() < 200.0);
    }

    #[test]
    #[should_panic(expected = "run ANALYZE")]
    fn planning_requires_statistics() {
        let d = Domain::new(0.0, 10.0);
        let mut rel = Relation::new("t");
        rel.add_column(Column::new("x", d, vec![1.0, 2.0]));
        let mut db = Database::new();
        db.add_relation(rel);
        let q = SelectQuery::new("t", vec![pred("x", 0.0, 5.0)]);
        let _ = db.explain(&q);
    }
}
