//! Conjunctive range predicates over two columns: the classic optimizer
//! failure mode the paper's multidimensional future work targets.
//!
//! `WHERE a BETWEEN .. AND b BETWEEN ..` is traditionally estimated under
//! the *attribute value independence* assumption — the product of the
//! per-column selectivities — which collapses on correlated columns.
//! [`PairStatistics`] holds both the two marginal estimators and a joint
//! 2-D product-kernel estimator built from the same sample, so the planner
//! can quantify exactly what the independence assumption costs.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use selest_core::{RangeQuery, SelectivityEstimator};
use selest_kernel::{Boundary2d, KernelEstimator2d, KernelFn, RectQuery};

use crate::catalog::{build_estimator, AnalyzeConfig};
use crate::relation::Relation;

/// How a conjunctive predicate's selectivity is estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationModel {
    /// Product of the marginal selectivities (System R's assumption).
    Independence,
    /// Joint 2-D kernel estimate over the sampled pairs.
    Joint2d,
}

/// ANALYZE output for a column pair.
pub struct PairStatistics {
    marginal_x: Box<dyn SelectivityEstimator + Send + Sync>,
    marginal_y: Box<dyn SelectivityEstimator + Send + Sync>,
    joint: KernelEstimator2d,
    n_rows: usize,
}

impl PairStatistics {
    /// ANALYZE two columns of a relation jointly: row-aligned sample pairs
    /// feed the 2-D kernel estimator; the configured 1-D estimator kind is
    /// built per column for the independence model.
    pub fn analyze(relation: &Relation, col_x: &str, col_y: &str, config: &AnalyzeConfig) -> Self {
        let x = relation
            .column(col_x)
            .unwrap_or_else(|| panic!("no column {col_x} in {}", relation.name()));
        let y = relation
            .column(col_y)
            .unwrap_or_else(|| panic!("no column {col_y} in {}", relation.name()));
        assert_eq!(x.len(), y.len(), "column lengths differ");
        assert!(x.len() >= 2, "need at least two rows");
        // Row-aligned sample without replacement (partial Fisher-Yates over
        // row ids, so the pair correlation survives sampling).
        let n = config.sample_size.min(x.len());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut idx: Vec<u32> = (0..x.len() as u32).collect();
        let mut pairs = Vec::with_capacity(n);
        for i in 0..n {
            let j = rng.random_range(i..idx.len());
            idx.swap(i, j);
            let row = idx[i] as usize;
            pairs.push((x.values()[row], y.values()[row]));
        }
        // Scott's marginal bandwidths oversmooth correlated pairs; the
        // LSCV-rescaled variant adapts to the joint structure.
        let joint = KernelEstimator2d::with_lscv_scaled_scott(
            &pairs,
            x.domain(),
            y.domain(),
            KernelFn::Epanechnikov,
            Boundary2d::Reflection,
        );
        PairStatistics {
            marginal_x: build_estimator(x, config),
            marginal_y: build_estimator(y, config),
            joint,
            n_rows: x.len(),
        }
    }

    /// Estimated selectivity of `qx AND qy` under the chosen model.
    pub fn selectivity(&self, qx: &RangeQuery, qy: &RangeQuery, model: CorrelationModel) -> f64 {
        match model {
            CorrelationModel::Independence => {
                self.marginal_x.selectivity(qx) * self.marginal_y.selectivity(qy)
            }
            CorrelationModel::Joint2d => {
                self.joint
                    .selectivity(&RectQuery::new(qx.a(), qx.b(), qy.a(), qy.b()))
            }
        }
    }

    /// Estimated matching rows under the chosen model.
    pub fn estimate_rows(&self, qx: &RangeQuery, qy: &RangeQuery, model: CorrelationModel) -> f64 {
        self.selectivity(qx, qy, model) * self.n_rows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::EstimatorKind;
    use crate::relation::Column;
    use selest_core::Domain;

    /// A relation where y tracks x tightly (strong correlation).
    fn correlated_relation() -> Relation {
        let d = Domain::new(0.0, 1_000.0);
        let n = 20_000;
        let xs: Vec<f64> = (0..n)
            .map(|i| 1_000.0 * (i as f64 + 0.5) / n as f64)
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (x + 40.0 * (((i * 37) % 100) as f64 / 100.0 - 0.5)).clamp(0.0, 1_000.0))
            .collect();
        let mut r = Relation::new("pairs");
        r.add_column(Column::new("x", d, xs));
        r.add_column(Column::new("y", d, ys));
        r
    }

    fn truth(r: &Relation, qx: &RangeQuery, qy: &RangeQuery) -> f64 {
        let xs = r.column("x").unwrap().values();
        let ys = r.column("y").unwrap().values();
        xs.iter()
            .zip(ys)
            .filter(|&(&x, &y)| qx.matches(x) && qy.matches(y))
            .count() as f64
            / xs.len() as f64
    }

    #[test]
    fn independence_collapses_on_correlated_columns_joint_does_not() {
        let r = correlated_relation();
        let stats = PairStatistics::analyze(
            &r,
            "x",
            "y",
            &AnalyzeConfig {
                kind: EstimatorKind::Kernel,
                ..Default::default()
            },
        );
        // Diagonal band query: both predicates select the same 10% slice.
        let qx = RangeQuery::new(400.0, 500.0);
        let qy = RangeQuery::new(400.0, 500.0);
        let t = truth(&r, &qx, &qy); // ~0.1, NOT 0.01
        assert!(t > 0.07, "premise: correlated truth {t}");
        let indep = stats.selectivity(&qx, &qy, CorrelationModel::Independence);
        let joint = stats.selectivity(&qx, &qy, CorrelationModel::Joint2d);
        assert!(
            (indep - t).abs() > 5.0 * (joint - t).abs(),
            "joint ({joint}) should be far closer to truth ({t}) than independence ({indep})"
        );
        assert!(indep < 0.03, "independence should estimate ~1%: {indep}");
    }

    #[test]
    fn off_diagonal_queries_are_near_empty_under_the_joint_model() {
        let r = correlated_relation();
        let stats = PairStatistics::analyze(
            &r,
            "x",
            "y",
            &AnalyzeConfig {
                kind: EstimatorKind::Kernel,
                ..Default::default()
            },
        );
        let qx = RangeQuery::new(100.0, 200.0);
        let qy = RangeQuery::new(700.0, 800.0);
        let joint = stats.selectivity(&qx, &qy, CorrelationModel::Joint2d);
        assert!(joint < 0.01, "off-diagonal joint estimate {joint}");
        assert_eq!(truth(&r, &qx, &qy), 0.0);
    }

    #[test]
    fn estimate_rows_scales_by_relation_size() {
        let r = correlated_relation();
        let stats = PairStatistics::analyze(&r, "x", "y", &AnalyzeConfig::default());
        let qx = RangeQuery::new(0.0, 1_000.0);
        let qy = RangeQuery::new(0.0, 1_000.0);
        let rows = stats.estimate_rows(&qx, &qy, CorrelationModel::Joint2d);
        assert!((rows - 20_000.0).abs() < 600.0, "full-domain rows {rows}");
    }

    #[test]
    #[should_panic(expected = "no column z")]
    fn missing_column_panics() {
        let r = correlated_relation();
        let _ = PairStatistics::analyze(&r, "x", "z", &AnalyzeConfig::default());
    }
}
