//! Chaos tests: deterministic seeded fault injection against the serving
//! path. The contract under test is the degradation ladder's promise —
//! *every* query gets a finite selectivity in `[0, 1]`, no panic crosses
//! the resilience boundary, and the health counters tell the truth about
//! what was absorbed.

use std::sync::Once;

use selest_core::{Domain, RangeQuery};
use selest_store::catalog::{AnalyzeConfig, EstimatorKind, StatisticsCatalog};
use selest_store::faultinject::{FailingEstimator, FailureMode, FaultInjector};
use selest_store::persist;
use selest_store::resilient::ResilientEstimator;
use selest_store::{try_plan_range_query, Column, Relation};

/// Injected panics are expected here; keep them out of the test output.
fn silence_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

/// A deterministic query workload sweeping positions and widths.
fn workload(domain: &Domain, n: usize) -> Vec<RangeQuery> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let center = domain.lerp((t * 7.31) % 1.0);
            RangeQuery::centered(domain, center, 0.01 + 0.5 * t)
        })
        .collect()
}

fn assert_serves_everything(est: &ResilientEstimator, domain: &Domain, label: &str) {
    for q in workload(domain, 200) {
        let s = est.try_selectivity(&q).expect("serving path must answer");
        assert!(
            s.is_finite() && (0.0..=1.0).contains(&s),
            "{label}: {q} got selectivity {s}"
        );
    }
}

#[test]
fn every_kind_survives_poisoned_samples_at_every_severity() {
    let domain = Domain::new(0.0, 1_000.0);
    let base: Vec<f64> = (0..2_000)
        .map(|i| domain.lerp((i as f64 + 0.5) / 2_000.0))
        .collect();
    for kind in EstimatorKind::ALL {
        for (seed, fraction) in [(1u64, 0.05), (2, 0.25), (3, 0.75), (4, 1.0)] {
            let mut sample = base.clone();
            let report = FaultInjector::new(seed).corrupt_sample(&mut sample, &domain, fraction);
            let est = ResilientEstimator::build(&sample, domain, kind);
            let label = format!("{kind:?} seed {seed} fraction {fraction}");
            assert_serves_everything(&est, &domain, &label);

            // The audit must account exactly for the damage present in the
            // corrupted sample (injections can overwrite each other, so we
            // count the sample, not the injection attempts).
            let h = est.health();
            let non_finite = sample.iter().filter(|v| !v.is_finite()).count();
            let out_of_domain = sample
                .iter()
                .filter(|v| v.is_finite() && !domain.contains(**v))
                .count();
            assert!(report.total() >= non_finite + out_of_domain, "{label}");
            if kind != EstimatorKind::Uniform {
                assert_eq!(h.sample_audit.non_finite, non_finite, "{label}");
                assert_eq!(h.sample_audit.out_of_domain, out_of_domain, "{label}");
                assert_eq!(
                    h.sample_audit.kept,
                    sample.len() - non_finite - out_of_domain
                );
            }
        }
    }
}

#[test]
fn fully_poisoned_sample_degrades_to_uniform_and_reports_it() {
    let domain = Domain::new(0.0, 100.0);
    let mut sample = vec![50.0; 500];
    // fraction 1.0 with repeated overwrites still leaves only garbage and
    // one value class; drive it fully bad by injecting twice.
    let mut inj = FaultInjector::new(99);
    inj.corrupt_sample(&mut sample, &domain, 1.0);
    sample.iter_mut().for_each(|v| {
        if v.is_finite() && domain.contains(*v) {
            *v = f64::NAN;
        }
    });
    let est = ResilientEstimator::build(&sample, domain, EstimatorKind::Kernel);
    let h = est.health();
    assert_eq!(h.rungs, 1, "only the uniform rung can build");
    assert_eq!(
        h.build_failures, 4,
        "kernel, maxdiff, equidepth, sampling all fail"
    );
    assert_eq!(h.active_rung, "Uniform");
    assert_serves_everything(&est, &domain, "fully poisoned");
}

#[test]
fn estimator_panics_never_cross_the_resilience_boundary() {
    silence_panics();
    let domain = Domain::new(0.0, 100.0);
    // Top rung panics immediately, second rung returns garbage, third
    // returns out-of-range values: the ladder must walk through all of
    // them and still answer from uniform.
    let est = ResilientEstimator::from_estimators(
        vec![
            Box::new(FailingEstimator::new(domain, FailureMode::PanicAlways)),
            Box::new(FailingEstimator::new(domain, FailureMode::Return(f64::NAN))),
            Box::new(FailingEstimator::new(
                domain,
                FailureMode::Return(f64::INFINITY),
            )),
        ],
        domain,
    );
    let q = RangeQuery::new(0.0, 50.0);
    let s = est.try_selectivity(&q).expect("must answer");
    assert_eq!(s, 0.5, "uniform bottom rung answers");
    let h = est.health();
    assert_eq!(h.estimate_faults, 3, "one fault per broken rung");
    assert_eq!(h.active_rung, "Uniform");
    assert_eq!(h.fallback_depth, 3);
    // Sticky demotion: the broken rungs are not retried.
    let _ = est.try_selectivity(&q).unwrap();
    assert_eq!(est.health().estimate_faults, 3);
}

#[test]
fn repeated_faults_quarantine_to_uniform_with_accurate_counters() {
    silence_panics();
    let domain = Domain::new(0.0, 10.0);
    let est = ResilientEstimator::from_estimators(
        vec![Box::new(FailingEstimator::new(
            domain,
            FailureMode::PanicAlways,
        ))],
        domain,
    )
    .with_quarantine_threshold(1);
    let q = RangeQuery::new(0.0, 5.0);
    assert_eq!(est.try_selectivity(&q).unwrap(), 0.5);
    assert!(est.is_quarantined());
    let h = est.health();
    assert!(h.quarantined);
    assert_eq!(h.estimate_faults, 1);
    assert_eq!(h.served, 1);
    assert_serves_everything(&est, &domain, "quarantined entry");
}

#[test]
fn healthy_rung_after_warmup_panics_mid_serving() {
    silence_panics();
    let domain = Domain::new(0.0, 100.0);
    let est = ResilientEstimator::from_estimators(
        vec![Box::new(FailingEstimator::new(
            domain,
            FailureMode::PanicAfter(50),
        ))],
        domain,
    );
    // The first 50 queries come from the healthy top rung, the rest fall
    // through to uniform — all of them must be finite and in range.
    assert_serves_everything(&est, &domain, "mid-flight failure");
    let h = est.health();
    assert_eq!(h.estimate_faults, 1, "exactly the one mid-flight panic");
    assert_eq!(h.active_rung, "Uniform");
    assert_eq!(h.served, 200);
}

/// Build a small two-column catalog and persist it.
fn persisted_catalog() -> (Relation, String) {
    let domain = Domain::new(0.0, 1_000.0);
    let mut r = Relation::new("t");
    let dense: Vec<f64> = (0..5_000)
        .map(|i| 100.0 * (i as f64 + 0.5) / 5_000.0)
        .collect();
    let wide: Vec<f64> = (0..5_000)
        .map(|i| 1_000.0 * (i as f64 + 0.5) / 5_000.0)
        .collect();
    r.add_column(Column::new("dense", domain, dense));
    r.add_column(Column::new("wide", domain, wide));
    let mut cat = StatisticsCatalog::new();
    cat.analyze(
        &r,
        &AnalyzeConfig {
            kind: EstimatorKind::MaxDiff,
            ..Default::default()
        },
    );
    let text = persist::encode(&cat.export());
    (r, text)
}

#[test]
fn damaged_statistics_files_never_panic_the_loader() {
    let (_r, text) = persisted_catalog();
    for seed in 0..200u64 {
        let mut inj = FaultInjector::new(seed);
        let damaged = if seed % 2 == 0 {
            inj.truncate_text(&text)
        } else {
            let mut t = text.clone();
            for _ in 0..(seed % 7 + 1) {
                t = inj.bitflip_text(&t);
            }
            t
        };
        // Strict decode: Ok or typed error, never a panic or a silently
        // truncated result.
        match persist::decode(&damaged) {
            Ok(entries) => {
                // A flip that survives the checksum must still rebuild
                // into a serving estimator or produce a typed error.
                for e in &entries {
                    let _ = e.try_rebuild();
                }
            }
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("line"),
                    "error should locate the damage: {msg}"
                );
            }
        }
        // Lenient decode: whatever survives must import and serve.
        if let Ok(report) = persist::decode_lenient(&damaged) {
            let mut cat = StatisticsCatalog::new();
            let failures = cat.try_import(report.entries);
            for (_rel, _col, err) in &failures {
                let _ = err.to_string(); // typed, displayable
            }
            for col in ["dense", "wide"] {
                if let Some(st) = cat.statistics("t", col) {
                    let s = st.estimator.selectivity(&RangeQuery::new(0.0, 500.0));
                    assert!(
                        s.is_finite() && (0.0..=1.0).contains(&s),
                        "seed {seed} {col}"
                    );
                }
            }
        }
    }
}

#[test]
fn planner_answers_or_errors_cleanly_after_catalog_damage() {
    let (r, text) = persisted_catalog();
    for seed in 0..50u64 {
        let damaged = FaultInjector::new(seed).truncate_text(&text);
        let Ok(report) = persist::decode_lenient(&damaged) else {
            continue;
        };
        let mut cat = StatisticsCatalog::new();
        let _ = cat.try_import(report.entries);
        for col in ["dense", "wide"] {
            for q in workload(&Domain::new(0.0, 1_000.0), 20) {
                match try_plan_range_query(&cat, &r, col, &q) {
                    Ok(plan) => {
                        assert!(plan.estimated_rows.is_finite());
                        assert!((0.0..=r.n_rows() as f64).contains(&plan.estimated_rows));
                        assert!(plan.estimated_cost.is_finite());
                    }
                    Err(e) => {
                        // The only acceptable failure is absent statistics
                        // for a column whose entry was damaged.
                        assert!(
                            e.to_string().contains("run ANALYZE"),
                            "seed {seed}: unexpected planner error {e}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn chaos_runs_are_reproducible() {
    // The whole suite above relies on seeded determinism; spot-check it
    // end to end: same seed, same damage, same surviving entries.
    let (_r, text) = persisted_catalog();
    let survivors = |seed: u64| -> Vec<String> {
        let damaged = FaultInjector::new(seed).truncate_text(&text);
        match persist::decode_lenient(&damaged) {
            Ok(report) => report
                .entries
                .into_iter()
                .map(|e| e.column.to_string())
                .collect(),
            Err(_) => Vec::new(),
        }
    };
    for seed in [3u64, 17, 40021] {
        assert_eq!(survivors(seed), survivors(seed), "seed {seed}");
    }
}
