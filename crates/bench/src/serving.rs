//! Closed-loop concurrency/latency benchmark of the serving engine
//! (`selest serve --bench`, artifact `BENCH_PR8.json`).
//!
//! ## Load model: closed-loop clients
//!
//! The tracked machine exposes **one hardware thread**, so an open-loop
//! "hammer as fast as possible" sweep would show no concurrency scaling —
//! every thread would just time-slice the same saturated core. What a
//! serving engine must prove instead is that concurrent clients do not
//! *interfere*: reads stay wait-free, a background ANALYZE publish never
//! stalls them, and adding clients multiplies throughput until the CPU
//! itself saturates.
//!
//! The classic way to measure that on bounded hardware is a closed-loop
//! client model: each client issues one batch, validates it, then "thinks"
//! for a fixed `think_us` before the next request. Service time per batch
//! (~tens of µs) is far below the think time (1 ms), so client threads
//! overlap their waits and aggregate throughput grows near-linearly with
//! the client count until `threads x service_time` approaches the think
//! interval — honest scaling from concurrency, not from pretending one
//! core is eight. The JSON records `"model": "closed-loop"` and `think_us`
//! so the numbers cannot be misread as open-loop saturation throughput.
//!
//! ## What is asserted (before anything is reported)
//!
//! * **Bit-identity**: every batch a client serves is Kahan-summed and
//!   compared against the sequential single-threaded reference for that
//!   `(column, decile)` — the run aborts on the first mismatching bit, at
//!   every thread count, while rebuild publishes race underneath.
//! * **Liveness under publish**: a background thread runs the full
//!   sharded ANALYZE → snapshot → publish cycle in a loop; p999 latency
//!   staying bounded proves readers never stall on a swap.
//! * **Scaling** (full mode): closed-loop throughput at 8 clients must be
//!   >= 3x the 1-client throughput.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use selest_core::{BatchScratch, RangeQuery};
use selest_data::PaperFile;
use selest_store::{
    AnalyzeConfig, Column, Relation, ServingEngine, ServingOptions, ServingScratch,
    StatisticsCatalog,
};

/// Query-width deciles of the selectivity sweep.
pub const DECILES: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Client counts of the concurrency sweep.
pub const THREADS: [usize; 5] = [1, 2, 4, 8, 16];

/// Options of one benchmark invocation.
pub struct ServingBenchOptions {
    /// One light repetition per cell; timing gates are skipped.
    pub smoke: bool,
    /// Output path for the JSON artifact.
    pub out: String,
}

/// Full-mode gate: closed-loop throughput at 8 clients vs. 1 client.
const SCALING_GATE_8_OVER_1: f64 = 3.0;
/// Full-mode gate: p999 batch latency cap (µs) at every thread count —
/// readers must never stall behind a background publish.
const P999_CAP_US: f64 = 250_000.0;

struct Workload {
    relation: Arc<Relation>,
    config: AnalyzeConfig,
    /// `queries[column][decile]` — one batch per cell.
    queries: Vec<Vec<Vec<RangeQuery>>>,
    /// Sequential-reference Kahan checksum bits per `[column][decile]`.
    reference: Vec<Vec<u64>>,
    /// Kahan sum of all per-cell reference sums, column-major.
    combined: f64,
    rows: usize,
    queries_per_batch: usize,
}

/// Build the 8-column workload relation: deterministic affine transforms
/// of the n(20) fixture, so every column carries the same shape over a
/// distinct domain and the kernel ANALYZE does real per-column work.
fn build_workload(smoke: bool) -> Workload {
    let data = PaperFile::Normal { p: 20 }.generate();
    let base = data.values();
    let lo = base.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = base.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    const COLUMNS: usize = 8;
    let mut relation = Relation::new("servebench");
    for c in 0..COLUMNS {
        let scale = 1.0 + 0.25 * c as f64;
        let shift = 1_000.0 * c as f64;
        let values: Vec<f64> = base.iter().map(|&v| v * scale + shift).collect();
        let domain = selest_core::Domain::new(lo * scale + shift, hi * scale + shift);
        relation.add_column(Column::new(&format!("c{c}"), domain, values));
    }
    let relation = Arc::new(relation);
    let config = AnalyzeConfig {
        sample_size: if smoke { 256 } else { 1_000 },
        ..Default::default()
    };
    let queries_per_batch = if smoke { 64 } else { 256 };
    // Golden-ratio center sequence per cell: deterministic, well spread,
    // distinct across columns and deciles.
    let queries: Vec<Vec<Vec<RangeQuery>>> = (0..COLUMNS)
        .map(|c| {
            let domain = relation.columns()[c].domain();
            DECILES
                .iter()
                .enumerate()
                .map(|(d, &fraction)| {
                    (0..queries_per_batch)
                        .map(|i| {
                            let t =
                                ((c * 131 + d * 17 + i) as f64 * 0.618_033_988_749_894_9).fract();
                            let center = domain.lo() + t * domain.width();
                            RangeQuery::centered(&domain, center, fraction)
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    // Sequential single-threaded reference: the same bulkheaded ANALYZE
    // the engine's sharded rebuild runs, at one worker, served through
    // the plain batch kernel. Every concurrent result is held to these
    // bits.
    let mut catalog = StatisticsCatalog::new();
    let report = catalog.try_analyze_jobs(&relation, &config, 1);
    assert!(report.is_healthy(), "workload must analyze cleanly");
    let mut scratch = BatchScratch::new();
    let mut out: Vec<f64> = Vec::new();
    let mut cell_sums: Vec<f64> = Vec::new();
    let reference: Vec<Vec<u64>> = (0..COLUMNS)
        .map(|c| {
            let st = catalog
                .statistics("servebench", &format!("c{c}"))
                .expect("analyzed");
            queries[c]
                .iter()
                .map(|batch| {
                    out.clear();
                    out.resize(batch.len(), 0.0);
                    st.estimator
                        .selectivity_batch_into(batch, &mut scratch, &mut out);
                    let sum = selest_math::kahan_sum(out.iter().copied());
                    cell_sums.push(sum);
                    sum.to_bits()
                })
                .collect()
        })
        .collect();
    let combined = selest_math::kahan_sum(cell_sums.iter().copied());
    Workload {
        rows: relation.columns()[0].len(),
        relation,
        config,
        queries,
        reference,
        combined,
        queries_per_batch,
    }
}

struct RunResult {
    threads: usize,
    wall: Duration,
    batches: usize,
    publishes: u64,
    generation: u64,
    /// `(decile index, latency µs)` per served batch.
    samples: Vec<(usize, f64)>,
}

/// One closed-loop run: `threads` clients cycling through every
/// `(column, decile)` cell while a background publisher keeps running
/// the sharded rebuild-and-publish cycle. Every served batch is checked
/// against the sequential reference bits before its latency counts.
fn run_concurrency(
    w: &Workload,
    threads: usize,
    ops_per_thread: usize,
    think: Duration,
) -> RunResult {
    let engine = ServingEngine::new(ServingOptions::default());
    let initial =
        engine.rebuild_and_publish(&w.relation, &w.config, &selest_par::TryConfig::jobs(1));
    assert!(initial.failed_shards.is_empty() && initial.health.is_healthy());
    let columns = w.queries.len();
    let names: Vec<String> = (0..columns).map(|c| format!("c{c}")).collect();
    let stop = AtomicBool::new(false);
    let publishes = AtomicU64::new(0);
    let all_samples: Mutex<Vec<(usize, f64)>> = Mutex::new(Vec::new());
    let mut wall = Duration::ZERO;
    std::thread::scope(|s| {
        let engine = &engine;
        let stop = &stop;
        let publishes = &publishes;
        let all_samples = &all_samples;
        let names = &names;
        // Background ANALYZE: the same deterministic config, so every
        // publish swaps in a bit-identical snapshot under a fresh
        // generation — readers race real epoch swaps and wholesale cache
        // invalidations without the reference bits moving.
        s.spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let report = engine.rebuild_and_publish(
                    &w.relation,
                    &w.config,
                    &selest_par::TryConfig::jobs(1),
                );
                assert!(report.failed_shards.is_empty());
                publishes.fetch_add(1, Ordering::Relaxed);
                for _ in 0..20 {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        });
        let t0 = Instant::now();
        let readers: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut scratch = ServingScratch::new();
                    let mut out = Vec::new();
                    let mut samples = Vec::with_capacity(ops_per_thread);
                    for i in 0..ops_per_thread {
                        let c = (t + i) % columns;
                        let d = (t * 3 + i) % DECILES.len();
                        let batch = &w.queries[c][d];
                        let started = Instant::now();
                        engine.estimate_batch_into(
                            "servebench",
                            &names[c],
                            batch,
                            &mut scratch,
                            &mut out,
                        );
                        let elapsed_us = started.elapsed().as_secs_f64() * 1e6;
                        let sum = selest_math::kahan_sum(out.iter().map(|r| {
                            *r.as_ref()
                                .unwrap_or_else(|e| panic!("client {t} op {i}: serving error {e}"))
                        }));
                        assert_eq!(
                            sum.to_bits(),
                            w.reference[c][d],
                            "client {t} op {i}: served checksum drifted from the \
                             sequential reference (column c{c}, decile {})",
                            DECILES[d]
                        );
                        samples.push((d, elapsed_us));
                        std::thread::sleep(think);
                    }
                    all_samples
                        .lock()
                        .expect("no poisoned readers")
                        .extend(samples);
                })
            })
            .collect();
        for r in readers {
            r.join().expect("reader panicked");
        }
        wall = t0.elapsed();
        stop.store(true, Ordering::Release);
    });
    let health = engine.health();
    RunResult {
        threads,
        wall,
        batches: threads * ops_per_thread,
        publishes: publishes.load(Ordering::Relaxed),
        generation: health.generation,
        samples: all_samples.into_inner().expect("scope joined"),
    }
}

fn pct(sorted: &[f64], q: f64) -> f64 {
    selest_math::quantile(sorted, q)
}

/// Run the sweep and write the JSON artifact. Returns the output path.
pub fn run_serving_bench(opts: &ServingBenchOptions) -> String {
    let (ops_per_thread, think_us) = if opts.smoke { (20, 200) } else { (600, 1_000) };
    let think = Duration::from_micros(think_us);
    eprintln!(
        "serving bench: mode={} model=closed-loop think_us={think_us} ops/client={ops_per_thread}",
        if opts.smoke { "smoke" } else { "full" }
    );
    let w = build_workload(opts.smoke);
    eprintln!(
        "workload: 8 columns x {} rows, sample {}, {} queries/batch, {} deciles, \
         combined checksum bits {}",
        w.rows,
        w.config.sample_size,
        w.queries_per_batch,
        DECILES.len(),
        w.combined.to_bits()
    );
    let mut runs = Vec::new();
    for &threads in &THREADS {
        let r = run_concurrency(&w, threads, ops_per_thread, think);
        let qps = r.batches as f64 / r.wall.as_secs_f64();
        eprintln!(
            "  {threads:>2} clients: {} batches in {:.0}ms ({qps:>7.1} batches/s), \
             {} publishes raced, generation {}",
            r.batches,
            r.wall.as_secs_f64() * 1e3,
            r.publishes,
            r.generation
        );
        runs.push(r);
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = write!(
        json,
        "  \"schema\": \"selest-serving-bench/1\",\n  \"generator\": \"crates/bench/src/serving.rs (selest serve --bench)\",\n  \"mode\": \"{}\",\n  \"model\": \"closed-loop\",\n  \"think_us\": {think_us},\n  \"ops_per_thread\": {ops_per_thread},\n  \"columns\": 8,\n  \"rows\": {},\n  \"sample_size\": {},\n  \"queries_per_batch\": {},\n  \"deciles\": {},\n  \"hardware_threads\": {},\n  \"checksum\": {:.12},\n  \"checksum_bits\": {},\n  \"runs\": [\n",
        if opts.smoke { "smoke" } else { "full" },
        w.rows,
        w.config.sample_size,
        w.queries_per_batch,
        DECILES.len(),
        selest_par::available_workers(),
        w.combined,
        w.combined.to_bits(),
    );
    let mut qps_by_threads = std::collections::BTreeMap::new();
    let mut run_lines = Vec::new();
    for r in &runs {
        let wall_s = r.wall.as_secs_f64();
        let qps = r.batches as f64 / wall_s;
        qps_by_threads.insert(r.threads, qps);
        let mut all: Vec<f64> = r.samples.iter().map(|&(_, us)| us).collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let (p50, p99, p999) = (pct(&all, 0.50), pct(&all, 0.99), pct(&all, 0.999));
        if !opts.smoke {
            assert!(
                p999 <= P999_CAP_US,
                "{} clients: p999 {p999:.0}us exceeds the {P999_CAP_US:.0}us liveness cap \
                 (reader stalled behind a publish?)",
                r.threads
            );
        }
        let mut decile_lines = Vec::new();
        for (d, &fraction) in DECILES.iter().enumerate() {
            let mut us: Vec<f64> = r
                .samples
                .iter()
                .filter(|&&(sd, _)| sd == d)
                .map(|&(_, v)| v)
                .collect();
            us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            decile_lines.push(format!(
                "        {{\"decile\": {fraction:.1}, \"batches\": {}, \"p50_us\": {:.1}, \
                 \"p99_us\": {:.1}, \"p999_us\": {:.1}}}",
                us.len(),
                pct(&us, 0.50),
                pct(&us, 0.99),
                pct(&us, 0.999),
            ));
        }
        eprintln!(
            "  {:>2} clients: p50 {p50:.0}us p99 {p99:.0}us p999 {p999:.0}us max {:.0}us",
            r.threads,
            all.last().copied().unwrap_or(0.0)
        );
        run_lines.push(format!(
            "    {{\"threads\": {}, \"wall_ms\": {:.1}, \"batches\": {}, \
             \"batches_per_sec\": {:.1}, \"queries_per_sec\": {:.1}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"max_us\": {:.1}, \"publishes\": {}, \
             \"generation\": {}, \"checksum_bits\": {},\n      \"by_decile\": [\n{}\n      ]}}",
            r.threads,
            wall_s * 1e3,
            r.batches,
            qps,
            qps * w.queries_per_batch as f64,
            p50,
            p99,
            p999,
            all.last().copied().unwrap_or(0.0),
            r.publishes,
            r.generation,
            w.combined.to_bits(),
            decile_lines.join(",\n"),
        ));
    }
    let _ = write!(json, "{}", run_lines.join(",\n"));
    let qps_1 = qps_by_threads[&1];
    let qps_8 = qps_by_threads[&8];
    let ratio = qps_8 / qps_1;
    eprintln!("scaling: {qps_1:.1} batches/s @1 -> {qps_8:.1} batches/s @8 (x{ratio:.2})");
    if !opts.smoke {
        assert!(
            ratio >= SCALING_GATE_8_OVER_1,
            "closed-loop throughput only scaled x{ratio:.2} from 1 to 8 clients \
             (gate: >= {SCALING_GATE_8_OVER_1}x)"
        );
        for r in &runs {
            assert!(
                r.publishes >= 1,
                "{} clients: no background publish raced the readers",
                r.threads
            );
        }
    }
    let _ = write!(
        json,
        "\n  ],\n  \"scaling\": {{\"batches_per_sec_1\": {qps_1:.1}, \"batches_per_sec_8\": {qps_8:.1}, \"ratio_8_over_1\": {ratio:.4}}}\n}}\n"
    );
    std::fs::write(&opts.out, &json).unwrap_or_else(|e| {
        eprintln!("write {}: {e}", opts.out);
        std::process::exit(1);
    });
    eprintln!("wrote {}", opts.out);
    opts.out.clone()
}
