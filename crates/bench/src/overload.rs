//! Closed-loop *overload* benchmark of the serving engine
//! (`selest serve --bench --overload`, artifact `BENCH_PR10.json`).
//!
//! ## Load model: saturating closed-loop clients
//!
//! The PR 8 serving bench proves non-interference under *healthy* load
//! (clients think for 1 ms between batches). This benchmark does the
//! opposite: zero-think clients at 2×/4×/8× the saturation point of the
//! tracked machine hammer one kernel-served column, so wall latency per
//! batch grows roughly linearly with the client count and the SLO is
//! structurally unmeetable by the full-precision primary. What is
//! measured is what the engine does about it:
//!
//! * **refuse-only baseline** (`brownout: false`) — adaptive shedding
//!   refuses admissions as pressure grows, and the per-batch deadline
//!   (budget = SLO) cuts over-budget merge scans mid-flight into typed
//!   `DeadlineExceeded` refusals. Honest, but goodput collapses.
//! * **brownout** (`brownout: true`) — the same machinery, plus the load
//!   tier routes cache misses to the column's cheap pre-built rung
//!   (equi-depth over the same sample — the paper's own cost ranking)
//!   while pressure is high. Answers degrade in fidelity instead of
//!   disappearing; the closed loop settles around the brownout boundary.
//!
//! **Goodput** is answered-within-SLO batches per second — batches in
//! which *every* slot carries a value (any rung; the rung mix is
//! reported so degraded answers cannot masquerade as full-precision
//! ones) **and** the batch's wall latency is within the SLO. Late =
//! lost: a batch whose values arrive after the SLO is counted in its
//! own `late` bucket, not as goodput — the caller stopped waiting. The
//! engine's own deadline clock already refuses over-budget work
//! mid-scan; the residual late bucket is mostly answers that were
//! delivered within budget and then sat descheduled behind the other
//! clients before the caller's wall clock was read (unavoidable on a
//! one-hardware-thread box).
//!
//! ## What is asserted (before anything is reported)
//!
//! * **Per-response checksum identity**: every served slot is checked,
//!   bit for bit, against the precomputed reference of the rung that
//!   claims to have produced it — full-precision answers against the
//!   sequential primary, brownout answers against the rung estimator.
//!   One mismatching bit aborts the run.
//! * **Typed refusals only**: the only errors a client may see are
//!   `Overloaded` (carrying a `retry_after_us` hint) and
//!   `DeadlineExceeded`. Anything else aborts.
//! * **Gates** (full mode): at 4× load, brownout goodput ≥ 2× the
//!   refuse-only baseline, and the p999 of within-SLO answered brownout
//!   batches stays within the SLO cap (an accounting invariant: it
//!   catches late answers leaking into the goodput bucket).
//!
//! Column breakers are disarmed here (`breaker_threshold: u32::MAX`):
//! under saturating load every deadline timeout would charge the
//! breaker, and a tripped breaker turns the "refuse-only" baseline into
//! a floor-serving engine — a different experiment. Breaker transitions
//! are pinned deterministically by the store's unit tests instead.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use selest_core::{QueryDeadline, RangeQuery, SelectivityEstimator, UniformEstimator};
use selest_data::PaperFile;
use selest_store::{
    AnalyzeConfig, Column, EstimatorKind, OverloadOptions, Relation, ServeRung, ServedEstimate,
    ServingEngine, ServingOptions, ServingScratch, StatisticsCatalog,
};

/// Load multipliers over the single-client saturation point.
pub const LOADS: [usize; 3] = [2, 4, 8];

/// SLO as a multiple of the unloaded full-precision batch service time:
/// tight enough that the primary cannot meet it at 4× load, loose enough
/// that the cheap rung can.
const SLO_OVER_SERVICE: f64 = 2.0;

/// Gate: brownout goodput over refuse-only goodput at 4× load.
const GOODPUT_GATE_4X: f64 = 2.0;

/// Gate: p999 of answered brownout batches at 4× load, as a multiple of
/// the SLO. Slightly above 1: a batch admitted just before its deadline
/// expires legitimately finishes a cheap-rung service time late.
const P999_SLO_CAP: f64 = 1.25;

/// Options of one overload benchmark invocation.
pub struct OverloadBenchOptions {
    /// One light repetition per cell; timing gates are skipped.
    pub smoke: bool,
    /// Output path for the JSON artifact.
    pub out: String,
    /// Seed of every engine-side probabilistic decision.
    pub seed: u64,
}

struct Workload {
    relation: std::sync::Arc<Relation>,
    /// Distinct query batches the clients cycle through.
    batches: Vec<Vec<RangeQuery>>,
    /// Reference bits per `[batch][slot]` for each serving rung.
    full_bits: Vec<Vec<u64>>,
    brown_bits: Vec<Vec<u64>>,
    floor_bits: Vec<Vec<u64>>,
    rows: usize,
    sample_size: usize,
}

/// Build the single-column kernel workload: the n(20) fixture served by
/// the (expensive) kernel estimator, with enough distinct batches that a
/// deliberately tiny cache keeps the miss path hot.
// The 0.318… literal below is a fixed query-scrambling multiplier, not a
// use of 1/π; it is pinned because the committed BENCH_PR10.json reference
// bits depend on the exact workload it generates.
#[allow(clippy::approx_constant)]
fn build_workload(smoke: bool, engine: &ServingEngine) -> Workload {
    let data = PaperFile::Normal { p: 20 }.generate();
    let domain = data.domain();
    let mut relation = Relation::new("overload");
    relation.add_column(Column::new("x", domain, data.values().to_vec()));
    let relation = std::sync::Arc::new(relation);
    // Full-mode sizing note: one batch must cost more than a scheduler
    // quantum (~1.5 ms). Below that, a saturated closed loop never shows
    // up in per-request latency — each client completes whole batches
    // inside its own timeslice and queueing delay lands only on the rare
    // batch that straddles a context switch, so a "saturated" primary
    // still answers within SLO. With service time above the quantum,
    // timeslicing multiplexes *within* each request and wall latency
    // honestly scales with the client count.
    let sample_size = if smoke { 512 } else { 16_000 };
    let mut catalog = StatisticsCatalog::new();
    let report = catalog.try_analyze_jobs(
        &relation,
        &AnalyzeConfig {
            kind: EstimatorKind::Kernel,
            sample_size,
            ..Default::default()
        },
        1,
    );
    assert!(report.is_healthy(), "workload must analyze cleanly");
    let n_batches = if smoke { 8 } else { 32 };
    let per_batch = if smoke { 64 } else { 2_048 };
    let batches: Vec<Vec<RangeQuery>> = (0..n_batches)
        .map(|b| {
            (0..per_batch)
                .map(|i| {
                    let t = ((b * 509 + i) as f64 * 0.618_033_988_749_894_9).fract();
                    let fraction = 0.02 + 0.3 * ((b * 31 + i) as f64 * 0.318_309_886).fract();
                    RangeQuery::centered(&domain, domain.lo() + t * domain.width(), fraction)
                })
                .collect()
        })
        .collect();
    engine.publish_snapshot(selest_store::CatalogSnapshot::from_catalog_ref(&catalog, 0));
    // Reference bits per rung, from the published snapshot itself so the
    // primary, the brownout rung, and the floor are the exact objects the
    // engine will serve from.
    let snap = engine.snapshot();
    let (_, col) = snap.find("overload", "x").expect("published");
    let rung = col
        .brownout_rung()
        .expect("kernel primaries carry a brownout rung");
    let floor = UniformEstimator::new(col.domain());
    let bits_of = |est: &dyn Fn(&RangeQuery) -> f64| -> Vec<Vec<u64>> {
        batches
            .iter()
            .map(|b| b.iter().map(|q| est(q).to_bits()).collect())
            .collect()
    };
    let full_bits = bits_of(&|q| col.estimator().selectivity(q));
    let brown_bits = bits_of(&|q| rung.selectivity(q));
    let floor_bits = bits_of(&|q| floor.selectivity(q));
    Workload {
        rows: relation.columns()[0].len(),
        relation,
        batches,
        full_bits,
        brown_bits,
        floor_bits,
        sample_size,
    }
}

fn engine_options(brownout: bool, slo_us: f64, seed: u64) -> ServingOptions {
    ServingOptions {
        // A deliberately tiny cache: the overload question is about the
        // miss path; a big cache would quietly answer everything at full
        // precision and measure nothing.
        cache_bits: 4,
        admission_limit: 64,
        overload: OverloadOptions {
            slo_us,
            brownout,
            seed,
            // Disarmed: see the module docs.
            breaker_threshold: u32::MAX,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Measure the unloaded full-precision service time: one client, no
/// deadline, cache misses guaranteed (each probe batch is distinct), the
/// median over all batches.
fn unloaded_service_us(smoke: bool, seed: u64) -> (f64, Workload) {
    let engine = ServingEngine::new(engine_options(false, f64::INFINITY, seed));
    let w = build_workload(smoke, &engine);
    let mut scratch = ServingScratch::new();
    let mut out = Vec::new();
    let mut samples = Vec::with_capacity(w.batches.len());
    for batch in &w.batches {
        let t0 = Instant::now();
        engine.estimate_batch_with("overload", "x", batch, None, &mut scratch, &mut out);
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
        assert!(
            out.iter().all(|s| s.is_ok()),
            "unloaded serving must succeed"
        );
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (selest_math::quantile(&samples, 0.5), w)
}

/// Per-batch outcome of one client request.
enum Outcome {
    /// Every slot answered; the wall latency and the rung mix.
    Answered {
        us: f64,
        full: usize,
        brownout: usize,
        floor: usize,
    },
    /// At least one slot refused by the shed controller.
    Shed,
    /// At least one slot refused by a deadline (none shed).
    Deadline,
}

struct RunStats {
    mode: &'static str,
    load: usize,
    clients: usize,
    wall_s: f64,
    batches: usize,
    /// Fully answered batches whose wall latency was within the SLO —
    /// the numerator of [`RunStats::goodput`].
    answered: usize,
    /// Fully answered batches that arrived past the SLO (late = lost).
    late: usize,
    shed: usize,
    deadline: usize,
    full_slots: u64,
    brownout_slots: u64,
    floor_slots: u64,
    /// Sorted latencies (µs) of within-SLO answered batches.
    answered_us: Vec<f64>,
    tier_brownout_seen: bool,
}

impl RunStats {
    fn goodput(&self) -> f64 {
        self.answered as f64 / self.wall_s
    }
    fn p(&self, q: f64) -> f64 {
        selest_math::quantile(&self.answered_us, q)
    }
}

/// One saturating closed-loop run: `clients` zero-think threads, each
/// batch armed with an SLO-budget deadline, every response validated
/// against its rung's reference bits before it counts.
fn run_overload(
    w: &Workload,
    brownout: bool,
    load: usize,
    ops_per_client: usize,
    slo_us: f64,
    seed: u64,
) -> RunStats {
    let clients = load; // saturation point of the tracked 1-thread box
    let engine = ServingEngine::new(engine_options(brownout, slo_us, seed));
    // Re-publish the same deterministic catalog into this engine so both
    // modes serve bit-identical statistics.
    let mut catalog = StatisticsCatalog::new();
    let report = catalog.try_analyze_jobs(
        &w.relation,
        &AnalyzeConfig {
            kind: EstimatorKind::Kernel,
            sample_size: w.sample_size,
            ..Default::default()
        },
        1,
    );
    assert!(report.is_healthy());
    engine.publish_snapshot(selest_store::CatalogSnapshot::from_catalog_ref(&catalog, 0));
    let outcomes: Mutex<Vec<Outcome>> = Mutex::new(Vec::new());
    let mut wall_s = 0.0;
    let mut tier_brownout_seen = false;
    std::thread::scope(|s| {
        let engine = &engine;
        let outcomes = &outcomes;
        let t0 = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|t| {
                s.spawn(move || {
                    let mut scratch = ServingScratch::new();
                    let mut out: Vec<Result<ServedEstimate, _>> = Vec::new();
                    let mut mine = Vec::with_capacity(ops_per_client);
                    for i in 0..ops_per_client {
                        let b = (t * 7 + i) % w.batches.len();
                        let batch = &w.batches[b];
                        let d = QueryDeadline::after(Duration::from_micros(slo_us as u64));
                        let started = Instant::now();
                        engine.estimate_batch_with(
                            "overload",
                            "x",
                            batch,
                            Some(&d),
                            &mut scratch,
                            &mut out,
                        );
                        let us = started.elapsed().as_secs_f64() * 1e6;
                        let (mut full, mut brown, mut floor) = (0usize, 0usize, 0usize);
                        let (mut shed, mut deadline) = (false, false);
                        for (slot, served) in out.iter().enumerate() {
                            match served {
                                Ok(est) => {
                                    let (expect, label, counter) = match est.rung {
                                        ServeRung::Full => {
                                            (w.full_bits[b][slot], "full", &mut full)
                                        }
                                        ServeRung::Brownout => {
                                            (w.brown_bits[b][slot], "brownout", &mut brown)
                                        }
                                        ServeRung::Floor => {
                                            (w.floor_bits[b][slot], "floor", &mut floor)
                                        }
                                    };
                                    assert_eq!(
                                        est.value.to_bits(),
                                        expect,
                                        "client {t} op {i} slot {slot}: {label} response \
                                         drifted from its reference bits"
                                    );
                                    *counter += 1;
                                }
                                Err(selest_core::EstimateError::Overloaded {
                                    retry_after_us,
                                    ..
                                }) => {
                                    assert!(*retry_after_us < 10_000_000, "retry hint out of band");
                                    shed = true;
                                }
                                Err(selest_core::EstimateError::DeadlineExceeded { .. }) => {
                                    deadline = true
                                }
                                Err(other) => {
                                    panic!("client {t} op {i} slot {slot}: untyped failure {other}")
                                }
                            }
                        }
                        mine.push(if shed {
                            Outcome::Shed
                        } else if deadline {
                            Outcome::Deadline
                        } else {
                            Outcome::Answered {
                                us,
                                full,
                                brownout: brown,
                                floor,
                            }
                        });
                    }
                    outcomes.lock().expect("no poisoned clients").extend(mine);
                })
            })
            .collect();
        for h in workers {
            h.join().expect("client panicked");
        }
        wall_s = t0.elapsed().as_secs_f64();
    });
    if engine.load_tier() != selest_store::LoadTier::Normal {
        tier_brownout_seen = true;
    }
    let health = engine.health();
    if health.tier != selest_store::LoadTier::Normal || health.brownout_served > 0 {
        tier_brownout_seen = true;
    }
    let outcomes = outcomes.into_inner().expect("scope joined");
    let mut stats = RunStats {
        mode: if brownout { "brownout" } else { "refuse-only" },
        load,
        clients,
        wall_s,
        batches: outcomes.len(),
        answered: 0,
        late: 0,
        shed: 0,
        deadline: 0,
        full_slots: 0,
        brownout_slots: 0,
        floor_slots: 0,
        answered_us: Vec::new(),
        tier_brownout_seen,
    };
    for o in &outcomes {
        match o {
            Outcome::Answered {
                us,
                full,
                brownout,
                floor,
            } => {
                if *us <= slo_us {
                    stats.answered += 1;
                    stats.answered_us.push(*us);
                } else {
                    stats.late += 1;
                }
                // The rung mix counts every *delivered* (validated) value,
                // late or not — it reports fidelity, not timeliness.
                stats.full_slots += *full as u64;
                stats.brownout_slots += *brownout as u64;
                stats.floor_slots += *floor as u64;
            }
            Outcome::Shed => stats.shed += 1,
            Outcome::Deadline => stats.deadline += 1,
        }
    }
    stats
        .answered_us
        .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    stats
}

/// Run the overload sweep and write the JSON artifact. Returns the
/// output path.
pub fn run_overload_bench(opts: &OverloadBenchOptions) -> String {
    let ops_per_client = if opts.smoke { 40 } else { 300 };
    eprintln!(
        "overload bench: mode={} model=closed-loop-saturating seed={}",
        if opts.smoke { "smoke" } else { "full" },
        opts.seed
    );
    let (service_us, w) = unloaded_service_us(opts.smoke, opts.seed);
    let slo_us = (service_us * SLO_OVER_SERVICE).max(200.0);
    eprintln!(
        "unloaded full-precision service: {service_us:.0}us/batch -> SLO {slo_us:.0}us \
         ({SLO_OVER_SERVICE}x service)"
    );
    let mut runs = Vec::new();
    for &load in &LOADS {
        for brownout in [false, true] {
            let r = run_overload(&w, brownout, load, ops_per_client, slo_us, opts.seed);
            eprintln!(
                "  {}x {:<11} {} clients: {}/{} answered in-SLO ({:.1}/s goodput), \
                 {} late, {} shed, {} deadline, slots full/brownout/floor {}/{}/{}, \
                 p999 {:.0}us",
                r.load,
                r.mode,
                r.clients,
                r.answered,
                r.batches,
                r.goodput(),
                r.late,
                r.shed,
                r.deadline,
                r.full_slots,
                r.brownout_slots,
                r.floor_slots,
                r.p(0.999),
            );
            runs.push(r);
        }
    }
    let find = |load: usize, mode: &str| {
        runs.iter()
            .find(|r| r.load == load && r.mode == mode)
            .expect("run exists")
    };
    let base_4x = find(4, "refuse-only");
    let brown_4x = find(4, "brownout");
    let ratio_4x = brown_4x.goodput() / base_4x.goodput().max(1e-9);
    let p999_4x = brown_4x.p(0.999);
    let p999_cap = slo_us * P999_SLO_CAP;
    eprintln!(
        "4x load: brownout {:.1}/s vs refuse-only {:.1}/s (x{ratio_4x:.2}); \
         brownout p999 {p999_4x:.0}us (cap {p999_cap:.0}us)",
        brown_4x.goodput(),
        base_4x.goodput()
    );
    if !opts.smoke {
        assert!(
            ratio_4x >= GOODPUT_GATE_4X,
            "brownout within-SLO goodput only x{ratio_4x:.2} the refuse-only baseline \
             at 4x load (gate: >= {GOODPUT_GATE_4X}x)"
        );
        assert!(
            p999_4x <= p999_cap,
            "brownout p999 {p999_4x:.0}us exceeds the SLO cap {p999_cap:.0}us at 4x load"
        );
        assert!(
            brown_4x.tier_brownout_seen,
            "the 4x brownout run never left the Normal tier — load did not saturate"
        );
        assert!(
            brown_4x.brownout_slots > 0,
            "the 4x brownout run served no brownout slots"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = write!(
        json,
        "  \"schema\": \"selest-overload-bench/1\",\n  \"generator\": \"crates/bench/src/overload.rs (selest serve --bench --overload)\",\n  \"mode\": \"{}\",\n  \"model\": \"closed-loop-saturating\",\n  \"seed\": {},\n  \"rows\": {},\n  \"batches\": {},\n  \"queries_per_batch\": {},\n  \"ops_per_client\": {ops_per_client},\n  \"hardware_threads\": {},\n  \"service_full_us\": {service_us:.1},\n  \"slo_us\": {slo_us:.1},\n  \"slo_over_service\": {SLO_OVER_SERVICE},\n  \"runs\": [\n",
        if opts.smoke { "smoke" } else { "full" },
        opts.seed,
        w.rows,
        w.batches.len(),
        w.batches[0].len(),
        selest_par::available_workers(),
    );
    let run_lines: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"load\": {}, \"mode\": \"{}\", \"clients\": {}, \"wall_ms\": {:.1}, \
                 \"batches\": {}, \"answered_in_slo\": {}, \"late\": {}, \"shed\": {}, \
                 \"deadline_refused\": {}, \
                 \"goodput_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
                 \"p999_us\": {:.1}, \"slots_full\": {}, \"slots_brownout\": {}, \
                 \"slots_floor\": {}, \"mismatches\": 0}}",
                r.load,
                r.mode,
                r.clients,
                r.wall_s * 1e3,
                r.batches,
                r.answered,
                r.late,
                r.shed,
                r.deadline,
                r.goodput(),
                r.p(0.50),
                r.p(0.99),
                r.p(0.999),
                r.full_slots,
                r.brownout_slots,
                r.floor_slots,
            )
        })
        .collect();
    let _ = write!(json, "{}", run_lines.join(",\n"));
    let _ = write!(
        json,
        "\n  ],\n  \"gates\": {{\"goodput_ratio_4x\": {ratio_4x:.4}, \
         \"goodput_gate\": {GOODPUT_GATE_4X}, \"p999_us_brownout_4x\": {p999_4x:.1}, \
         \"p999_cap_us\": {p999_cap:.1}, \"mismatches\": 0}}\n}}\n"
    );
    std::fs::write(&opts.out, &json).unwrap_or_else(|e| {
        eprintln!("write {}: {e}", opts.out);
        std::process::exit(1);
    });
    eprintln!("wrote {}", opts.out);
    opts.out.clone()
}
