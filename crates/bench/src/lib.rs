//! Shared fixtures for the benchmark targets: small deterministic data
//! files, samples, and query sets so every bench measures computation, not
//! setup noise.

use selest_core::{Domain, RangeQuery};
use selest_data::{sample_without_replacement, DataFile, PaperFile, QueryFile};

/// A reduced n(20)-style fixture: data, 1 000-record sample, 1 % queries.
pub struct Fixture {
    /// The generated data file.
    pub data: DataFile,
    /// Sample set for estimator construction.
    pub sample: Vec<f64>,
    /// 1 % query file.
    pub queries: Vec<RangeQuery>,
}

/// Build the standard benchmark fixture from any paper file (scaled 20x
/// down, 1 000 samples, 200 queries).
pub fn fixture(file: PaperFile) -> Fixture {
    let data = file.generate_scaled(20);
    let sample = sample_without_replacement(data.values(), 1_000.min(data.len()), 7);
    let queries = QueryFile::generate(&data, 0.01, 200, 3).queries().to_vec();
    Fixture { data, sample, queries }
}

/// The fixture's domain.
pub fn domain(f: &Fixture) -> Domain {
    f.data.domain()
}

/// Sum of selectivities over the fixture's queries — the standard "answer
/// the whole query file" workload benched for each estimator.
pub fn total_selectivity<E: selest_core::SelectivityEstimator + ?Sized>(
    est: &E,
    queries: &[RangeQuery],
) -> f64 {
    queries.iter().map(|q| est.selectivity(q)).sum()
}
