//! Shared fixtures for the benchmark targets: small deterministic data
//! files, samples, and query sets so every bench measures computation, not
//! setup noise.

use selest_core::{Domain, RangeQuery};
use selest_data::{sample_without_replacement, DataFile, PaperFile, QueryFile};

/// A reduced n(20)-style fixture: data, 1 000-record sample, 1 % queries.
pub struct Fixture {
    /// The generated data file.
    pub data: DataFile,
    /// Sample set for estimator construction.
    pub sample: Vec<f64>,
    /// 1 % query file.
    pub queries: Vec<RangeQuery>,
}

/// Build the standard benchmark fixture from any paper file (scaled 20x
/// down, 1 000 samples, 200 queries).
pub fn fixture(file: PaperFile) -> Fixture {
    let data = file.generate_scaled(20);
    let sample = sample_without_replacement(data.values(), 1_000.min(data.len()), 7);
    let queries = QueryFile::generate(&data, 0.01, 200, 3).queries().to_vec();
    Fixture {
        data,
        sample,
        queries,
    }
}

/// The fixture's domain.
pub fn domain(f: &Fixture) -> Domain {
    f.data.domain()
}

/// Sum of selectivities over the fixture's queries — the standard "answer
/// the whole query file" workload benched for each estimator.
///
/// Kahan-compensated so the checksum is stable when the same per-query
/// values arrive from a different evaluation strategy (per-query loop vs.
/// the batched merge scan): both paths produce identical per-query values
/// in identical order, and the compensated sum keeps the reduction from
/// magnifying rounding differences into checksum noise.
pub fn total_selectivity<E: selest_core::SelectivityEstimator + ?Sized>(
    est: &E,
    queries: &[RangeQuery],
) -> f64 {
    selest_math::kahan_sum(queries.iter().map(|q| est.selectivity(q)))
}

/// Batched counterpart of [`total_selectivity`]: same Kahan reduction over
/// [`selest_core::SelectivityEstimator::selectivity_batch`]. Bit-identical
/// to [`total_selectivity`] for conforming batch overrides.
pub fn total_selectivity_batch<E: selest_core::SelectivityEstimator + ?Sized>(
    est: &E,
    queries: &[RangeQuery],
) -> f64 {
    selest_math::kahan_sum(est.selectivity_batch(queries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use selest_core::SelectivityEstimator;
    use selest_kernel::{BoundaryPolicy, KernelEstimator, KernelFn};

    #[test]
    fn checksum_is_identical_for_both_evaluation_strategies() {
        let f = fixture(PaperFile::Normal { p: 15 });
        let est = KernelEstimator::new(
            &f.sample,
            f.data.domain(),
            KernelFn::Epanechnikov,
            f.data.domain().width() / 64.0,
            BoundaryPolicy::Reflection,
        );
        let seq = total_selectivity(&est, &f.queries);
        let batch = total_selectivity_batch(&est, &f.queries);
        assert_eq!(seq.to_bits(), batch.to_bits());
        assert!(seq.is_finite() && seq > 0.0);
        // Spot-check the reduction itself against a plain loop of the
        // identical per-query values.
        let naive = selest_math::kahan_sum(f.queries.iter().map(|q| est.selectivity(q)));
        assert_eq!(seq.to_bits(), naive.to_bits());
    }
}
