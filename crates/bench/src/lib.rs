//! Shared fixtures for the benchmark targets: small deterministic data
//! files, samples, and query sets so every bench measures computation, not
//! setup noise.

use selest_core::{Domain, RangeQuery};
use selest_data::{sample_without_replacement, DataFile, PaperFile, QueryFile};

pub mod ingest;
pub mod overload;
pub mod serving;

/// A reduced n(20)-style fixture: data, 1 000-record sample, 1 % queries.
pub struct Fixture {
    /// The generated data file.
    pub data: DataFile,
    /// Sample set for estimator construction.
    pub sample: Vec<f64>,
    /// 1 % query file.
    pub queries: Vec<RangeQuery>,
}

/// Build the standard benchmark fixture from any paper file (scaled 20x
/// down, 1 000 samples, 200 queries).
pub fn fixture(file: PaperFile) -> Fixture {
    let data = file.generate_scaled(20);
    let sample = sample_without_replacement(data.values(), 1_000.min(data.len()), 7);
    let queries = QueryFile::generate(&data, 0.01, 200, 3).queries().to_vec();
    Fixture {
        data,
        sample,
        queries,
    }
}

/// The fixture's domain.
pub fn domain(f: &Fixture) -> Domain {
    f.data.domain()
}

/// Sum of selectivities over the fixture's queries — the standard "answer
/// the whole query file" workload benched for each estimator.
///
/// Kahan-compensated so the checksum is stable when the same per-query
/// values arrive from a different evaluation strategy (per-query loop vs.
/// the batched merge scan): both paths produce identical per-query values
/// in identical order, and the compensated sum keeps the reduction from
/// magnifying rounding differences into checksum noise.
pub fn total_selectivity<E: selest_core::SelectivityEstimator + ?Sized>(
    est: &E,
    queries: &[RangeQuery],
) -> f64 {
    selest_math::kahan_sum(queries.iter().map(|q| est.selectivity(q)))
}

/// Batched counterpart of [`total_selectivity`]: same Kahan reduction over
/// [`selest_core::SelectivityEstimator::selectivity_batch`]. Bit-identical
/// to [`total_selectivity`] for conforming batch overrides.
pub fn total_selectivity_batch<E: selest_core::SelectivityEstimator + ?Sized>(
    est: &E,
    queries: &[RangeQuery],
) -> f64 {
    selest_math::kahan_sum(est.selectivity_batch(queries))
}

/// Allocation-free counterpart of [`total_selectivity_batch`]: answers
/// land in the caller's reusable buffers via
/// [`selest_core::SelectivityEstimator::selectivity_batch_into`], so a
/// warm timing loop measures pure estimation. Bit-identical to both other
/// strategies for conforming overrides.
pub fn total_selectivity_batch_into<E: selest_core::SelectivityEstimator + ?Sized>(
    est: &E,
    queries: &[RangeQuery],
    scratch: &mut selest_core::BatchScratch,
    out: &mut Vec<f64>,
) -> f64 {
    out.clear();
    out.resize(queries.len(), 0.0);
    est.selectivity_batch_into(queries, scratch, out);
    selest_math::kahan_sum(out.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use selest_core::SelectivityEstimator;
    use selest_kernel::{BoundaryPolicy, KernelEstimator, KernelFn};

    /// Manual profiling aid for the histogram seq row: times the dyn
    /// dispatch loop, the concrete loop, and the lookup alone.
    #[test]
    #[ignore = "manual profiling aid"]
    fn profile_histogram_seq() {
        use selest_histogram::{equi_width, BinRule, NormalScaleBins};
        let f = fixture(PaperFile::Uniform { p: 15 });
        let domain = f.data.domain();
        let k = NormalScaleBins.bins(&f.sample, &domain);
        let hist = equi_width(&f.sample, domain, k);
        eprintln!("bins: {}", hist.n_bins());
        let dynest: Box<dyn SelectivityEstimator> = Box::new(hist.clone());
        let reps = 2000;
        let t0 = std::time::Instant::now();
        let mut acc = 0.0;
        for _ in 0..reps {
            acc += total_selectivity(dynest.as_ref(), &f.queries);
        }
        let dyn_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            acc += total_selectivity(&hist, &f.queries);
        }
        let conc_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            let mut s = 0.0;
            for q in &f.queries {
                s += hist.selectivity(q);
            }
            acc += s;
        }
        let plain_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        eprintln!("dyn+kahan {dyn_us:.2}us  concrete+kahan {conc_us:.2}us  concrete+plainsum {plain_us:.2}us  (acc {acc})");
    }

    #[test]
    fn checksum_is_identical_for_both_evaluation_strategies() {
        let f = fixture(PaperFile::Normal { p: 15 });
        let est = KernelEstimator::new(
            &f.sample,
            f.data.domain(),
            KernelFn::Epanechnikov,
            f.data.domain().width() / 64.0,
            BoundaryPolicy::Reflection,
        );
        let seq = total_selectivity(&est, &f.queries);
        let batch = total_selectivity_batch(&est, &f.queries);
        assert_eq!(seq.to_bits(), batch.to_bits());
        assert!(seq.is_finite() && seq > 0.0);
        // Spot-check the reduction itself against a plain loop of the
        // identical per-query values.
        let naive = selest_math::kahan_sum(f.queries.iter().map(|q| est.selectivity(q)));
        assert_eq!(seq.to_bits(), naive.to_bits());
    }
}
