//! The tracked perf harness: times estimator construction and query-file
//! throughput (sequential per-query loop vs. batched merge scan vs.
//! allocation-free `_into` batch vs. parallel chunked evaluation) on the
//! standard fixtures and writes a JSON baseline (`BENCH_PR7.json`) so the
//! repo's perf trajectory is a committed, diffable artifact instead of
//! folklore.
//!
//! ```text
//! perf [--smoke] [--out FILE] [--jobs N]
//! ```
//!
//! `--smoke` runs one timing repetition per measurement — enough for CI to
//! prove the harness works end to end, useless for comparing numbers.
//! Invoke through `scripts/bench.sh`, which picks the output path;
//! `scripts/bench_compare.sh` diffs two baselines and fails on regression.
//!
//! Every measurement cross-checks the batch path against the per-query
//! path (bit-identical Kahan checksums) before it is reported, so a perf
//! number can never be quoted for a path that drifted semantically. The
//! fast kernel rows additionally sweep `SELEST_LANES` (scalar / 4 / 8) and
//! emit one `name@lanes=<w>` row per width, each carrying the raw
//! `checksum_bits` of its Kahan sum — asserted bit-identical to the
//! default-lane run here and string-compared again by
//! `scripts/bench_compare.sh --simd`, so the SIMD strips are provably the
//! same arithmetic as the scalar path, not an approximation of it. The
//! `kernel-*-dpi2` rows are additionally cross-checked against
//! `kernel-*-dpi2-naive` twins built over the O(n^2) oracle functional
//! sum: their query-file checksums must agree within 1e-3 relative (the
//! documented fast-path tolerance, DESIGN.md §9). A `suite-build` pseudo
//! fixture times the full [`selest_store::EstimatorKind::ALL`] suite over
//! one 100k-value column, legacy per-estimator construction vs. one shared
//! `PreparedColumn` (DESIGN.md §10) — the two suites must answer the query
//! file bit-identically, and in full mode the prepared path must build the
//! suite >= 2x faster. A `catalog` section times the parallel catalog
//! ANALYZE and asserts its exported evidence is byte-identical to the
//! single-worker build. A `fault_overhead` section times the PR 2 batch
//! workload through the infallible engine and through the fault-isolated
//! `try_map_chunks` sibling with no faults injected: the per-chunk sums
//! must be bit-identical, and in full mode the fault-free try path must
//! stay within 5% of the plain path (DESIGN.md §11).

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use bench::{
    fixture, total_selectivity, total_selectivity_batch, total_selectivity_batch_into, Fixture,
};
use selest_core::{BatchScratch, ExactSelectivity, SelectivityEstimator};
use selest_data::PaperFile;
use selest_experiments::harness::evaluate_jobs;
use selest_histogram::{
    equi_depth, equi_width, max_diff, AverageShiftedHistogram, BinRule, NormalScaleBins,
};
use selest_hybrid::HybridEstimator;
use selest_kernel::{BandwidthSelector, BoundaryPolicy, DirectPlugIn, KernelEstimator, KernelFn};
use selest_simd::{set_lanes, LaneMode};
use selest_store::{encode_statistics, AnalyzeConfig, Column, Relation, StatisticsCatalog};

/// Best-of-`reps` wall time of `f`, in microseconds, plus the last result.
fn time_best_us<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

struct EstimatorRow {
    name: String,
    build_us: f64,
    seq_us: f64,
    batch_us: f64,
    batch_into_us: f64,
    par_us: f64,
    checksum: f64,
    /// `(lane label, batch_us, checksum)` per SELEST_LANES width, for the
    /// fast kernel rows; each run's checksum is asserted bit-identical to
    /// `checksum` before it lands here, and emitted anyway so the JSON
    /// carries the primary evidence for `bench_compare.sh --simd`.
    lanes: Vec<(&'static str, f64, f64)>,
}

type Builder<'a> = Box<dyn Fn() -> Box<dyn SelectivityEstimator + Sync> + 'a>;

fn builders(f: &Fixture) -> Vec<(&'static str, Builder<'_>)> {
    let domain = f.data.domain();
    let k = NormalScaleBins.bins(&f.sample, &domain);
    vec![
        (
            "sampling",
            Box::new(move || Box::new(selest_core::SamplingEstimator::new(&f.sample, domain)) as _),
        ),
        (
            "ewh-ns",
            Box::new(move || Box::new(equi_width(&f.sample, domain, k)) as _),
        ),
        (
            "edh-ns",
            Box::new(move || Box::new(equi_depth(&f.sample, domain, k)) as _),
        ),
        (
            "mdh-ns",
            Box::new(move || Box::new(max_diff(&f.sample, domain, k)) as _),
        ),
        (
            "ash-ns",
            Box::new(move || Box::new(AverageShiftedHistogram::new(&f.sample, domain, k, 10)) as _),
        ),
        (
            "kernel-bk-dpi2",
            Box::new(move || {
                let h = DirectPlugIn::two_stage()
                    .bandwidth(&f.sample, KernelFn::Epanechnikov)
                    .min(0.5 * domain.width());
                Box::new(KernelEstimator::new(
                    &f.sample,
                    domain,
                    KernelFn::Epanechnikov,
                    h,
                    BoundaryPolicy::BoundaryKernel,
                )) as _
            }),
        ),
        (
            "kernel-refl-dpi2",
            Box::new(move || {
                let h = DirectPlugIn::two_stage().bandwidth(&f.sample, KernelFn::Epanechnikov);
                Box::new(KernelEstimator::new(
                    &f.sample,
                    domain,
                    KernelFn::Epanechnikov,
                    h,
                    BoundaryPolicy::Reflection,
                )) as _
            }),
        ),
        // O(n^2) oracle twins of the two kernel rows: their build times
        // quantify the fast-path speedup, their checksums pin its drift.
        (
            "kernel-bk-dpi2-naive",
            Box::new(move || {
                let h = DirectPlugIn::two_stage_naive()
                    .bandwidth(&f.sample, KernelFn::Epanechnikov)
                    .min(0.5 * domain.width());
                Box::new(KernelEstimator::new(
                    &f.sample,
                    domain,
                    KernelFn::Epanechnikov,
                    h,
                    BoundaryPolicy::BoundaryKernel,
                )) as _
            }),
        ),
        (
            "kernel-refl-dpi2-naive",
            Box::new(move || {
                let h =
                    DirectPlugIn::two_stage_naive().bandwidth(&f.sample, KernelFn::Epanechnikov);
                Box::new(KernelEstimator::new(
                    &f.sample,
                    domain,
                    KernelFn::Epanechnikov,
                    h,
                    BoundaryPolicy::Reflection,
                )) as _
            }),
        ),
        (
            "hybrid",
            Box::new(move || Box::new(HybridEstimator::new(&f.sample, domain)) as _),
        ),
    ]
}

/// Fast-vs-naive agreement gate: the documented DESIGN.md §9 tolerance on
/// the query-file checksum of a fast-path kernel estimator relative to its
/// O(n^2) oracle twin.
const FAST_PATH_CHECKSUM_TOL: f64 = 1e-3;

fn bench_fixture(file: PaperFile, reps: usize, jobs: usize, json: &mut String) {
    let f = fixture(file);
    let exact = ExactSelectivity::new(f.data.values(), f.data.domain());
    eprintln!(
        "fixture {}: {} records, {} samples, {} queries",
        f.data.name(),
        f.data.len(),
        f.sample.len(),
        f.queries.len()
    );
    let _ = write!(
        json,
        "    {{\n      \"file\": \"{}\",\n      \"records\": {},\n      \"sample\": {},\n      \"queries\": {},\n      \"estimators\": [\n",
        f.data.name(),
        f.data.len(),
        f.sample.len(),
        f.queries.len()
    );
    let builders = builders(&f);
    let mut rows: Vec<EstimatorRow> = Vec::new();
    let mut scratch = BatchScratch::new();
    let mut into_out: Vec<f64> = Vec::new();
    for (name, build) in &builders {
        let (build_us, est) = time_best_us(reps, build);
        let (seq_us, seq_sum) = time_best_us(reps, || total_selectivity(&est, &f.queries));
        let (batch_us, batch_sum) =
            time_best_us(reps, || total_selectivity_batch(&est, &f.queries));
        assert_eq!(
            seq_sum.to_bits(),
            batch_sum.to_bits(),
            "{name}: batch checksum {batch_sum} drifted from per-query {seq_sum}"
        );
        // Warm the scratch once, then time the allocation-free path.
        let _ = total_selectivity_batch_into(&est, &f.queries, &mut scratch, &mut into_out);
        let (batch_into_us, into_sum) = time_best_us(reps, || {
            total_selectivity_batch_into(&est, &f.queries, &mut scratch, &mut into_out)
        });
        assert_eq!(
            into_sum.to_bits(),
            seq_sum.to_bits(),
            "{name}: batch_into checksum {into_sum} drifted from per-query {seq_sum}"
        );
        // Lane sweep on the fast kernel rows: every SELEST_LANES width
        // must reproduce the default run bit-for-bit while its timing is
        // recorded.
        let mut lanes: Vec<(&'static str, f64, f64)> = Vec::new();
        if matches!(*name, "kernel-bk-dpi2" | "kernel-refl-dpi2") {
            for mode in LaneMode::ALL {
                set_lanes(Some(mode));
                let (lane_us, lane_sum) =
                    time_best_us(reps, || total_selectivity_batch(&est, &f.queries));
                set_lanes(None);
                assert_eq!(
                    lane_sum.to_bits(),
                    seq_sum.to_bits(),
                    "{name}@lanes={}: checksum {lane_sum} drifted from default {seq_sum}",
                    mode.label()
                );
                lanes.push((mode.label(), lane_us, lane_sum));
            }
        }
        let (par_us, _) = time_best_us(reps, || {
            evaluate_jobs(&est, &f.queries, &exact, jobs).count()
        });
        eprintln!(
            "  {name:<18} build {build_us:>9.1}us  seq {seq_us:>9.1}us  batch {batch_us:>9.1}us  \
             (x{:.2})  into {batch_into_us:>9.1}us  par-eval {par_us:>9.1}us",
            seq_us / batch_us
        );
        for (label, lane_us, _) in &lanes {
            eprintln!("  {name:<18}   lanes={label:<6} batch {lane_us:>9.1}us");
        }
        rows.push(EstimatorRow {
            name: (*name).to_owned(),
            build_us,
            seq_us,
            batch_us,
            batch_into_us,
            par_us,
            checksum: seq_sum,
            lanes,
        });
    }
    // Fast-vs-oracle gate: each kernel row must agree with its naive twin
    // within the documented tolerance, and in full (multi-rep) mode the
    // fast path must also build >= 10x faster than the oracle twin. The
    // speedup check is skipped for 1-rep smoke runs, whose timings are
    // noise (the tracked full-mode margin is ~150x, DESIGN.md §9).
    for fast_name in ["kernel-bk-dpi2", "kernel-refl-dpi2"] {
        let fast = rows.iter().find(|r| r.name == fast_name).expect("fast row");
        let naive_name = format!("{fast_name}-naive");
        let naive = rows
            .iter()
            .find(|r| r.name == naive_name)
            .expect("naive row");
        let rel = (fast.checksum - naive.checksum).abs() / naive.checksum.abs().max(1e-300);
        assert!(
            rel <= FAST_PATH_CHECKSUM_TOL,
            "{fast_name}: fast checksum {} drifted {rel:.2e} from oracle {}",
            fast.checksum,
            naive.checksum
        );
        let speedup = naive.build_us / fast.build_us;
        assert!(
            reps == 1 || speedup >= 10.0,
            "{fast_name}: fast build only x{speedup:.1} vs oracle (gate: >= 10x)"
        );
        eprintln!("  {fast_name}: build speedup x{speedup:.1} vs oracle, checksum drift {rel:.2e}");
    }
    // Emit the main rows, then one sub-row per swept lane width. The lane
    // rows carry the checksum measured *at that lane width* (already
    // asserted bit-identical in-process), so bench_compare's `--simd`
    // gate can string-compare `checksum_bits` against the parent row as
    // independent evidence.
    let mut lines: Vec<String> = Vec::new();
    for r in rows.iter() {
        lines.push(format!(
            "        {{\"name\": \"{}\", \"build_us\": {:.2}, \"seq_us\": {:.2}, \
             \"batch_us\": {:.2}, \"speedup_batch\": {:.4}, \"batch_into_us\": {:.2}, \
             \"par_eval_us\": {:.2}, \"checksum\": {:.12}, \"checksum_bits\": {}}}",
            r.name,
            r.build_us,
            r.seq_us,
            r.batch_us,
            r.seq_us / r.batch_us,
            r.batch_into_us,
            r.par_us,
            r.checksum,
            r.checksum.to_bits(),
        ));
        for (label, lane_us, lane_sum) in &r.lanes {
            lines.push(format!(
                "        {{\"name\": \"{}@lanes={label}\", \"batch_us\": {lane_us:.2}, \
                 \"checksum\": {:.12}, \"checksum_bits\": {}}}",
                r.name,
                lane_sum,
                lane_sum.to_bits(),
            ));
        }
    }
    let _ = write!(json, "{}", lines.join(",\n"));
    let _ = write!(json, "\n      ]\n    }}");
}

/// Full-suite construction over one large column: every
/// [`selest_store::EstimatorKind`] built from the same 100k-value sample,
/// once the legacy way (each estimator re-sorts and re-scans its own copy)
/// and once over a single shared [`selest_core::PreparedColumn`] (one sort
/// total, every constructor borrowing the sorted slice / ECDF / summary —
/// DESIGN.md §10). Both suites answer the 1% query file and must produce
/// bit-identical Kahan checksums before any timing is reported; in full
/// (multi-rep) mode the prepared path must build the suite >= 2x faster.
fn bench_suite_build(reps: usize, json: &mut String) {
    use selest_store::EstimatorKind;
    // Cap the repetitions: one rep builds sixteen estimators over 100k
    // values, so even a handful of reps is past timing noise.
    let reps = reps.min(5);
    let data = PaperFile::Normal { p: 20 }.generate();
    let sample = data.values().to_vec();
    let domain = data.domain();
    let queries = selest_data::QueryFile::generate(&data, 0.01, 200, 3)
        .queries()
        .to_vec();
    let suite_checksum = |suite: &[Box<dyn SelectivityEstimator + Send + Sync>]| {
        selest_math::kahan_sum(
            suite
                .iter()
                .flat_map(|est| queries.iter().map(move |q| est.selectivity(q))),
        )
    };
    // The legacy arm is the pre-substrate construction path: each kind
    // goes through its public slice-based constructor, so every bin rule,
    // bandwidth selector, and estimator re-sorts (and re-copies) the
    // sample on its own, exactly as `build_estimator` historically did.
    let legacy_build = |kind: EstimatorKind| -> Box<dyn SelectivityEstimator + Send + Sync> {
        match kind {
            EstimatorKind::Uniform => Box::new(selest_core::UniformEstimator::new(domain)),
            EstimatorKind::Sampling => {
                Box::new(selest_core::SamplingEstimator::new(&sample, domain))
            }
            EstimatorKind::EquiWidth => {
                let k = NormalScaleBins.bins(&sample, &domain);
                Box::new(equi_width(&sample, domain, k))
            }
            EstimatorKind::EquiDepth => {
                let k = NormalScaleBins.bins(&sample, &domain);
                Box::new(equi_depth(&sample, domain, k))
            }
            EstimatorKind::MaxDiff => {
                let k = NormalScaleBins.bins(&sample, &domain);
                Box::new(max_diff(&sample, domain, k))
            }
            EstimatorKind::Ash => {
                let k = NormalScaleBins.bins(&sample, &domain);
                Box::new(AverageShiftedHistogram::new(&sample, domain, k, 10))
            }
            EstimatorKind::Kernel => {
                let h = DirectPlugIn::two_stage()
                    .bandwidth(&sample, KernelFn::Epanechnikov)
                    .min(0.5 * domain.width());
                Box::new(KernelEstimator::new(
                    &sample,
                    domain,
                    KernelFn::Epanechnikov,
                    h,
                    BoundaryPolicy::BoundaryKernel,
                ))
            }
            EstimatorKind::Hybrid => Box::new(HybridEstimator::new(&sample, domain)),
        }
    };
    let (legacy_us, legacy_suite) = time_best_us(reps, || {
        EstimatorKind::ALL
            .iter()
            .map(|&kind| legacy_build(kind))
            .collect::<Vec<_>>()
    });
    let (prepared_us, prepared_suite) = time_best_us(reps, || {
        let col = selest_core::PreparedColumn::prepare(&sample, domain);
        EstimatorKind::ALL
            .iter()
            .map(|&kind| selest_store::build_estimator_from_prepared(&col, kind))
            .collect::<Vec<_>>()
    });
    let legacy_sum = suite_checksum(&legacy_suite);
    let prepared_sum = suite_checksum(&prepared_suite);
    assert_eq!(
        legacy_sum.to_bits(),
        prepared_sum.to_bits(),
        "suite-build: prepared-path checksum {prepared_sum} drifted from legacy {legacy_sum}"
    );
    let speedup = legacy_us / prepared_us;
    assert!(
        reps == 1 || speedup >= 2.0,
        "suite-build: prepared path only x{speedup:.2} vs legacy (gate: >= 2x)"
    );
    eprintln!(
        "suite-build {}: {} values x {} estimators, legacy {legacy_us:.1}us, prepared \
         {prepared_us:.1}us (x{speedup:.2}), checksum drift 0",
        data.name(),
        sample.len(),
        EstimatorKind::ALL.len()
    );
    let _ = write!(
        json,
        "    {{\n      \"file\": \"suite-build-{}\",\n      \"records\": {},\n      \"sample\": {},\n      \"queries\": {},\n      \"estimators\": [\n        {{\"name\": \"legacy\", \"build_us\": {:.2}, \"checksum\": {:.12}}},\n        {{\"name\": \"prepared\", \"build_us\": {:.2}, \"speedup_vs_legacy\": {:.4}, \"checksum\": {:.12}}}\n      ]\n    }}",
        data.name(),
        data.len(),
        sample.len(),
        queries.len(),
        legacy_us,
        legacy_sum,
        prepared_us,
        speedup,
        prepared_sum
    );
}

/// Multi-attribute ANALYZE scaling: an 8-column relation (deterministic
/// affine transforms of the n(20) fixture values) analyzed with the
/// paper's kernel configuration, single-worker vs. the full pool. The
/// exported evidence must be byte-identical either way before any timing
/// is reported.
fn bench_catalog(reps: usize, jobs: usize, json: &mut String) {
    let f = fixture(PaperFile::Normal { p: 20 });
    let base = f.data.values();
    let lo = base.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = base.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut rel = Relation::new("bench8");
    for c in 0..8usize {
        // Per-column affine transform: distinct domains and scales, same
        // underlying shape, so every column does real plug-in work.
        let scale = 1.0 + 0.25 * c as f64;
        let shift = 1_000.0 * c as f64;
        let values: Vec<f64> = base.iter().map(|&v| v * scale + shift).collect();
        let domain = selest_core::Domain::new(lo * scale + shift, hi * scale + shift);
        rel.add_column(Column::new(&format!("c{c}"), domain, values));
    }
    let config = AnalyzeConfig {
        sample_size: 1_000,
        ..Default::default()
    };
    let build = |jobs: usize| {
        let mut cat = StatisticsCatalog::new();
        cat.analyze_jobs(&rel, &config, jobs);
        cat
    };
    let (seq_us, seq_cat) = time_best_us(reps, || build(1));
    let (par_us, par_cat) = time_best_us(reps, || build(jobs));
    let seq_evidence = encode_statistics(&seq_cat.export());
    let par_evidence = encode_statistics(&par_cat.export());
    assert_eq!(
        seq_evidence, par_evidence,
        "parallel ANALYZE produced different evidence than single-worker"
    );
    eprintln!(
        "catalog bench8: 8 columns x {} rows, analyze 1 worker {seq_us:.1}us, {jobs} workers \
         {par_us:.1}us (x{:.2})",
        base.len(),
        seq_us / par_us
    );
    let _ = writeln!(
        json,
        "  \"catalog\": {{\"columns\": 8, \"rows\": {}, \"kind\": \"kernel\", \
         \"analyze_seq_us\": {:.2}, \"analyze_par_us\": {:.2}, \"speedup_par\": {:.4}, \
         \"jobs\": {}, \"export_identical\": true}},",
        base.len(),
        seq_us,
        par_us,
        seq_us / par_us,
        jobs
    );
}

/// The fault-tolerance tax on the hot serving path: the PR 2 batch
/// workload (chunked `selectivity_batch` over the 1% query file, paper
/// kernel configuration) run through the infallible
/// [`selest_par::parallel_chunks_jobs`] engine and through its
/// fault-isolated sibling [`selest_par::try_map_chunks`] with no faults
/// injected. Per-chunk Kahan sums must be bit-identical across the two
/// paths before any timing is reported; in full (multi-rep) mode the
/// fault-free try path must stay within 5% of the plain path — the cost
/// of `catch_unwind`, the per-task clock, and the deadline check is paid
/// once per chunk, not per query.
fn bench_fault_overhead(reps: usize, jobs: usize, json: &mut String) {
    const CHUNK: usize = 64;
    const FAULT_FREE_OVERHEAD_GATE: f64 = 1.05;
    let f = fixture(PaperFile::Normal { p: 20 });
    let domain = f.data.domain();
    let h = DirectPlugIn::two_stage()
        .bandwidth(&f.sample, KernelFn::Epanechnikov)
        .min(0.5 * domain.width());
    let est = KernelEstimator::new(
        &f.sample,
        domain,
        KernelFn::Epanechnikov,
        h,
        BoundaryPolicy::BoundaryKernel,
    );
    // Widen the workload (10 passes over the query file) so per-chunk
    // work dwarfs timer granularity and the 5% gate measures engine
    // overhead, not noise.
    let queries: Vec<_> = std::iter::repeat_with(|| f.queries.iter().copied())
        .take(10)
        .flatten()
        .collect();
    let chunk_sum =
        |chunk: &[selest_core::RangeQuery]| selest_math::kahan_sum(est.selectivity_batch(chunk));
    let cfg = selest_par::TryConfig::jobs(jobs);
    // Interleave the two paths rep-by-rep and keep each path's best
    // time. Timing all plain reps then all try reps lets slow drift on
    // a shared box (frequency scaling, co-tenants) land entirely on one
    // side — observed to swing the ratio by ±5%, as large as the
    // overhead being measured. Alternating trials exposes both paths to
    // the same drift, so the best-of-reps ratio isolates engine cost.
    let mut plain_us = f64::INFINITY;
    let mut try_us = f64::INFINITY;
    let mut plain = Vec::new();
    let mut tried = Vec::new();
    for _ in 0..reps {
        let (t, r) = time_best_us(1, || {
            selest_par::parallel_chunks_jobs(&queries, CHUNK, jobs, chunk_sum)
        });
        plain_us = plain_us.min(t);
        plain = r;
        let (t, r) = time_best_us(1, || {
            selest_par::try_map_chunks(&queries, CHUNK, &cfg, chunk_sum)
                .into_complete()
                .expect("no faults injected")
        });
        try_us = try_us.min(t);
        tried = r;
    }
    assert_eq!(plain.len(), tried.len());
    for (c, (a, b)) in plain.iter().zip(&tried).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "fault-overhead: try path drifted from plain path on chunk {c}"
        );
    }
    let ratio = try_us / plain_us;
    assert!(
        reps == 1 || ratio <= FAULT_FREE_OVERHEAD_GATE,
        "fault-overhead: fault-free try_map_chunks is x{ratio:.3} of map_chunks \
         (gate: <= {FAULT_FREE_OVERHEAD_GATE})"
    );
    eprintln!(
        "fault-overhead: {} queries / {CHUNK}-query chunks, plain {plain_us:.1}us, \
         try {try_us:.1}us (x{ratio:.3}), checksums identical",
        queries.len()
    );
    let _ = write!(
        json,
        "  \"fault_overhead\": {{\"queries\": {}, \"chunk\": {CHUNK}, \"plain_us\": {:.2}, \
         \"try_us\": {:.2}, \"overhead_ratio\": {:.4}, \"jobs\": {}, \"checksum_identical\": true}}",
        queries.len(),
        plain_us,
        try_us,
        ratio,
        jobs
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_PR7.json".to_owned();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a file path");
                    std::process::exit(2);
                });
            }
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--jobs needs a worker count");
                    std::process::exit(2);
                });
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => selest_par::set_jobs(n),
                    _ => {
                        eprintln!("--jobs needs a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("usage: perf [--smoke] [--out FILE] [--jobs N]");
                return;
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    let reps = if smoke { 1 } else { 40 };
    let jobs = selest_par::configured_jobs();
    let files = [PaperFile::Normal { p: 20 }, PaperFile::Uniform { p: 20 }];

    let mut json = String::new();
    json.push_str("{\n");
    let _ = write!(
        json,
        "  \"schema\": \"selest-bench/1\",\n  \"generator\": \"crates/bench/src/bin/perf.rs (scripts/bench.sh)\",\n  \"mode\": \"{}\",\n  \"reps\": {},\n  \"jobs\": {},\n  \"hardware_threads\": {},\n  \"fixtures\": [\n",
        if smoke { "smoke" } else { "full" },
        reps,
        jobs,
        selest_par::available_workers()
    );
    for file in files.iter() {
        bench_fixture(*file, reps, jobs, &mut json);
        json.push_str(",\n");
    }
    bench_suite_build(reps, &mut json);
    json.push_str("\n  ],\n");
    bench_catalog(reps, jobs, &mut json);
    bench_fault_overhead(reps, jobs, &mut json);
    json.push_str("\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
}
