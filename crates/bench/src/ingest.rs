//! Sustained-ingest benchmark of the incremental statistics substrate
//! (`selest ingest --bench`, artifact `BENCH_PR9.json`).
//!
//! Four sections, each a claim DESIGN.md §15 makes about keeping
//! statistics fresh under writes:
//!
//! * **refresh** — an incremental refresh (absorb a batch, re-snapshot
//!   the reservoir, rebuild the estimator from `O(|reservoir|)` inputs)
//!   against a full re-ANALYZE that rebuilds the same updatable entry
//!   from scratch, re-feeding all `n` rows through the reservoir and the
//!   GK sketch. The headline gate: `speedup >= 10` at n = 100 000.
//! * **merge** — four shards each sketch a quarter of the stream, the
//!   catalogs merge through [`StatisticsCatalog::try_merge_partitions`],
//!   and every probed quantile of the merged GK summary must sit within
//!   the summary's own realized bound, which itself must respect the
//!   documented post-merge `2 * epsilon * n` rank guarantee.
//! * **snapshot** — with zero updates absorbed, `snapshot()` returns the
//!   previous `Arc` unchanged, prepared inputs are bit-identical to a
//!   from-scratch prepare of the same sample, and the whole serving path
//!   (catalog -> snapshot -> engine) reproduces the catalog's estimates
//!   bit for bit.
//! * **ingest** — a writer thread pours update batches through
//!   [`StatisticsCatalog::try_apply_updates`] and lets
//!   [`ServingEngine::republish_if_stale`] decide when the update debt
//!   forces a refresh-and-republish, while reader threads keep serving
//!   estimate batches off the engine. Readers must never see an error or
//!   an out-of-range selectivity while generations roll underneath them;
//!   the JSON records the staleness pressure the policy tolerated (p50 /
//!   p99 pending updates at sweep time) and reader latency percentiles.
//!
//! Everything is deterministic: data is a golden-ratio low-discrepancy
//! stream, seeds are fixed, and full mode asserts each gate in-process
//! before the artifact is written (the same gates
//! `scripts/bench_compare.sh --incremental` re-checks from the JSON).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use selest_core::{Domain, IncrementalColumn, PreparedColumn, RangeQuery};
use selest_store::{
    AnalyzeConfig, CatalogSnapshot, Column, ColumnDelta, EstimatorKind, Relation, ServingEngine,
    ServingScratch, StalenessPolicy, StatisticsCatalog, SKETCH_EPSILON,
};

/// Options of one benchmark invocation.
pub struct IngestBenchOptions {
    /// One light repetition per section; timing gates are skipped.
    pub smoke: bool,
    /// Output path for the JSON artifact.
    pub out: String,
}

/// Full-mode gate: incremental refresh vs. full re-ANALYZE at n = 100k.
const REFRESH_SPEEDUP_GATE: f64 = 10.0;
/// Shards of the partition-merge section.
const MERGE_SHARDS: usize = 4;

/// The benchmark's value stream: a golden-ratio low-discrepancy sequence
/// over `[0, 1000)` — deterministic, dense, and duplicate-free enough
/// that rank probes are unambiguous.
fn golden(i: u64) -> f64 {
    1_000.0 * ((i as f64) * 0.618_033_988_749).fract()
}

fn domain() -> Domain {
    Domain::new(0.0, 1_000.0)
}

fn relation_over(range: std::ops::Range<u64>) -> Relation {
    let values: Vec<f64> = range.map(golden).collect();
    let mut r = Relation::new("ingest");
    r.add_column(Column::new("v", domain(), values));
    r
}

fn probe_queries(n: usize) -> Vec<RangeQuery> {
    let d = domain();
    (0..n)
        .map(|i| {
            let c = 1_000.0 * ((i as f64) * 0.618_033_988_749).fract();
            RangeQuery::centered(&d, c, 0.02 + 0.18 * ((i as f64) * 0.317).fract())
        })
        .collect()
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    selest_math::quantile(&samples, 0.5)
}

struct RefreshResult {
    rows: u64,
    reps: usize,
    full_analyze_us: f64,
    batch_analyze_us: f64,
    incremental_refresh_us: f64,
    speedup: f64,
}

/// Section 1: time a full re-ANALYZE of the n-row relation against an
/// incremental cycle (absorb a 64-insert batch, refresh through the
/// staleness sweep). The from-scratch side rebuilds the same artifact the
/// refresh produces — an *updatable* catalog entry, so it must push all
/// `n` rows through the reservoir and the GK sketch — while the refresh
/// reuses the maintained substrate and pays only
/// O(bins + |reservoir| log |reservoir|). The plain sample-only batch
/// ANALYZE (which builds a non-updatable entry) is reported alongside for
/// context. Both paths run the same bulkheaded single-worker engine and
/// rebuild the same estimator kind.
fn run_refresh(smoke: bool) -> RefreshResult {
    let rows: u64 = if smoke { 10_000 } else { 100_000 };
    let (full_reps, incr_reps) = if smoke { (2, 10) } else { (8, 100) };
    let relation = relation_over(0..rows);
    let config = AnalyzeConfig {
        kind: EstimatorKind::EquiDepth,
        ..Default::default()
    };
    let jobs = selest_par::TryConfig::jobs(1);

    let mut full = Vec::with_capacity(full_reps);
    let mut batch = Vec::with_capacity(full_reps);
    for _ in 0..full_reps {
        let mut cat = StatisticsCatalog::new();
        let t0 = Instant::now();
        let health = cat.try_analyze_incremental(&relation, &config, &jobs);
        full.push(t0.elapsed().as_secs_f64() * 1e6);
        assert!(health.is_healthy(), "full re-ANALYZE must succeed");
        let mut cat = StatisticsCatalog::new();
        let t0 = Instant::now();
        let health = cat.try_analyze_jobs(&relation, &config, 1);
        batch.push(t0.elapsed().as_secs_f64() * 1e6);
        assert!(health.is_healthy(), "batch ANALYZE must succeed");
    }

    let mut cat = StatisticsCatalog::new();
    assert!(cat
        .try_analyze_incremental(&relation, &config, &jobs)
        .is_healthy());
    // Any pending update forces a refresh: the timed loop measures the
    // absorb + re-snapshot + estimator rebuild cycle, never a no-op.
    let eager = StalenessPolicy {
        max_updates: 1,
        min_updates: 1,
        ..Default::default()
    };
    let mut incremental = Vec::with_capacity(incr_reps);
    let mut next = rows;
    for _ in 0..incr_reps {
        let deltas = vec![ColumnDelta {
            column: "v".into(),
            inserts: (next..next + 64).map(golden).collect(),
            deletes: Vec::new(),
        }];
        next += 64;
        let t0 = Instant::now();
        let report = cat.try_apply_updates("ingest", &deltas, &jobs);
        let refresh = cat.try_refresh_stale(&eager, &jobs);
        incremental.push(t0.elapsed().as_secs_f64() * 1e6);
        assert!(report.failed.is_empty(), "update batch must apply");
        assert_eq!(refresh.refreshed.len(), 1, "eager policy must refresh");
    }

    let full_analyze_us = median_us(full);
    let incremental_refresh_us = median_us(incremental);
    RefreshResult {
        rows,
        reps: incr_reps,
        full_analyze_us,
        batch_analyze_us: median_us(batch),
        incremental_refresh_us,
        speedup: full_analyze_us / incremental_refresh_us,
    }
}

struct MergeResult {
    shards: usize,
    rows: u64,
    rank_error_bound: u64,
    two_eps_n: u64,
    realized_max_rank_error: u64,
    probes: usize,
    within_bound: bool,
}

/// Section 2: shard the stream `MERGE_SHARDS` ways, analyze each shard
/// incrementally under the same config, merge the partition catalogs,
/// and hold every probed quantile of the merged sketch to its realized
/// rank-error bound (<= the documented `2 * epsilon * n`).
fn run_merge(smoke: bool) -> MergeResult {
    let per_shard: u64 = if smoke { 2_500 } else { 25_000 };
    let rows = per_shard * MERGE_SHARDS as u64;
    let config = AnalyzeConfig {
        kind: EstimatorKind::EquiDepth,
        ..Default::default()
    };
    let jobs = selest_par::TryConfig::jobs(1);
    let mut shards: Vec<StatisticsCatalog> = (0..MERGE_SHARDS as u64)
        .map(|s| {
            let relation = relation_over(s * per_shard..(s + 1) * per_shard);
            let mut cat = StatisticsCatalog::new();
            assert!(cat
                .try_analyze_incremental(&relation, &config, &jobs)
                .is_healthy());
            cat
        })
        .collect();
    let mut merged = shards.remove(0);
    assert!(merged.try_merge_partitions(shards, &jobs).is_healthy());
    let state = merged
        .statistics("ingest", "v")
        .expect("merged entry")
        .incremental
        .as_ref()
        .expect("incremental state survives the merge")
        .clone();
    assert_eq!(state.sketch.len(), rows, "every shard row must be counted");
    assert_eq!(
        merged.statistics("ingest", "v").unwrap().n_rows as u64,
        rows
    );

    // Exact ranks over the full stream, probed at 19 evenly spaced
    // quantiles: a merged-summary answer within `bound` of the target
    // rank is the GK contract surviving the merge.
    let mut sorted: Vec<f64> = (0..rows).map(golden).collect();
    sorted.sort_by(f64::total_cmp);
    let bound = state.sketch.rank_error_bound();
    let two_eps_n = (2.0 * SKETCH_EPSILON * rows as f64).ceil() as u64;
    let mut realized_max = 0u64;
    let probes = 19;
    for p in 1..=probes {
        let q = p as f64 / (probes + 1) as f64;
        let (value, reported) = state.sketch.quantile_with_bound(q);
        assert_eq!(reported, bound);
        let target = (q * rows as f64).ceil().max(1.0) as u64;
        let lt = sorted.partition_point(|&v| v < value) as u64;
        let le = sorted.partition_point(|&v| v <= value) as u64;
        // True rank of `value` is anywhere in [lt + 1, le]; error is the
        // distance from the target to that interval.
        let err = if target < lt + 1 {
            lt + 1 - target
        } else {
            target.saturating_sub(le)
        };
        realized_max = realized_max.max(err);
    }
    MergeResult {
        shards: MERGE_SHARDS,
        rows,
        rank_error_bound: bound,
        two_eps_n,
        realized_max_rank_error: realized_max,
        probes,
        within_bound: realized_max <= bound && bound <= two_eps_n,
    }
}

struct SnapshotResult {
    rows: u64,
    arc_reused: bool,
    prepared_bits_identical: bool,
    served_bits_identical: bool,
    bit_identical: bool,
}

/// Section 3: the zero-update contract, end to end. A clean
/// [`IncrementalColumn`] snapshot must return the previous `Arc`
/// untouched and match a from-scratch prepare bit for bit; a clean
/// catalog republished through the serving engine must reproduce the
/// catalog's own estimates bit for bit.
fn run_snapshot(smoke: bool) -> SnapshotResult {
    let rows: u64 = if smoke { 5_000 } else { 50_000 };
    let values: Vec<f64> = (0..rows).map(golden).collect();
    let mut col = IncrementalColumn::from_values(&values, domain(), 2_000, 0x5e1ec7)
        .expect("finite stream prepares");
    let a = col.snapshot();
    let b = col.snapshot();
    let arc_reused = std::sync::Arc::ptr_eq(&a, &b);
    let fresh = PreparedColumn::prepare(&col.reservoir().sample(), domain());
    let prepared_bits_identical = a.sorted().len() == fresh.sorted().len()
        && a.sorted()
            .iter()
            .zip(fresh.sorted())
            .all(|(x, y)| x.to_bits() == y.to_bits())
        && a.values()
            .iter()
            .zip(fresh.values())
            .all(|(x, y)| x.to_bits() == y.to_bits());

    let relation = relation_over(0..rows);
    let config = AnalyzeConfig {
        kind: EstimatorKind::EquiDepth,
        ..Default::default()
    };
    let jobs = selest_par::TryConfig::jobs(1);
    let mut cat = StatisticsCatalog::new();
    assert!(cat
        .try_analyze_incremental(&relation, &config, &jobs)
        .is_healthy());
    // Zero updates absorbed: the staleness sweep must not touch anything.
    assert_eq!(
        cat.try_refresh_stale(&StalenessPolicy::default(), &jobs)
            .refreshed
            .len(),
        0
    );
    let engine = ServingEngine::with_defaults();
    engine.publish_snapshot(CatalogSnapshot::from_catalog_ref(&cat, 0));
    let direct = cat.statistics("ingest", "v").expect("analyzed");
    let served_bits_identical = probe_queries(64).iter().all(|q| {
        engine
            .try_estimate("ingest", "v", q)
            .expect("served")
            .to_bits()
            == direct.estimator.selectivity(q).to_bits()
    });
    SnapshotResult {
        rows,
        arc_reused,
        prepared_bits_identical,
        served_bits_identical,
        bit_identical: arc_reused && prepared_bits_identical && served_bits_identical,
    }
}

struct IngestResult {
    initial_rows: u64,
    batches: usize,
    updates: u64,
    wall_s: f64,
    republishes: u64,
    final_generation: u64,
    staleness_p50: f64,
    staleness_p99: f64,
    reader_threads: usize,
    reader_batches: usize,
    reader_p50_us: f64,
    reader_p99_us: f64,
    reader_queries_per_sec: f64,
}

/// Section 4: the closed loop. One writer pours batches and sweeps the
/// staleness policy after each; readers serve estimate batches off the
/// engine the whole time. Every reader answer is validated (finite, in
/// `[0, 1]`) while refresh-and-republish cycles roll the generation.
fn run_ingest(smoke: bool) -> IngestResult {
    let initial_rows: u64 = if smoke { 5_000 } else { 50_000 };
    let batches: usize = if smoke { 20 } else { 200 };
    const INSERTS_PER_BATCH: u64 = 512;
    const DELETES_PER_BATCH: u64 = 32;
    let reader_threads = 2;
    let relation = relation_over(0..initial_rows);
    let config = AnalyzeConfig {
        kind: EstimatorKind::EquiDepth,
        ..Default::default()
    };
    let jobs = selest_par::TryConfig::jobs(1);
    let policy = StalenessPolicy {
        max_updates: 4 * (INSERTS_PER_BATCH + DELETES_PER_BATCH),
        ..Default::default()
    };
    let mut cat = StatisticsCatalog::new();
    assert!(cat
        .try_analyze_incremental(&relation, &config, &jobs)
        .is_healthy());
    let engine = ServingEngine::with_defaults();
    engine.publish_snapshot(CatalogSnapshot::from_catalog_ref(&cat, 0));
    let queries = probe_queries(64);
    let stop = AtomicBool::new(false);
    let reader_samples: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let mut staleness_samples: Vec<f64> = Vec::with_capacity(batches);
    let mut republishes = 0u64;
    let mut wall_s = 0.0;
    std::thread::scope(|s| {
        let engine = &engine;
        let stop = &stop;
        let reader_samples = &reader_samples;
        let queries = &queries;
        for t in 0..reader_threads {
            s.spawn(move || {
                let mut scratch = ServingScratch::new();
                let mut out = Vec::new();
                let mut samples = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    let t0 = Instant::now();
                    engine.estimate_batch_into("ingest", "v", queries, &mut scratch, &mut out);
                    samples.push(t0.elapsed().as_secs_f64() * 1e6);
                    for (i, r) in out.iter().enumerate() {
                        let s = *r
                            .as_ref()
                            .unwrap_or_else(|e| panic!("reader {t} query {i}: {e}"));
                        assert!(
                            (0.0..=1.0).contains(&s),
                            "reader {t} query {i}: selectivity {s} out of range"
                        );
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                reader_samples
                    .lock()
                    .expect("no poisoned readers")
                    .extend(samples);
            });
        }
        // The writer: golden-ratio inserts continuing the stream, deletes
        // replaying old values, one staleness sweep per batch.
        let t0 = Instant::now();
        let mut next = initial_rows;
        for batch in 0..batches {
            let deltas = vec![ColumnDelta {
                column: "v".into(),
                inserts: (next..next + INSERTS_PER_BATCH).map(golden).collect(),
                deletes: (0..DELETES_PER_BATCH)
                    .map(|i| golden((batch as u64 * DELETES_PER_BATCH + i) % initial_rows))
                    .collect(),
            }];
            next += INSERTS_PER_BATCH;
            let report = cat.try_apply_updates("ingest", &deltas, &jobs);
            assert!(report.failed.is_empty(), "batch {batch} must apply");
            let pending = cat
                .staleness_signals()
                .iter()
                .map(|(_, _, s)| s.pending_updates)
                .max()
                .unwrap_or(0);
            staleness_samples.push(pending as f64);
            if engine
                .republish_if_stale(&mut cat, &policy, &jobs)
                .is_some()
            {
                republishes += 1;
            }
        }
        wall_s = t0.elapsed().as_secs_f64();
        stop.store(true, Ordering::Release);
    });
    staleness_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite counts"));
    let mut reader = reader_samples.into_inner().expect("scope joined");
    reader.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let reader_batches = reader.len();
    let reader_time_s: f64 = reader.iter().sum::<f64>() / 1e6;
    IngestResult {
        initial_rows,
        batches,
        updates: batches as u64 * (INSERTS_PER_BATCH + DELETES_PER_BATCH),
        wall_s,
        republishes,
        final_generation: engine.health().generation,
        staleness_p50: selest_math::quantile(&staleness_samples, 0.5),
        staleness_p99: selest_math::quantile(&staleness_samples, 0.99),
        reader_threads,
        reader_batches,
        reader_p50_us: selest_math::quantile(&reader, 0.5),
        reader_p99_us: selest_math::quantile(&reader, 0.99),
        reader_queries_per_sec: if reader_time_s > 0.0 {
            (reader_batches * queries.len()) as f64 / reader_time_s
        } else {
            0.0
        },
    }
}

/// Run all four sections and write the JSON artifact. Returns the output
/// path.
pub fn run_ingest_bench(opts: &IngestBenchOptions) -> String {
    eprintln!(
        "ingest bench: mode={} epsilon={SKETCH_EPSILON}",
        if opts.smoke { "smoke" } else { "full" }
    );
    let refresh = run_refresh(opts.smoke);
    eprintln!(
        "  refresh: full re-ANALYZE {:.0}us (batch {:.0}us) vs incremental {:.0}us at n={} (x{:.1})",
        refresh.full_analyze_us,
        refresh.batch_analyze_us,
        refresh.incremental_refresh_us,
        refresh.rows,
        refresh.speedup
    );
    if !opts.smoke {
        assert!(
            refresh.speedup >= REFRESH_SPEEDUP_GATE,
            "incremental refresh only x{:.1} faster than full re-ANALYZE \
             (gate: >= {REFRESH_SPEEDUP_GATE}x)",
            refresh.speedup
        );
    }
    let merge = run_merge(opts.smoke);
    eprintln!(
        "  merge: {} shards x {} rows, realized rank error {} <= bound {} <= 2en {}",
        merge.shards,
        merge.rows / merge.shards as u64,
        merge.realized_max_rank_error,
        merge.rank_error_bound,
        merge.two_eps_n
    );
    assert!(
        merge.within_bound,
        "merged sketch broke its rank bound: realized {} bound {} 2en {}",
        merge.realized_max_rank_error, merge.rank_error_bound, merge.two_eps_n
    );
    let snapshot = run_snapshot(opts.smoke);
    eprintln!(
        "  snapshot: arc_reused={} prepared_bits={} served_bits={}",
        snapshot.arc_reused, snapshot.prepared_bits_identical, snapshot.served_bits_identical
    );
    assert!(
        snapshot.bit_identical,
        "zero-update snapshots must be bit-identical end to end"
    );
    let ingest = run_ingest(opts.smoke);
    eprintln!(
        "  ingest: {} updates in {:.2}s ({:.0} updates/s), {} republishes, generation {}",
        ingest.updates,
        ingest.wall_s,
        ingest.updates as f64 / ingest.wall_s,
        ingest.republishes,
        ingest.final_generation
    );
    eprintln!(
        "  readers: {} batches, p50 {:.0}us p99 {:.0}us, {:.0} queries/s, \
         staleness p50 {:.0} p99 {:.0} pending",
        ingest.reader_batches,
        ingest.reader_p50_us,
        ingest.reader_p99_us,
        ingest.reader_queries_per_sec,
        ingest.staleness_p50,
        ingest.staleness_p99
    );
    if !opts.smoke {
        assert!(
            ingest.republishes >= 1,
            "the staleness policy never forced a republish"
        );
        assert!(ingest.reader_batches > 0, "readers served nothing");
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"schema\": \"selest-ingest-bench/1\",\n  \"generator\": \"crates/bench/src/ingest.rs (selest ingest --bench)\",\n  \"mode\": \"{}\",\n  \"sketch_epsilon\": {SKETCH_EPSILON},\n  \"sample_size\": 2000,",
        if opts.smoke { "smoke" } else { "full" },
    );
    let _ = writeln!(
        json,
        "  \"refresh\": {{\"rows\": {}, \"reps\": {}, \"full_analyze_us\": {:.1}, \"batch_analyze_us\": {:.1}, \"incremental_refresh_us\": {:.1}, \"speedup\": {:.2}}},",
        refresh.rows, refresh.reps, refresh.full_analyze_us, refresh.batch_analyze_us,
        refresh.incremental_refresh_us, refresh.speedup,
    );
    let _ = writeln!(
        json,
        "  \"merge\": {{\"shards\": {}, \"rows\": {}, \"probes\": {}, \"rank_error_bound\": {}, \"two_eps_n\": {}, \"realized_max_rank_error\": {}, \"within_bound\": {}}},",
        merge.shards, merge.rows, merge.probes, merge.rank_error_bound, merge.two_eps_n, merge.realized_max_rank_error, merge.within_bound,
    );
    let _ = writeln!(
        json,
        "  \"snapshot\": {{\"rows\": {}, \"arc_reused\": {}, \"prepared_bits_identical\": {}, \"served_bits_identical\": {}, \"bit_identical\": {}}},",
        snapshot.rows, snapshot.arc_reused, snapshot.prepared_bits_identical, snapshot.served_bits_identical, snapshot.bit_identical,
    );
    let _ = writeln!(
        json,
        "  \"ingest\": {{\"initial_rows\": {}, \"batches\": {}, \"updates\": {}, \"wall_s\": {:.3}, \"updates_per_sec\": {:.1}, \"republishes\": {}, \"final_generation\": {}, \"staleness_p50_pending\": {:.1}, \"staleness_p99_pending\": {:.1}, \"reader_threads\": {}, \"reader_batches\": {}, \"reader_p50_us\": {:.1}, \"reader_p99_us\": {:.1}, \"reader_queries_per_sec\": {:.1}}}",
        ingest.initial_rows, ingest.batches, ingest.updates, ingest.wall_s,
        ingest.updates as f64 / ingest.wall_s, ingest.republishes, ingest.final_generation,
        ingest.staleness_p50, ingest.staleness_p99, ingest.reader_threads, ingest.reader_batches,
        ingest.reader_p50_us, ingest.reader_p99_us, ingest.reader_queries_per_sec,
    );
    json.push_str("}\n");
    std::fs::write(&opts.out, &json).unwrap_or_else(|e| {
        eprintln!("write {}: {e}", opts.out);
        std::process::exit(1);
    });
    eprintln!("wrote {}", opts.out);
    opts.out.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "manual profiling aid"]
    fn profile_refresh_cycle() {
        let rows: u64 = 100_000;
        let relation = relation_over(0..rows);
        let config = AnalyzeConfig {
            kind: EstimatorKind::EquiDepth,
            ..Default::default()
        };
        let jobs = selest_par::TryConfig::jobs(1);
        let mut cat = StatisticsCatalog::new();
        cat.try_analyze_incremental(&relation, &config, &jobs);
        let eager = StalenessPolicy {
            max_updates: 1,
            min_updates: 1,
            ..Default::default()
        };
        let mut next = rows;
        for _ in 0..5 {
            let deltas = vec![ColumnDelta {
                column: "v".into(),
                inserts: (next..next + 64).map(golden).collect(),
                deletes: Vec::new(),
            }];
            next += 64;
            let t0 = Instant::now();
            cat.try_apply_updates("ingest", &deltas, &jobs);
            let t1 = Instant::now();
            cat.try_refresh_stale(&eager, &jobs);
            let t2 = Instant::now();
            eprintln!(
                "apply {:.0}us refresh {:.0}us",
                (t1 - t0).as_secs_f64() * 1e6,
                (t2 - t1).as_secs_f64() * 1e6
            );
        }
        // raw substrate costs
        let st = cat.statistics("ingest", "v").unwrap();
        let mut state = st.incremental.as_ref().unwrap().clone();
        for _ in 0..3 {
            state.column.insert(5.0).unwrap();
            let t0 = Instant::now();
            let snap = state.column.snapshot();
            let t1 = Instant::now();
            eprintln!(
                "snapshot {:.0}us (len {})",
                (t1 - t0).as_secs_f64() * 1e6,
                snap.len()
            );
        }
        let sample = state.column.reservoir().sample();
        let t0 = Instant::now();
        let mut s2 = sample.clone();
        s2.sort_by(f64::total_cmp);
        eprintln!("raw sort {:.0}us", t0.elapsed().as_secs_f64() * 1e6);
    }
}
