//! Figure 10 bench: query evaluation under the three boundary policies —
//! what the reflection mirrors and the boundary-kernel primitives cost on
//! edge-touching vs. interior queries.

use bench::fixture;
use criterion::{criterion_group, criterion_main, Criterion};
use selest_core::{RangeQuery, SelectivityEstimator};
use selest_data::PaperFile;
use selest_kernel::{BandwidthSelector, BoundaryPolicy, KernelEstimator, KernelFn, NormalScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(PaperFile::Uniform { p: 20 });
    let d = f.data.domain();
    let h = NormalScale.bandwidth(&f.sample, KernelFn::Epanechnikov);
    let w = d.width();
    let edge = RangeQuery::new(d.lo(), d.lo() + 0.01 * w);
    let center = RangeQuery::new(d.center(), d.center() + 0.01 * w);
    let mut g = c.benchmark_group("fig10_boundary_methods");
    for (policy, label) in [
        (BoundaryPolicy::NoTreatment, "none"),
        (BoundaryPolicy::Reflection, "reflect"),
        (BoundaryPolicy::BoundaryKernel, "bk"),
    ] {
        let est = KernelEstimator::new(&f.sample, d, KernelFn::Epanechnikov, h, policy);
        g.bench_function(format!("{label}_edge_query"), |b| {
            b.iter(|| black_box(est.selectivity(black_box(&edge))))
        });
        g.bench_function(format!("{label}_center_query"), |b| {
            b.iter(|| black_box(est.selectivity(black_box(&center))))
        });
    }
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
