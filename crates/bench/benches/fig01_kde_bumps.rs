//! Figure 1 bench: evaluating a kernel density estimate (per-sample bump
//! decomposition and plain grid evaluation).

use criterion::{criterion_group, criterion_main, Criterion};
use selest_kernel::{kde::bump_decomposition, KernelFn};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let samples: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37) % 10.0).collect();
    let mut g = c.benchmark_group("fig01_kde_bumps");
    g.bench_function("bump_decomposition_200x512", |b| {
        b.iter(|| {
            bump_decomposition(
                black_box(&samples),
                KernelFn::Epanechnikov,
                0.5,
                0.0,
                10.0,
                512,
            )
        })
    });
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
