//! Ablation benches for the design decisions called out in DESIGN.md §6:
//!
//! 1. the paper's four-case split with exact primitives vs. naive
//!    per-sample numerical integration of the kernel;
//! 2. the sorted `O(log n + k)` evaluation vs. the `Theta(n)` Algorithm 1
//!    linear scan;
//! 3. the full-contribution counting shortcut (binary search) vs. paying
//!    the CDF for every in-reach sample.

use criterion::{criterion_group, criterion_main, Criterion};
use selest_core::{Domain, RangeQuery, SelectivityEstimator};
use selest_data::{sample_without_replacement, PaperFile};
use selest_kernel::{BoundaryPolicy, KernelEstimator, KernelFn};
use selest_math::simpson;
use std::hint::black_box;

/// Naive per-sample quadrature of equation (6) — what the exact primitives
/// replace.
fn naive_quadrature_selectivity(samples: &[f64], h: f64, q: &RangeQuery) -> f64 {
    let k = KernelFn::Epanechnikov;
    let sum: f64 = samples
        .iter()
        .map(|&x| {
            let lo = (q.a() - x) / h;
            let hi = (q.b() - x) / h;
            let lo = lo.max(-1.0);
            let hi = hi.min(1.0);
            if hi <= lo {
                0.0
            } else {
                simpson(|t| k.eval(t), lo, hi, 32)
            }
        })
        .sum();
    sum / samples.len() as f64
}

fn bench(c: &mut Criterion) {
    let data = PaperFile::Uniform { p: 20 }.generate_scaled(20);
    let domain: Domain = data.domain();
    let sample = sample_without_replacement(data.values(), 2_000, 3);
    let h = domain.width() / 50.0;
    let est = KernelEstimator::new(
        &sample,
        domain,
        KernelFn::Epanechnikov,
        h,
        BoundaryPolicy::NoTreatment,
    );
    let wide = RangeQuery::new(domain.lerp(0.2), domain.lerp(0.7));
    let narrow = RangeQuery::new(domain.lerp(0.5), domain.lerp(0.503));

    let mut g = c.benchmark_group("ablations");

    // 1. Exact primitives vs. naive quadrature (linear scans both ways).
    g.bench_function("exact_primitive_linear_scan", |b| {
        b.iter(|| black_box(est.selectivity_linear(black_box(&wide))))
    });
    g.bench_function("naive_quadrature_linear_scan", |b| {
        b.iter(|| {
            black_box(naive_quadrature_selectivity(
                est.samples(),
                h,
                black_box(&wide),
            ))
        })
    });

    // 2. Sorted evaluation vs. Algorithm 1.
    g.bench_function("sorted_eval_wide_query", |b| {
        b.iter(|| black_box(est.selectivity(black_box(&wide))))
    });
    g.bench_function("alg1_linear_wide_query", |b| {
        b.iter(|| black_box(est.selectivity_linear(black_box(&wide))))
    });
    g.bench_function("sorted_eval_narrow_query", |b| {
        b.iter(|| black_box(est.selectivity(black_box(&narrow))))
    });
    g.bench_function("alg1_linear_narrow_query", |b| {
        b.iter(|| black_box(est.selectivity_linear(black_box(&narrow))))
    });

    // 3. psi-functional estimation cost scaling (the plug-in rules' O(n^2)
    // core), n and 2n.
    g.sample_size(10);
    for n in [500usize, 1_000] {
        let s = &sample[..n];
        g.bench_function(format!("psi4_estimate_n{n}"), |b| {
            b.iter(|| black_box(selest_math::psi_plug_in(black_box(s), 4, 2)))
        });
    }
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
