//! Figure 12 bench: build plus query-file evaluation for each of the four
//! finalists — EWH, kernel (BK + DPI2), hybrid, and ASH.

use bench::{fixture, total_selectivity};
use criterion::{criterion_group, criterion_main, Criterion};
use selest_data::PaperFile;
use selest_histogram::{equi_width, AverageShiftedHistogram, BinRule, NormalScaleBins};
use selest_hybrid::HybridEstimator;
use selest_kernel::{BandwidthSelector, BoundaryPolicy, DirectPlugIn, KernelEstimator, KernelFn};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(PaperFile::Arapahoe1);
    let d = f.data.domain();
    let k = NormalScaleBins.bins(&f.sample, &d);
    let mut g = c.benchmark_group("fig12_final_compare");
    g.sample_size(10);
    g.bench_function("build_ewh_ns", |b| {
        b.iter(|| black_box(equi_width(&f.sample, d, k)))
    });
    g.bench_function("build_ash10", |b| {
        b.iter(|| black_box(AverageShiftedHistogram::new(&f.sample, d, k, 10)))
    });
    g.bench_function("build_kernel_dpi2_bk", |b| {
        b.iter(|| {
            let h = DirectPlugIn::two_stage()
                .bandwidth(&f.sample, KernelFn::Epanechnikov)
                .min(0.5 * d.width());
            black_box(KernelEstimator::new(
                &f.sample,
                d,
                KernelFn::Epanechnikov,
                h,
                BoundaryPolicy::BoundaryKernel,
            ))
        })
    });
    g.bench_function("build_hybrid", |b| {
        b.iter(|| black_box(HybridEstimator::new(&f.sample, d)))
    });

    let ewh = equi_width(&f.sample, d, k);
    let ash = AverageShiftedHistogram::new(&f.sample, d, k, 10);
    let h = DirectPlugIn::two_stage()
        .bandwidth(&f.sample, KernelFn::Epanechnikov)
        .min(0.5 * d.width());
    let kernel = KernelEstimator::new(
        &f.sample,
        d,
        KernelFn::Epanechnikov,
        h,
        BoundaryPolicy::BoundaryKernel,
    );
    let hybrid = HybridEstimator::new(&f.sample, d);
    g.bench_function("answer_ewh", |b| {
        b.iter(|| black_box(total_selectivity(&ewh, &f.queries)))
    });
    g.bench_function("answer_ash", |b| {
        b.iter(|| black_box(total_selectivity(&ash, &f.queries)))
    });
    g.bench_function("answer_kernel", |b| {
        b.iter(|| black_box(total_selectivity(&kernel, &f.queries)))
    });
    g.bench_function("answer_hybrid", |b| {
        b.iter(|| black_box(total_selectivity(&hybrid, &f.queries)))
    });
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
