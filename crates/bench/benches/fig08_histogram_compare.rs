//! Figure 8 bench: construction and evaluation cost of every histogram
//! policy at the same bin count, plus the baselines.

use bench::{fixture, total_selectivity};
use criterion::{criterion_group, criterion_main, Criterion};
use selest_core::{SamplingEstimator, UniformEstimator};
use selest_data::PaperFile;
use selest_histogram::{equi_depth, equi_width, max_diff, v_optimal};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(PaperFile::Exponential { p: 20 });
    let d = f.data.domain();
    let k = 32;
    let mut g = c.benchmark_group("fig08_histogram_compare");
    g.bench_function("build_ewh", |b| {
        b.iter(|| black_box(equi_width(&f.sample, d, k)))
    });
    g.bench_function("build_edh", |b| {
        b.iter(|| black_box(equi_depth(&f.sample, d, k)))
    });
    g.bench_function("build_mdh", |b| {
        b.iter(|| black_box(max_diff(&f.sample, d, k)))
    });
    g.bench_function("build_vopt", |b| {
        b.iter(|| black_box(v_optimal(&f.sample, d, k, 256)))
    });
    let ewh = equi_width(&f.sample, d, k);
    let edh = equi_depth(&f.sample, d, k);
    let mdh = max_diff(&f.sample, d, k);
    let sampling = SamplingEstimator::new(&f.sample, d);
    let uniform = UniformEstimator::new(d);
    g.bench_function("answer_ewh", |b| {
        b.iter(|| black_box(total_selectivity(&ewh, &f.queries)))
    });
    g.bench_function("answer_edh", |b| {
        b.iter(|| black_box(total_selectivity(&edh, &f.queries)))
    });
    g.bench_function("answer_mdh", |b| {
        b.iter(|| black_box(total_selectivity(&mdh, &f.queries)))
    });
    g.bench_function("answer_sampling", |b| {
        b.iter(|| black_box(total_selectivity(&sampling, &f.queries)))
    });
    g.bench_function("answer_uniform", |b| {
        b.iter(|| black_box(total_selectivity(&uniform, &f.queries)))
    });
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
