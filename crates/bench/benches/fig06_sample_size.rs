//! Figure 6 bench: estimator construction cost as the sample grows —
//! the consistency experiment's build path for sampling, histogram, and
//! kernel estimators.

use criterion::{criterion_group, criterion_main, Criterion};
use selest_core::{Domain, SamplingEstimator};
use selest_data::{sample_without_replacement, PaperFile};
use selest_histogram::{equi_width, BinRule, NormalScaleBins};
use selest_kernel::{BandwidthSelector, BoundaryPolicy, KernelEstimator, KernelFn, NormalScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = PaperFile::Normal { p: 20 }.generate_scaled(20);
    let domain: Domain = data.domain();
    let mut g = c.benchmark_group("fig06_sample_size");
    g.sample_size(20);
    for n in [200usize, 1_000, 4_000] {
        let sample = sample_without_replacement(data.values(), n.min(data.len()), 5);
        g.bench_function(format!("build_sampling_n{n}"), |b| {
            b.iter(|| black_box(SamplingEstimator::new(black_box(&sample), domain)))
        });
        g.bench_function(format!("build_ewh_ns_n{n}"), |b| {
            b.iter(|| {
                let k = NormalScaleBins.bins(&sample, &domain);
                black_box(equi_width(black_box(&sample), domain, k))
            })
        });
        g.bench_function(format!("build_kernel_ns_n{n}"), |b| {
            b.iter(|| {
                let h = NormalScale.bandwidth(&sample, KernelFn::Epanechnikov);
                black_box(KernelEstimator::new(
                    black_box(&sample),
                    domain,
                    KernelFn::Epanechnikov,
                    h,
                    BoundaryPolicy::BoundaryKernel,
                ))
            })
        });
    }
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
