//! Benches for the extension modules: wavelet histogram, adaptive kernel,
//! n-dimensional product kernels, 2-D LSCV, and the store's query layer.

use bench::{fixture, total_selectivity};
use criterion::{criterion_group, criterion_main, Criterion};
use selest_core::Domain;
use selest_data::PaperFile;
use selest_histogram::WaveletHistogram;
use selest_kernel::{
    lscv_score_2d, AdaptiveBoundary, AdaptiveKernelEstimator, BoxQuery, KernelFn, NdKernelEstimator,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(PaperFile::Normal { p: 20 });
    let d = f.data.domain();
    let mut g = c.benchmark_group("extensions");

    // Wavelet histogram: build at two grid resolutions; query path is O(b).
    for grid in [8u32, 12] {
        g.bench_function(format!("wavelet_build_2e{grid}"), |b| {
            b.iter(|| black_box(WaveletHistogram::build(&f.sample, d, grid, 128)))
        });
    }
    let w = WaveletHistogram::build(&f.sample, d, 10, 128);
    g.bench_function("wavelet_answer_200_queries", |b| {
        b.iter(|| black_box(total_selectivity(&w, &f.queries)))
    });

    // Adaptive kernel: pilot + per-sample bandwidths dominate the build.
    g.sample_size(20);
    g.bench_function("adaptive_kernel_build", |b| {
        b.iter(|| {
            black_box(AdaptiveKernelEstimator::new(
                &f.sample,
                d,
                KernelFn::Epanechnikov,
                d.width() / 60.0,
                0.5,
                AdaptiveBoundary::Reflection,
            ))
        })
    });
    let ad = AdaptiveKernelEstimator::new(
        &f.sample,
        d,
        KernelFn::Epanechnikov,
        d.width() / 60.0,
        0.5,
        AdaptiveBoundary::Reflection,
    );
    g.bench_function("adaptive_kernel_answer_200_queries", |b| {
        b.iter(|| black_box(total_selectivity(&ad, &f.queries)))
    });

    // 3-D product kernel: box-query latency.
    let pts3: Vec<Vec<f64>> = (0..1_000)
        .map(|i| {
            vec![
                100.0 * ((i as f64 + 0.5) * 0.414_213_562_4).fract(),
                100.0 * ((i as f64 + 0.5) * 0.732_050_807_6).fract(),
                100.0 * ((i as f64 + 0.5) * 0.236_067_977_5).fract(),
            ]
        })
        .collect();
    let doms = vec![Domain::new(0.0, 100.0); 3];
    let nd = NdKernelEstimator::with_scott_rule(&pts3, doms, KernelFn::Epanechnikov);
    let bq = BoxQuery::new(vec![(10.0, 40.0), (20.0, 60.0), (30.0, 80.0)]);
    g.bench_function("ndim3_box_query", |b| {
        b.iter(|| black_box(nd.selectivity(black_box(&bq))))
    });

    // 2-D LSCV score: one evaluation of the O(n * window) objective.
    let mut pairs: Vec<(f64, f64)> = f
        .sample
        .iter()
        .zip(f.sample.iter().rev())
        .map(|(&x, &y)| (x, y))
        .collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    g.bench_function("lscv_score_2d_n1000", |b| {
        b.iter(|| {
            black_box(lscv_score_2d(
                &pairs,
                KernelFn::Epanechnikov,
                d.width() / 30.0,
                d.width() / 30.0,
            ))
        })
    });
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
