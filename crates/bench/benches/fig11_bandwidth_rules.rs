//! Figure 11 bench: the cost of the bandwidth selection rules — normal
//! scale (cheap), two-stage direct plug-in (two O(n^2) functional
//! estimates), least-squares cross-validation (O(n * window) per candidate
//! bandwidth), and the oracle search (full MRE evaluation per candidate).

use bench::fixture;
use criterion::{criterion_group, criterion_main, Criterion};
use selest_data::PaperFile;
use selest_experiments::{oracle::oracle_bandwidth, FileContext, Scale};
use selest_kernel::{BandwidthSelector, BoundaryPolicy, DirectPlugIn, KernelFn, Lscv, NormalScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(PaperFile::Normal { p: 20 });
    let mut g = c.benchmark_group("fig11_bandwidth_rules");
    g.bench_function("normal_scale", |b| {
        b.iter(|| black_box(NormalScale.bandwidth(black_box(&f.sample), KernelFn::Epanechnikov)))
    });
    g.sample_size(10);
    g.bench_function("dpi2", |b| {
        b.iter(|| {
            black_box(
                DirectPlugIn::two_stage().bandwidth(black_box(&f.sample), KernelFn::Epanechnikov),
            )
        })
    });
    g.bench_function("lscv", |b| {
        b.iter(|| black_box(Lscv.bandwidth(black_box(&f.sample), KernelFn::Epanechnikov)))
    });
    let mut quick = Scale::quick();
    quick.record_divisor = 50;
    quick.queries_per_file = 50;
    let ctx = FileContext::build(PaperFile::Normal { p: 20 }, &quick);
    g.bench_function("oracle_search_50q", |b| {
        b.iter(|| {
            black_box(oracle_bandwidth(
                &ctx,
                ctx.query_file(0.01).queries(),
                BoundaryPolicy::Reflection,
            ))
        })
    });
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
