//! Table 2 bench: the data generators themselves — synthetic inverse-CDF
//! sampling vs. the structured TIGER/census simulacra.

use criterion::{criterion_group, criterion_main, Criterion};
use selest_data::PaperFile;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab02_datafiles");
    g.sample_size(10);
    for file in [
        PaperFile::Uniform { p: 20 },
        PaperFile::Normal { p: 20 },
        PaperFile::Exponential { p: 20 },
        PaperFile::Arapahoe1,
        PaperFile::RailRiver1 { p: 22 },
        PaperFile::InstanceWeight,
    ] {
        g.bench_function(format!("generate_{}_div50", file.name()), |b| {
            b.iter(|| black_box(file.generate_scaled(50)))
        });
    }
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
