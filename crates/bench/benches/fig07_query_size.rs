//! Figure 7 bench: answering query files of the four paper sizes
//! (1/2/5/10 %) with the normal-scale equi-width histogram — wider queries
//! touch more bins, so the cost scales with the covered bin count.

use bench::total_selectivity;
use criterion::{criterion_group, criterion_main, Criterion};
use selest_data::{sample_without_replacement, PaperFile, QueryFile};
use selest_histogram::{equi_width, BinRule, NormalScaleBins};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = PaperFile::Normal { p: 20 }.generate_scaled(20);
    let sample = sample_without_replacement(data.values(), 1_000, 7);
    let k = NormalScaleBins.bins(&sample, &data.domain());
    let hist = equi_width(&sample, data.domain(), k);
    let mut g = c.benchmark_group("fig07_query_size");
    for size in [0.01f64, 0.02, 0.05, 0.10] {
        let qf = QueryFile::generate(&data, size, 200, 3);
        g.bench_function(
            format!("ewh_200_queries_{}pct", (size * 100.0) as u32),
            |b| b.iter(|| black_box(total_selectivity(&hist, qf.queries()))),
        );
    }
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
