//! Figure 4 bench: the bin-count sweep — equi-width histogram construction
//! and query-file evaluation at several bin counts.

use bench::{fixture, total_selectivity};
use criterion::{criterion_group, criterion_main, Criterion};
use selest_data::PaperFile;
use selest_histogram::equi_width;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(PaperFile::Normal { p: 20 });
    let mut g = c.benchmark_group("fig04_bins_sweep");
    for k in [8usize, 64, 512] {
        g.bench_function(format!("build_k{k}"), |b| {
            b.iter(|| black_box(equi_width(black_box(&f.sample), f.data.domain(), k)))
        });
        let h = equi_width(&f.sample, f.data.domain(), k);
        g.bench_function(format!("answer_200_queries_k{k}"), |b| {
            b.iter(|| black_box(total_selectivity(&h, &f.queries)))
        });
    }
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
