//! Figure 3 bench: the positional error sweep of the untreated kernel
//! estimator (build once, answer a sweep of 1 % queries).

use bench::{fixture, total_selectivity};
use criterion::{criterion_group, criterion_main, Criterion};
use selest_data::{positional_sweep, PaperFile};
use selest_kernel::{BandwidthSelector, BoundaryPolicy, KernelEstimator, KernelFn, NormalScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(PaperFile::Uniform { p: 20 });
    let h = NormalScale.bandwidth(&f.sample, KernelFn::Epanechnikov);
    let est = KernelEstimator::new(
        &f.sample,
        f.data.domain(),
        KernelFn::Epanechnikov,
        h,
        BoundaryPolicy::NoTreatment,
    );
    let sweep: Vec<_> = positional_sweep(&f.data.domain(), 0.01, 101)
        .into_iter()
        .map(|(_, q)| q)
        .collect();
    let mut g = c.benchmark_group("fig03_boundary_abs_error");
    g.bench_function("sweep_101_positions", |b| {
        b.iter(|| black_box(total_selectivity(&est, &sweep)))
    });
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
