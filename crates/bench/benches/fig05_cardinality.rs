//! Figure 5 bench: data-file generation and histogram evaluation across
//! domain cardinalities p = 10, 15, 20.

use bench::{fixture, total_selectivity};
use criterion::{criterion_group, criterion_main, Criterion};
use selest_data::PaperFile;
use selest_histogram::equi_width;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_cardinality");
    g.sample_size(10);
    for p in [10u32, 15, 20] {
        let f = fixture(PaperFile::Normal { p });
        let h = equi_width(&f.sample, f.data.domain(), 32);
        g.bench_function(format!("ewh32_queries_p{p}"), |b| {
            b.iter(|| black_box(total_selectivity(&h, &f.queries)))
        });
    }
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
