//! Figure 9 bench: the cost of the bin-count selection rules themselves —
//! the normal scale rule is a couple of passes over the sample; the
//! plug-in rule pays an O(n^2) functional estimate; the oracle search pays
//! a full error evaluation per candidate.

use bench::fixture;
use criterion::{criterion_group, criterion_main, Criterion};
use selest_data::PaperFile;
use selest_experiments::{oracle::oracle_bins, FileContext, Scale};
use selest_histogram::{BinRule, FreedmanDiaconisBins, NormalScaleBins, PlugInBins, SturgesBins};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(PaperFile::Normal { p: 20 });
    let d = f.data.domain();
    let mut g = c.benchmark_group("fig09_bin_rules");
    g.bench_function("normal_scale", |b| {
        b.iter(|| black_box(NormalScaleBins.bins(black_box(&f.sample), &d)))
    });
    g.bench_function("sturges", |b| {
        b.iter(|| black_box(SturgesBins.bins(black_box(&f.sample), &d)))
    });
    g.bench_function("freedman_diaconis", |b| {
        b.iter(|| black_box(FreedmanDiaconisBins.bins(black_box(&f.sample), &d)))
    });
    g.sample_size(10);
    g.bench_function("plug_in_2stage", |b| {
        b.iter(|| black_box(PlugInBins::two_stage().bins(black_box(&f.sample), &d)))
    });
    let mut quick = Scale::quick();
    quick.record_divisor = 50;
    quick.queries_per_file = 50;
    let ctx = FileContext::build(PaperFile::Normal { p: 20 }, &quick);
    g.bench_function("oracle_search_50q", |b| {
        b.iter(|| black_box(oracle_bins(&ctx, ctx.query_file(0.01).queries(), 300)))
    });
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
