//! Micro-benchmarks across the whole estimator zoo: single-query latency
//! and construction cost for every method at the paper's sample size, plus
//! the 2-D product-kernel estimator.

use bench::fixture;
use criterion::{criterion_group, criterion_main, Criterion};
use selest_core::{RangeQuery, SamplingEstimator, SelectivityEstimator, UniformEstimator};
use selest_data::PaperFile;
use selest_histogram::{equi_depth, equi_width, max_diff, AverageShiftedHistogram};
use selest_hybrid::HybridEstimator;
use selest_kernel::{
    Boundary2d, BoundaryPolicy, KernelEstimator, KernelEstimator2d, KernelFn, RectQuery,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(PaperFile::Normal { p: 20 });
    let d = f.data.domain();
    let q = RangeQuery::new(d.lerp(0.45), d.lerp(0.46));
    let h = d.width() / 60.0;

    let estimators: Vec<(&str, Box<dyn SelectivityEstimator>)> = vec![
        ("uniform", Box::new(UniformEstimator::new(d))),
        ("sampling", Box::new(SamplingEstimator::new(&f.sample, d))),
        ("ewh32", Box::new(equi_width(&f.sample, d, 32))),
        ("edh32", Box::new(equi_depth(&f.sample, d, 32))),
        ("mdh32", Box::new(max_diff(&f.sample, d, 32))),
        (
            "ash32x10",
            Box::new(AverageShiftedHistogram::new(&f.sample, d, 32, 10)),
        ),
        (
            "kernel_bk",
            Box::new(KernelEstimator::new(
                &f.sample,
                d,
                KernelFn::Epanechnikov,
                h,
                BoundaryPolicy::BoundaryKernel,
            )),
        ),
        ("hybrid", Box::new(HybridEstimator::new(&f.sample, d))),
    ];
    let mut g = c.benchmark_group("single_query_latency");
    for (name, est) in &estimators {
        g.bench_function(*name, |b| {
            b.iter(|| black_box(est.selectivity(black_box(&q))))
        });
    }
    g.finish();

    // 2-D product kernel: rectangle query latency.
    let pts: Vec<(f64, f64)> = f
        .sample
        .iter()
        .zip(f.sample.iter().rev())
        .map(|(&x, &y)| (x, y))
        .collect();
    let est2 = KernelEstimator2d::new(
        &pts,
        d,
        d,
        KernelFn::Epanechnikov,
        h,
        h,
        Boundary2d::Reflection,
    );
    let rq = RectQuery::new(d.lerp(0.3), d.lerp(0.4), d.lerp(0.3), d.lerp(0.4));
    let mut g = c.benchmark_group("multidim");
    g.bench_function("rect_query_2d", |b| {
        b.iter(|| black_box(est2.selectivity(black_box(&rq))))
    });
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
