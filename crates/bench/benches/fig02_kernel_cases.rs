//! Figure 2 bench: the cost of the per-sample contribution cases of
//! Algorithm 1 — exact CDF evaluation vs. the zero/one shortcuts.

use criterion::{criterion_group, criterion_main, Criterion};
use selest_kernel::KernelFn;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let k = KernelFn::Epanechnikov;
    let mut g = c.benchmark_group("fig02_kernel_cases");
    g.bench_function("cdf_in_support", |b| {
        b.iter(|| black_box(k.cdf(black_box(0.37))))
    });
    g.bench_function("cdf_saturated", |b| {
        b.iter(|| black_box(k.cdf(black_box(7.0))))
    });
    g.bench_function("eval", |b| b.iter(|| black_box(k.eval(black_box(0.37)))));
    for kernel in KernelFn::ALL {
        g.bench_function(format!("cdf_{}", kernel.name()), |b| {
            b.iter(|| black_box(kernel.cdf(black_box(0.37))))
        });
    }
    g.finish();
}

/// Short measurement windows so the full per-figure suite stays minutes,
/// not hours; pass `--measurement-time` to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
