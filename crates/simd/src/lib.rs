//! Portable fixed-width f64 lane abstraction for the serving hot paths.
//!
//! The workspace's determinism contract ("a batch answer is bit-identical
//! to the per-query answer, for any worker count") extends to SIMD with one
//! more axis: *lane width*. This crate provides the pieces that keep that
//! contract checkable:
//!
//! * [`F64x4`] / [`F64x8`] — plain `[f64; N]` wrapper structs with
//!   element-wise `mul`/`add`/`fma`/`min`/`max`/`select`. No nightly
//!   features, no intrinsics: the layouts are lane-aligned and the loops
//!   are written so LLVM auto-vectorizes them (the kernel crate adds
//!   `#[target_feature(enable = "avx2")]` dispatch on x86-64). `fma` is
//!   deliberately an *unfused* multiply-then-add — a hardware-fused FMA
//!   rounds once instead of twice and would break bit-identity with the
//!   scalar path.
//! * **Ordered tree reduction** ([`F64x4::hsum_tree`],
//!   [`F64x8::hsum_tree`]) — the canonical fixed-shape horizontal sum
//!   `((e0+e1)+(e2+e3)) + ((e4+e5)+(e6+e7))`. A scalar loop, a 4-lane
//!   loop, and an 8-lane loop that all reduce 8-element blocks through
//!   this tree produce the same bits, because lane-wise IEEE ops are
//!   bit-identical to their scalar counterparts and only the *order* of a
//!   reduction can differ.
//! * **Compensated accumulation** ([`KahanSum`], [`F64x4::hsum_kahan`]) —
//!   Neumaier-compensated sums matching `selest_math::kahan_sum`'s update
//!   rule, so widening lanes never *regresses* the error story of a path
//!   that summed compensated before.
//! * [`LaneMode`] / [`configured_lanes`] — a process-wide lane-width
//!   override mirroring `selest-par`'s `SELEST_JOBS`: the `SELEST_LANES`
//!   environment variable (or [`set_lanes`]) selects `scalar`, `4`, or
//!   `8`-lane execution. Because every width is bit-identical, the switch
//!   is purely a performance/debugging knob — and the workspace tests
//!   sweep it to prove exactly that.
//! * **Branchless binary search** ([`partition_lt`], [`partition_le`]) and
//!   the [`GridIndex`] interpolation grid — flat-array lookups whose trip
//!   count depends only on the slice length (no data-dependent branch
//!   mispredictions), with a monotonicity-proven bracket for the grid (see
//!   `DESIGN.md` §13).

use std::sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------------
// Lane-width configuration (mirrors selest-par's SELEST_JOBS)
// ---------------------------------------------------------------------------

/// How many f64 lanes the serving kernels process per step.
///
/// Every mode produces bit-identical results (the reduction shape is fixed
/// per 8-element block, not per lane width); the mode only changes speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneMode {
    /// One element at a time (the reference path).
    Scalar,
    /// Four lanes ([`F64x4`]).
    X4,
    /// Eight lanes ([`F64x8`]).
    X8,
}

impl LaneMode {
    /// All modes, for determinism sweeps.
    pub const ALL: [LaneMode; 3] = [LaneMode::Scalar, LaneMode::X4, LaneMode::X8];

    /// Parse a `SELEST_LANES` value: `"scalar"` or `"1"`, `"4"`, `"8"`.
    pub fn parse(s: &str) -> Option<LaneMode> {
        match s.trim() {
            "scalar" | "1" => Some(LaneMode::Scalar),
            "4" => Some(LaneMode::X4),
            "8" => Some(LaneMode::X8),
            _ => None,
        }
    }

    /// The `SELEST_LANES` spelling of this mode.
    pub fn label(&self) -> &'static str {
        match self {
            LaneMode::Scalar => "scalar",
            LaneMode::X4 => "4",
            LaneMode::X8 => "8",
        }
    }
}

/// The default lane width when nothing overrides it: the widest.
pub const DEFAULT_LANES: LaneMode = LaneMode::X8;

/// Process-wide lane-mode override; 0 means "not set".
static LANES_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn encode(mode: LaneMode) -> usize {
    match mode {
        LaneMode::Scalar => 1,
        LaneMode::X4 => 2,
        LaneMode::X8 => 3,
    }
}

/// Install a process-wide lane-width override (`set_lanes(None)` clears
/// it). Mirrors `selest_par::set_jobs`.
pub fn set_lanes(mode: Option<LaneMode>) {
    LANES_OVERRIDE.store(mode.map_or(0, encode), Ordering::Relaxed);
}

/// The lane width lane-aware paths use when none is given explicitly: the
/// [`set_lanes`] override if installed, else the `SELEST_LANES` environment
/// variable if it parses, else [`DEFAULT_LANES`].
pub fn configured_lanes() -> LaneMode {
    match LANES_OVERRIDE.load(Ordering::Relaxed) {
        1 => return LaneMode::Scalar,
        2 => return LaneMode::X4,
        3 => return LaneMode::X8,
        _ => {}
    }
    if let Ok(v) = std::env::var("SELEST_LANES") {
        if let Some(mode) = LaneMode::parse(&v) {
            return mode;
        }
    }
    DEFAULT_LANES
}

/// Whether the host CPU offers AVX2 (256-bit f64 lanes). Always false off
/// x86-64. Callers use this to pick a `#[target_feature]`-compiled variant
/// of a lane loop; the variants are bit-identical, so detection only
/// affects speed.
#[inline]
pub fn has_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// Lane structs
// ---------------------------------------------------------------------------

macro_rules! lane_struct {
    ($name:ident, $mask:ident, $n:literal, $align:literal) => {
        /// A fixed-width vector of `f64` lanes. All operations are
        /// element-wise and bit-identical to performing the same scalar
        /// operation per lane.
        #[derive(Debug, Clone, Copy, PartialEq)]
        #[repr(align($align))]
        pub struct $name(pub [f64; $n]);

        /// Per-lane mask for [`select`](
        #[doc = concat!("`", stringify!($name), "::select`)")]
        /// in hardware form: every lane is all-ones (`u64::MAX`) for true
        /// or all-zeros for false, exactly what `vcmppd` produces. Keeping
        /// the mask sign-extended instead of `bool` lets the compiler keep
        /// compare → blend chains in vector registers; byte-sized bools
        /// force it to scalarize the blend.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $mask(pub [u64; $n]);

        impl $name {
            /// Number of lanes.
            pub const LANES: usize = $n;

            /// All lanes set to `v`.
            #[inline(always)]
            pub fn splat(v: f64) -> Self {
                $name([v; $n])
            }

            /// Load lanes from the first `N` elements of `s`.
            #[inline(always)]
            pub fn from_slice(s: &[f64]) -> Self {
                let mut a = [0.0; $n];
                a.copy_from_slice(&s[..$n]);
                $name(a)
            }

            /// Unfused multiply-add `self * m + a`, rounding twice like
            /// the scalar expression (never a hardware FMA — fusing would
            /// change bits versus the scalar path).
            #[inline(always)]
            pub fn fma(self, m: Self, a: Self) -> Self {
                self * m + a
            }

            /// Lane-wise minimum (both operands finite in our uses).
            #[inline(always)]
            pub fn min(self, rhs: Self) -> Self {
                let mut o = [0.0; $n];
                for i in 0..$n {
                    o[i] = if self.0[i] < rhs.0[i] {
                        self.0[i]
                    } else {
                        rhs.0[i]
                    };
                }
                $name(o)
            }

            /// Lane-wise maximum (both operands finite in our uses).
            #[inline(always)]
            pub fn max(self, rhs: Self) -> Self {
                let mut o = [0.0; $n];
                for i in 0..$n {
                    o[i] = if self.0[i] > rhs.0[i] {
                        self.0[i]
                    } else {
                        rhs.0[i]
                    };
                }
                $name(o)
            }

            /// Lane-wise absolute value.
            #[inline(always)]
            pub fn abs(self) -> Self {
                let mut o = [0.0; $n];
                for i in 0..$n {
                    o[i] = self.0[i].abs();
                }
                $name(o)
            }

            /// Lane-wise `self <= rhs`.
            #[inline(always)]
            pub fn le(self, rhs: Self) -> $mask {
                let mut m = [0u64; $n];
                for i in 0..$n {
                    m[i] = if self.0[i] <= rhs.0[i] { u64::MAX } else { 0 };
                }
                $mask(m)
            }

            /// Lane-wise `self >= rhs`.
            #[inline(always)]
            pub fn ge(self, rhs: Self) -> $mask {
                let mut m = [0u64; $n];
                for i in 0..$n {
                    m[i] = if self.0[i] >= rhs.0[i] { u64::MAX } else { 0 };
                }
                $mask(m)
            }

            /// Lane-wise `self < rhs`.
            #[inline(always)]
            pub fn lt(self, rhs: Self) -> $mask {
                let mut m = [0u64; $n];
                for i in 0..$n {
                    m[i] = if self.0[i] < rhs.0[i] { u64::MAX } else { 0 };
                }
                $mask(m)
            }

            /// Per-lane `if mask { a } else { b }` (a blend, never a
            /// branch: both arms are always evaluated by the caller). The
            /// blend is bitwise over the sign-extended mask, so it is
            /// value-exact for every `f64` bit pattern, NaNs included.
            #[inline(always)]
            pub fn select(mask: $mask, a: Self, b: Self) -> Self {
                let mut o = [0.0; $n];
                for i in 0..$n {
                    o[i] = f64::from_bits(
                        (a.0[i].to_bits() & mask.0[i]) | (b.0[i].to_bits() & !mask.0[i]),
                    );
                }
                $name(o)
            }

            /// Neumaier-compensated horizontal sum, lanes in order —
            /// bit-identical to feeding the lanes one by one into
            /// [`KahanSum`]. Use where the scalar path summed compensated.
            #[inline]
            pub fn hsum_kahan(self) -> f64 {
                let mut acc = KahanSum::new();
                for i in 0..$n {
                    acc.add(self.0[i]);
                }
                acc.value()
            }
        }

        impl std::ops::Add for $name {
            type Output = Self;
            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                let mut o = [0.0; $n];
                for i in 0..$n {
                    o[i] = self.0[i] + rhs.0[i];
                }
                $name(o)
            }
        }

        impl std::ops::Sub for $name {
            type Output = Self;
            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                let mut o = [0.0; $n];
                for i in 0..$n {
                    o[i] = self.0[i] - rhs.0[i];
                }
                $name(o)
            }
        }

        impl std::ops::Mul for $name {
            type Output = Self;
            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                let mut o = [0.0; $n];
                for i in 0..$n {
                    o[i] = self.0[i] * rhs.0[i];
                }
                $name(o)
            }
        }

        impl std::ops::Div for $name {
            type Output = Self;
            #[inline(always)]
            fn div(self, rhs: Self) -> Self {
                let mut o = [0.0; $n];
                for i in 0..$n {
                    o[i] = self.0[i] / rhs.0[i];
                }
                $name(o)
            }
        }
    };
}

lane_struct!(F64x4, Mask4, 4, 32);
lane_struct!(F64x8, Mask8, 8, 64);

impl F64x4 {
    /// The canonical ordered tree reduction of four lanes:
    /// `(l0 + l1) + (l2 + l3)`.
    #[inline(always)]
    pub fn hsum_tree(self) -> f64 {
        (self.0[0] + self.0[1]) + (self.0[2] + self.0[3])
    }
}

impl F64x8 {
    /// The canonical ordered tree reduction of eight lanes:
    /// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` — exactly
    /// [`F64x4::hsum_tree`] of each half, summed low-then-high, so an
    /// 8-lane block reduces to the same bits whether it was processed as
    /// one `F64x8`, two `F64x4`s, or eight scalars folded through the
    /// same tree.
    #[inline(always)]
    pub fn hsum_tree(self) -> f64 {
        ((self.0[0] + self.0[1]) + (self.0[2] + self.0[3]))
            + ((self.0[4] + self.0[5]) + (self.0[6] + self.0[7]))
    }

    /// The low four lanes.
    #[inline(always)]
    pub fn lo(self) -> F64x4 {
        F64x4([self.0[0], self.0[1], self.0[2], self.0[3]])
    }

    /// The high four lanes.
    #[inline(always)]
    pub fn hi(self) -> F64x4 {
        F64x4([self.0[4], self.0[5], self.0[6], self.0[7]])
    }
}

// ---------------------------------------------------------------------------
// Compensated accumulation
// ---------------------------------------------------------------------------

/// A running Neumaier-compensated sum with the exact update rule of
/// `selest_math::kahan_sum`, exposed as an incremental accumulator so lane
/// loops can compensate across their 8-element block sums. Feeding the same
/// values in the same order as `kahan_sum` produces the same bits.
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanSum {
    sum: f64,
    c: f64,
}

impl KahanSum {
    /// A zeroed accumulator.
    #[inline(always)]
    pub fn new() -> Self {
        KahanSum { sum: 0.0, c: 0.0 }
    }

    /// Add one term, carrying the rounding error into the compensation.
    #[inline(always)]
    pub fn add(&mut self, v: f64) {
        let t = self.sum + v;
        if self.sum.abs() >= v.abs() {
            self.c += (self.sum - t) + v;
        } else {
            self.c += (v - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total `sum + c`.
    #[inline(always)]
    pub fn value(&self) -> f64 {
        self.sum + self.c
    }
}

// ---------------------------------------------------------------------------
// Branchless binary search
// ---------------------------------------------------------------------------

/// `sorted.partition_point(|&v| v < x)`, branchlessly: the loop trip count
/// depends only on `sorted.len()` and the comparison feeds a conditional
/// move, not a data-dependent branch — so a batch of lookups with random
/// outcomes pays no misprediction tax. Exact (never approximate), for any
/// sorted slice and any `x` including NaN (`v < NaN` is false everywhere,
/// so the answer is 0, like `partition_point`).
#[inline]
pub fn partition_lt(sorted: &[f64], x: f64) -> usize {
    let mut base = 0usize;
    let mut len = sorted.len();
    while len > 1 {
        let half = len / 2;
        // cmov: advance past the left half iff its last element is < x.
        base += if sorted[base + half - 1] < x { half } else { 0 };
        len -= half;
    }
    if !sorted.is_empty() && sorted[base] < x {
        base += 1;
    }
    base
}

/// `sorted.partition_point(|&v| v <= x)`, branchlessly (see
/// [`partition_lt`]).
#[inline]
pub fn partition_le(sorted: &[f64], x: f64) -> usize {
    let mut base = 0usize;
    let mut len = sorted.len();
    while len > 1 {
        let half = len / 2;
        base += if sorted[base + half - 1] <= x {
            half
        } else {
            0
        };
        len -= half;
    }
    if !sorted.is_empty() && sorted[base] <= x {
        base += 1;
    }
    base
}

// ---------------------------------------------------------------------------
// Interpolation grid
// ---------------------------------------------------------------------------

/// A precomputed interpolation grid over a sorted slice: `G` uniform cells
/// spanning `[sorted[0], sorted[n-1]]`, each knowing where its elements
/// start. A lookup maps `x` to its cell in O(1) and narrows any
/// `partition_point` over the full slice to the elements of *one* cell.
///
/// # Error bound (proof sketch — DESIGN.md §13 has the full version)
///
/// Let `cell(v) = clamp(⌊fl(fl(v − lo) · inv_cell)⌋, 0, G−1)` with every
/// operation in f64. Each step (subtraction, multiplication, float→int
/// cast) is monotone non-decreasing in `v`, so `cell` is monotone:
/// `u ≤ v ⟹ cell(u) ≤ cell(v)` — *regardless of rounding error*. With
/// `starts[c] =` number of elements whose `cell` is `< c`:
///
/// * every element `v < x` has `cell(v) ≤ cell(x) = j`, hence lives below
///   `starts[j+1]`;
/// * every element below `starts[j]` has `cell(v) < j ≤ cell(x)`, hence
///   `v < x` (contrapositive of monotonicity).
///
/// So the true partition index lies in `[starts[j], starts[j+1]]`: the
/// residual search window is exactly one cell's occupancy, and the result
/// is exact — the grid bounds *work*, never *error*.
#[derive(Debug, Clone)]
pub struct GridIndex {
    /// `G + 1` cumulative starts: `starts[c]` = elements with `cell < c`.
    starts: Vec<u32>,
    lo: f64,
    inv_cell: f64,
    cells: usize,
}

impl GridIndex {
    /// Build a grid over `sorted` (ascending, no NaN, `len <= u32::MAX`).
    /// `cells` is clamped to at least 1; a degenerate span (zero width or
    /// non-finite bounds) collapses to a single cell covering everything.
    pub fn build(sorted: &[f64], cells: usize) -> GridIndex {
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
        assert!(sorted.len() <= u32::MAX as usize, "grid index is u32");
        let cells = cells.max(1);
        let (lo, hi) = match (sorted.first(), sorted.last()) {
            (Some(&lo), Some(&hi)) => (lo, hi),
            _ => (0.0, 0.0),
        };
        let width = hi - lo;
        let inv_cell = if width.is_finite() && width > 0.0 && lo.is_finite() {
            cells as f64 / width
        } else {
            0.0 // degenerate: every x maps to cell 0 of a 1-cell grid
        };
        let (cells, inv_cell) = if inv_cell.is_finite() && inv_cell > 0.0 {
            (cells, inv_cell)
        } else {
            (1, 0.0)
        };
        let mut starts = vec![0u32; cells + 1];
        for &v in sorted {
            let c = Self::cell_of(v, lo, inv_cell, cells);
            starts[c + 1] += 1;
        }
        for c in 0..cells {
            starts[c + 1] += starts[c];
        }
        GridIndex {
            starts,
            lo,
            inv_cell,
            cells,
        }
    }

    #[inline(always)]
    fn cell_of(v: f64, lo: f64, inv_cell: f64, cells: usize) -> usize {
        // f64→usize casts saturate (negative / NaN → 0, huge → MAX), so
        // the clamp below is total.
        (((v - lo) * inv_cell) as usize).min(cells - 1)
    }

    /// The half-open index window `[w0, w1)`… actually the *closed bracket*
    /// `[starts[j], starts[j+1]]` containing every partition point
    /// (`<` or `<=`) for `x`: search `sorted[w.0..w.1]` and add `w.0`.
    #[inline(always)]
    pub fn window(&self, x: f64) -> (usize, usize) {
        let j = Self::cell_of(x, self.lo, self.inv_cell, self.cells);
        (self.starts[j] as usize, self.starts[j + 1] as usize)
    }

    /// Grid-accelerated `sorted.partition_point(|&v| v < x)`. `sorted`
    /// must be the slice the grid was built over.
    #[inline]
    pub fn partition_lt(&self, sorted: &[f64], x: f64) -> usize {
        let (w0, w1) = self.window(x);
        w0 + partition_lt(&sorted[w0..w1], x)
    }

    /// Grid-accelerated `sorted.partition_point(|&v| v <= x)`.
    #[inline]
    pub fn partition_le(&self, sorted: &[f64], x: f64) -> usize {
        let (w0, w1) = self.window(x);
        w0 + partition_le(&sorted[w0..w1], x)
    }

    /// Number of grid cells.
    pub fn cells(&self) -> usize {
        self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_ops_match_scalar_per_lane() {
        let a = F64x4([1.5, -2.25, 0.0, 1e300]);
        let b = F64x4([0.5, 4.0, -0.0, 1e-300]);
        assert_eq!((a + b).0, [2.0, 1.75, 0.0, 1e300]);
        assert_eq!((a - b).0, [1.0, -6.25, 0.0, 1e300]);
        for i in 0..4 {
            assert_eq!((a * b).0[i].to_bits(), (a.0[i] * b.0[i]).to_bits());
            assert_eq!((a / b).0[i].to_bits(), (a.0[i] / b.0[i]).to_bits());
        }
        assert_eq!(a.min(b).0, [0.5, -2.25, -0.0, 1e-300]);
        assert_eq!(a.max(b).0, [1.5, 4.0, 0.0, 1e300]);
        assert_eq!(a.abs().0, [1.5, 2.25, 0.0, 1e300]);
    }

    #[test]
    fn fma_rounds_twice_like_the_scalar_expression() {
        let x = F64x4::splat(1.0 + f64::EPSILON);
        let m = F64x4::splat(1.0 - f64::EPSILON);
        let a = F64x4::splat(-1.0);
        let got = x.fma(m, a).0[0];
        let scalar = (1.0 + f64::EPSILON) * (1.0 - f64::EPSILON) + -1.0;
        // A fused FMA would produce -EPSILON^2 here; the double-rounded
        // answer is 0.
        assert_eq!(got.to_bits(), scalar.to_bits());
        assert_eq!(got, 0.0);
    }

    #[test]
    fn select_blends_per_lane() {
        let t = F64x4([-2.0, -1.0, 0.0, 2.0]);
        let m = t.le(F64x4::splat(-1.0));
        assert_eq!(m.0, [u64::MAX, u64::MAX, 0, 0]);
        let blended = F64x4::select(m, F64x4::splat(0.0), F64x4::splat(9.0));
        assert_eq!(blended.0, [0.0, 0.0, 9.0, 9.0]);
        assert_eq!(t.ge(F64x4::splat(0.0)).0, [0, 0, u64::MAX, u64::MAX]);
        assert_eq!(t.lt(F64x4::splat(0.0)).0, [u64::MAX, u64::MAX, 0, 0]);
        // NaN payloads survive the bitwise blend untouched.
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let picked = F64x4::select(m, F64x4::splat(nan), F64x4::splat(1.0));
        assert_eq!(picked.0[0].to_bits(), nan.to_bits());
        assert_eq!(picked.0[3].to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn tree_reductions_agree_across_widths() {
        let e: [f64; 8] = [0.1, 0.2, 0.3, 0.4, 1e16, -1e16, 0.7, 0.8];
        let scalar_tree = ((e[0] + e[1]) + (e[2] + e[3])) + ((e[4] + e[5]) + (e[6] + e[7]));
        let x8 = F64x8(e).hsum_tree();
        let v = F64x8(e);
        let x4 = v.lo().hsum_tree() + v.hi().hsum_tree();
        assert_eq!(scalar_tree.to_bits(), x8.to_bits());
        assert_eq!(scalar_tree.to_bits(), x4.to_bits());
    }

    #[test]
    fn kahan_accumulator_recovers_cancelled_terms() {
        let mut acc = KahanSum::new();
        for &v in &[1.0, 1e100, 1.0, -1e100] {
            acc.add(v);
        }
        assert_eq!(acc.value(), 2.0);
        let k4 = F64x4([1.0, 1e100, 1.0, -1e100]).hsum_kahan();
        assert_eq!(k4, 2.0);
        let naive: f64 = [1.0f64, 1e100, 1.0, -1e100].iter().sum();
        assert_eq!(naive, 0.0); // what the uncompensated sum loses
    }

    #[test]
    fn branchless_partitions_match_partition_point() {
        let mut s: Vec<f64> = (0..257).map(|i| ((i * 37) % 100) as f64 / 4.0).collect();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for probe in [-1.0, 0.0, 3.25, 12.5, 24.75, 25.0, 100.0, f64::NAN] {
            assert_eq!(
                partition_lt(&s, probe),
                s.partition_point(|&v| v < probe),
                "lt {probe}"
            );
            assert_eq!(
                partition_le(&s, probe),
                s.partition_point(|&v| v <= probe),
                "le {probe}"
            );
        }
        assert_eq!(partition_lt(&[], 1.0), 0);
        assert_eq!(partition_le(&[], 1.0), 0);
    }

    #[test]
    fn grid_index_is_exact_everywhere() {
        let mut s: Vec<f64> = (0..1000)
            .map(|i| (((i * i) % 997) as f64).sqrt() * 3.0 - 5.0)
            .collect();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let grid = GridIndex::build(&s, 256);
        // Probe on, between, below, above, and far outside the values.
        let mut probes: Vec<f64> = s.iter().step_by(7).copied().collect();
        probes.extend([-1e9, -5.0001, 0.0, 42.42, 89.73, 1e9, f64::NAN]);
        for &x in &probes {
            assert_eq!(
                grid.partition_lt(&s, x),
                s.partition_point(|&v| v < x),
                "lt {x}"
            );
            assert_eq!(
                grid.partition_le(&s, x),
                s.partition_point(|&v| v <= x),
                "le {x}"
            );
        }
    }

    #[test]
    fn grid_index_handles_degenerate_spans() {
        // All-equal values: zero width span collapses to one cell.
        let s = vec![7.0; 50];
        let grid = GridIndex::build(&s, 64);
        assert_eq!(grid.cells(), 1);
        assert_eq!(grid.partition_lt(&s, 7.0), 0);
        assert_eq!(grid.partition_le(&s, 7.0), 50);
        assert_eq!(grid.partition_lt(&s, 8.0), 50);
        // Single element.
        let one = vec![3.0];
        let g1 = GridIndex::build(&one, 16);
        assert_eq!(g1.partition_le(&one, 2.9), 0);
        assert_eq!(g1.partition_le(&one, 3.0), 1);
    }

    #[test]
    fn lane_mode_parsing_and_override() {
        assert_eq!(LaneMode::parse("scalar"), Some(LaneMode::Scalar));
        assert_eq!(LaneMode::parse("1"), Some(LaneMode::Scalar));
        assert_eq!(LaneMode::parse(" 4 "), Some(LaneMode::X4));
        assert_eq!(LaneMode::parse("8"), Some(LaneMode::X8));
        assert_eq!(LaneMode::parse("16"), None);
        for mode in LaneMode::ALL {
            set_lanes(Some(mode));
            assert_eq!(configured_lanes(), mode);
        }
        set_lanes(None);
        // Without an override the answer is the env var or the default;
        // either way it parses back to itself.
        let m = configured_lanes();
        assert_eq!(LaneMode::parse(m.label()), Some(m));
    }

    #[test]
    fn from_slice_and_splat() {
        let v = F64x8::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 99.0]);
        assert_eq!(v.0, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(F64x4::splat(2.5).0, [2.5; 4]);
        assert_eq!(F64x8::LANES, 8);
        assert_eq!(F64x4::LANES, 4);
    }
}
