//! Confidence intervals for sample-based selectivity estimates.
//!
//! A sampling-based selectivity estimate is a binomial proportion, so the
//! classical intervals apply: the Wald interval (simple, poor near 0/1)
//! and the Wilson score interval (the practical default). Both support the
//! finite-population correction for sampling *without replacement* from a
//! relation of known size — exactly the paper's setting (n = 2 000 of
//! N = 100 000).
//!
//! For kernel and histogram estimators these intervals are a conservative
//! proxy: smoothing reduces variance at the price of bias, so the true
//! coverage is at least nominal wherever the bias is small (interior
//! queries at reasonable smoothing parameters).

use selest_math::normal_quantile;

/// A two-sided confidence interval for a selectivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound, in `[0, 1]`.
    pub lo: f64,
    /// Upper bound, in `[0, 1]`.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval contains `p`.
    pub fn contains(&self, p: f64) -> bool {
        p >= self.lo && p <= self.hi
    }
}

/// The finite-population correction factor `sqrt((N - n) / (N - 1))` for
/// sampling without replacement; 1.0 when no population size is given.
fn fpc(n: usize, population: Option<usize>) -> f64 {
    match population {
        Some(big_n) if big_n > 1 => {
            assert!(n <= big_n, "sample larger than population: {n} > {big_n}");
            (((big_n - n) as f64) / ((big_n - 1) as f64)).sqrt()
        }
        _ => 1.0,
    }
}

/// Wald (normal-approximation) interval for a proportion estimated as
/// `p_hat` from `n` samples at the given confidence level, optionally with
/// the finite-population correction for a population of the given size.
pub fn wald_interval(
    p_hat: f64,
    n: usize,
    confidence: f64,
    population: Option<usize>,
) -> ConfidenceInterval {
    assert!((0.0..=1.0).contains(&p_hat), "p_hat out of [0,1]: {p_hat}");
    assert!(n > 0, "wald_interval needs samples");
    assert!(
        (0.0..1.0).contains(&confidence),
        "confidence out of [0,1): {confidence}"
    );
    let z = normal_quantile(0.5 + confidence / 2.0);
    let se = (p_hat * (1.0 - p_hat) / n as f64).sqrt() * fpc(n, population);
    ConfidenceInterval {
        lo: (p_hat - z * se).max(0.0),
        hi: (p_hat + z * se).min(1.0),
    }
}

/// Wilson score interval: well-behaved near 0 and 1 and for small `n`; the
/// recommended default. The finite-population correction shrinks the
/// effective variance as in the Wald case.
///
/// # Examples
///
/// ```
/// use selest_core::wilson_interval;
///
/// // 2 000 samples of a 100 000-row relation estimated sigma = 0.15.
/// let ci = wilson_interval(0.15, 2_000, 0.95, Some(100_000));
/// assert!(ci.contains(0.15));
/// assert!(ci.width() < 0.035);
/// ```
pub fn wilson_interval(
    p_hat: f64,
    n: usize,
    confidence: f64,
    population: Option<usize>,
) -> ConfidenceInterval {
    assert!((0.0..=1.0).contains(&p_hat), "p_hat out of [0,1]: {p_hat}");
    assert!(n > 0, "wilson_interval needs samples");
    assert!(
        (0.0..1.0).contains(&confidence),
        "confidence out of [0,1): {confidence}"
    );
    let z = normal_quantile(0.5 + confidence / 2.0);
    // Apply the correction by inflating the effective sample size.
    let c = fpc(n, population);
    let n_eff = if c > 0.0 {
        n as f64 / (c * c)
    } else {
        f64::INFINITY
    };
    if !n_eff.is_finite() {
        // Degenerate full-population sample: the estimate is exact.
        return ConfidenceInterval {
            lo: p_hat,
            hi: p_hat,
        };
    }
    let z2 = z * z;
    let denom = 1.0 + z2 / n_eff;
    let center = (p_hat + z2 / (2.0 * n_eff)) / denom;
    let half = z * (p_hat * (1.0 - p_hat) / n_eff + z2 / (4.0 * n_eff * n_eff)).sqrt() / denom;
    ConfidenceInterval {
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wald_matches_hand_computation() {
        // p = 0.5, n = 100, 95%: se = 0.05, z = 1.96 -> +- 0.098.
        let ci = wald_interval(0.5, 100, 0.95, None);
        assert!((ci.lo - (0.5 - 0.098)).abs() < 1e-3, "lo {}", ci.lo);
        assert!((ci.hi - (0.5 + 0.098)).abs() < 1e-3, "hi {}", ci.hi);
        assert!(ci.contains(0.5));
        assert!(!ci.contains(0.7));
    }

    #[test]
    fn intervals_shrink_with_n_and_confidence() {
        let wide = wald_interval(0.3, 100, 0.95, None);
        let narrow = wald_interval(0.3, 10_000, 0.95, None);
        assert!(narrow.width() < 0.15 * wide.width());
        let low_conf = wald_interval(0.3, 100, 0.80, None);
        assert!(low_conf.width() < wide.width());
    }

    #[test]
    fn wilson_behaves_at_the_extremes() {
        // p_hat = 0 with Wald collapses to a point; Wilson does not.
        let wald = wald_interval(0.0, 50, 0.95, None);
        let wilson = wilson_interval(0.0, 50, 0.95, None);
        assert_eq!(wald.width(), 0.0);
        assert!(wilson.width() > 0.0, "Wilson must keep uncertainty at p=0");
        assert!(wilson.hi < 0.15);
        // Symmetric at the other end.
        let wilson_hi = wilson_interval(1.0, 50, 0.95, None);
        assert!((wilson_hi.width() - wilson.width()).abs() < 1e-12);
    }

    #[test]
    fn wilson_and_wald_agree_for_large_n_mid_p() {
        let a = wald_interval(0.4, 100_000, 0.95, None);
        let b = wilson_interval(0.4, 100_000, 0.95, None);
        assert!((a.lo - b.lo).abs() < 1e-4);
        assert!((a.hi - b.hi).abs() < 1e-4);
    }

    #[test]
    fn finite_population_correction_tightens_intervals() {
        // Sampling 2 000 of 100 000 barely matters; 2 000 of 2 500 does.
        let free = wald_interval(0.3, 2_000, 0.95, None);
        let big = wald_interval(0.3, 2_000, 0.95, Some(100_000));
        let small = wald_interval(0.3, 2_000, 0.95, Some(2_500));
        assert!(big.width() < free.width());
        assert!(big.width() > 0.95 * free.width());
        assert!(small.width() < 0.5 * free.width());
    }

    #[test]
    fn full_population_sample_is_exact() {
        let ci = wilson_interval(0.42, 1_000, 0.95, Some(1_000));
        assert_eq!(ci.lo, 0.42);
        assert_eq!(ci.hi, 0.42);
    }

    #[test]
    fn empirical_coverage_of_wilson_is_nominal() {
        // Deterministic binomial experiments: for p = 0.2, n = 400, check
        // the interval covers p for the overwhelming majority of binomial
        // outcomes weighted by their probability. We approximate by
        // scanning outcomes within 6 sigma and summing probabilities via
        // the normal approximation of the binomial.
        let p = 0.2;
        let n = 400;
        let sigma = (p * (1.0 - p) * n as f64).sqrt();
        let mut covered_prob = 0.0;
        let mut total_prob = 0.0;
        for k in 0..=n {
            let z = (k as f64 - p * n as f64) / sigma;
            if z.abs() > 6.0 {
                continue;
            }
            // Normal density as the binomial weight (fine at this n).
            let w = (-0.5 * z * z).exp();
            total_prob += w;
            let ci = wilson_interval(k as f64 / n as f64, n, 0.95, None);
            if ci.contains(p) {
                covered_prob += w;
            }
        }
        let coverage = covered_prob / total_prob;
        assert!(
            (0.93..=0.97).contains(&coverage),
            "Wilson coverage {coverage}, want ~0.95"
        );
    }

    #[test]
    #[should_panic(expected = "sample larger than population")]
    fn oversized_sample_panics() {
        let _ = wald_interval(0.5, 200, 0.95, Some(100));
    }
}
