//! Exact instance selectivity over a full data file.
//!
//! The experiment harness needs the *true* result count `|Q|` of every query
//! to compute errors. [`ExactSelectivity`] keeps a sorted copy of the entire
//! data file and answers counts with two binary searches, so even the
//! 257 942-record rail-road files cost microseconds per query.

use crate::domain::Domain;
use crate::ecdf::Ecdf;
use crate::query::RangeQuery;
use crate::traits::SelectivityEstimator;

/// Ground-truth oracle: exact counts and instance selectivities of range
/// queries over a concrete data file.
#[derive(Debug, Clone)]
pub struct ExactSelectivity {
    ecdf: Ecdf,
    domain: Domain,
}

impl ExactSelectivity {
    /// Build from the full value set of a relation attribute.
    pub fn new(values: &[f64], domain: Domain) -> Self {
        ExactSelectivity {
            ecdf: Ecdf::new(values),
            domain,
        }
    }

    /// Exact number of records matching `a <= r.A <= b`.
    pub fn count(&self, q: &RangeQuery) -> usize {
        self.ecdf.count_in(q.a(), q.b())
    }

    /// Total number of records `N`.
    pub fn total(&self) -> usize {
        self.ecdf.len()
    }

    /// Exact instance selectivity: `count / N`.
    pub fn instance_selectivity(&self, q: &RangeQuery) -> f64 {
        self.count(q) as f64 / self.total() as f64
    }
}

impl SelectivityEstimator for ExactSelectivity {
    fn selectivity(&self, q: &RangeQuery) -> f64 {
        self.instance_selectivity(q)
    }

    fn domain(&self) -> Domain {
        self.domain
    }

    fn name(&self) -> String {
        "Exact".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_linear_scan() {
        let values: Vec<f64> = vec![1.0, 4.0, 4.0, 7.0, 9.0, 12.0, 12.0, 12.0, 20.0];
        let exact = ExactSelectivity::new(&values, Domain::new(0.0, 25.0));
        for (a, b) in [
            (0.0, 25.0),
            (4.0, 12.0),
            (4.5, 11.9),
            (13.0, 19.0),
            (12.0, 12.0),
        ] {
            let q = RangeQuery::new(a, b);
            let scan = values.iter().filter(|&&v| q.matches(v)).count();
            assert_eq!(exact.count(&q), scan, "range [{a}, {b}]");
        }
    }

    #[test]
    fn instance_selectivity_is_fraction() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let exact = ExactSelectivity::new(&values, Domain::new(0.0, 99.0));
        let q = RangeQuery::new(10.0, 19.0);
        assert_eq!(exact.count(&q), 10);
        assert!((exact.instance_selectivity(&q) - 0.1).abs() < 1e-15);
        assert!((exact.selectivity(&q) - 0.1).abs() < 1e-15);
        assert_eq!(exact.estimate_count(&q, 100), 10.0);
    }
}
