//! Typed failures of the estimation path, and sample sanitization.
//!
//! The paper's motivating scenario — a query optimizer consuming
//! selectivity numbers — requires that estimation *always* produces an
//! answer: a degenerate sample, a failed bandwidth selection, or a corrupt
//! statistics file must degrade the estimate, never crash the serving
//! path. [`EstimateError`] is the typed vocabulary for everything that can
//! go wrong between a raw sample and a served selectivity; the `try_*`
//! constructors across the workspace return it instead of panicking, and
//! the store's `ResilientEstimator` consumes it to walk its degradation
//! ladder (kernel → histogram → sampling → uniform).

use crate::domain::Domain;

/// A failure anywhere on the path from raw sample to served selectivity.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// No usable sample values remain after sanitization.
    EmptySample,
    /// Domain bounds are not finite and ordered (`lo < hi`).
    InvalidDomain {
        /// Offending lower bound.
        lo: f64,
        /// Offending upper bound.
        hi: f64,
    },
    /// Query bounds are not finite and ordered (`a <= b`).
    InvalidQuery {
        /// Offending left endpoint.
        a: f64,
        /// Offending right endpoint.
        b: f64,
    },
    /// A bandwidth selector produced a non-finite or non-positive width.
    InvalidBandwidth {
        /// The rejected bandwidth.
        value: f64,
    },
    /// An estimator returned a non-finite selectivity at serving time.
    NonFiniteEstimate {
        /// The rejected estimate.
        value: f64,
    },
    /// An incremental update (insert or delete) carried a non-finite
    /// value. Incremental statistics absorb updates without a sanitize
    /// pass, so a NaN reaching a sketch surfaces here — typed, never as a
    /// panic inside the sketch — and the whole update batch is rejected.
    NonFiniteUpdate {
        /// The rejected update value.
        value: f64,
    },
    /// Construction or estimation panicked inside a legacy estimator and
    /// was caught at the resilience boundary.
    Panicked {
        /// Which stage panicked.
        stage: FaultStage,
        /// The captured panic payload (best effort).
        message: String,
    },
    /// A parallel worker task never produced a value for a reason other
    /// than a panic — the execution deadline expired before the task ran,
    /// or the engine hit an internal invariant failure. Carries the
    /// engine's task-error description.
    TaskAbandoned {
        /// Why the task never completed (e.g. "execution deadline
        /// expired before the task could run").
        reason: String,
    },
    /// A serving shard refused the request — its admission limit was
    /// saturated, or the adaptive shed controller judged the queue too
    /// deep for the latency SLO. Backpressure, not failure: the caller
    /// should retry after roughly `retry_after_us` microseconds, the
    /// shard's own estimate of when the queue will have drained.
    Overloaded {
        /// The shard that refused admission.
        shard: usize,
        /// Concurrent estimates in flight on that shard when refused.
        in_flight: usize,
        /// The shard's admission limit.
        limit: usize,
        /// Suggested retry delay in microseconds (queue-drain estimate
        /// from the shard's latency EWMA; 0 when the shard has no
        /// latency history yet).
        retry_after_us: u64,
    },
    /// The request's end-to-end deadline expired before the estimate
    /// completed. Cooperative: the serving path polls the deadline at
    /// checkpoints (admission, between merge-scan phases, between batch
    /// slots) and abandons only the *remaining* work, so a batch returns
    /// partial results — finished slots keep their bit-exact values and
    /// unfinished slots carry this error.
    DeadlineExceeded {
        /// Microseconds elapsed when the expiry was observed.
        elapsed_us: u64,
        /// The request's budget in microseconds (0 for a manually
        /// tripped deadline with no wall-clock budget).
        budget_us: u64,
    },
    /// ANALYZE was asked for a column the relation does not have.
    UnknownColumn {
        /// Relation name.
        relation: String,
        /// Missing column name.
        column: String,
    },
    /// A lookup hit a column that was never analyzed.
    MissingStatistics {
        /// Relation name.
        relation: String,
        /// Column name.
        column: String,
    },
    /// A persisted statistics entry failed validation (checksum, field
    /// grammar, or value sanity); `line` is 1-based in the stats file.
    CorruptEntry {
        /// File the damage was found in (`None` for in-memory decodes).
        path: Option<String>,
        /// Line number where the entry starts (1-based).
        line: usize,
        /// Byte offset of that line's start in the file (0 when unknown).
        offset: usize,
        /// What was wrong.
        message: String,
    },
    /// A filesystem operation on the durable statistics path failed — or
    /// was aborted by an injected crash (`store::faultinject::CrashPlan`).
    /// Carries the path and the operation so recovery reports and `fsck`
    /// output name the exact failure site.
    Io {
        /// File or directory the operation targeted.
        path: String,
        /// What was being attempted (e.g. "fsync parent dir").
        op: String,
        /// The underlying I/O error (or the injected crash point).
        message: String,
    },
}

impl EstimateError {
    /// Attach file-path context to persistence errors: fills the `path` of
    /// a [`EstimateError::CorruptEntry`] produced by an in-memory decode.
    /// Other variants pass through unchanged.
    pub fn with_path(mut self, p: &std::path::Path) -> Self {
        if let EstimateError::CorruptEntry { path, .. } = &mut self {
            *path = Some(p.display().to_string());
        }
        self
    }
}

/// The pipeline stage at which a caught panic occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStage {
    /// Building an estimator from a sample.
    Build,
    /// Answering a selectivity query.
    Estimate,
}

impl core::fmt::Display for FaultStage {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultStage::Build => write!(f, "build"),
            FaultStage::Estimate => write!(f, "estimate"),
        }
    }
}

impl core::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EstimateError::EmptySample => {
                write!(f, "no usable sample values after sanitization")
            }
            EstimateError::InvalidDomain { lo, hi } => {
                write!(
                    f,
                    "invalid domain [{lo}, {hi}]: bounds must be finite with lo < hi"
                )
            }
            EstimateError::InvalidQuery { a, b } => {
                write!(
                    f,
                    "invalid query ({a}, {b}): bounds must be finite with a <= b"
                )
            }
            EstimateError::InvalidBandwidth { value } => {
                write!(f, "invalid bandwidth {value}: must be finite and positive")
            }
            EstimateError::NonFiniteEstimate { value } => {
                write!(f, "estimator returned non-finite selectivity {value}")
            }
            EstimateError::NonFiniteUpdate { value } => {
                write!(f, "incremental update carried non-finite value {value}")
            }
            EstimateError::Panicked { stage, message } => {
                write!(f, "estimator panicked during {stage}: {message}")
            }
            EstimateError::TaskAbandoned { reason } => {
                write!(f, "worker task abandoned: {reason}")
            }
            EstimateError::Overloaded {
                shard,
                in_flight,
                limit,
                retry_after_us,
            } => {
                write!(
                    f,
                    "shard {shard} overloaded: {in_flight} estimates in flight (limit {limit}); \
                     retry after {retry_after_us}us"
                )
            }
            EstimateError::DeadlineExceeded {
                elapsed_us,
                budget_us,
            } => {
                write!(
                    f,
                    "deadline exceeded: {elapsed_us}us elapsed of a {budget_us}us budget"
                )
            }
            EstimateError::UnknownColumn { relation, column } => {
                write!(f, "no column {column} in relation {relation}")
            }
            EstimateError::MissingStatistics { relation, column } => {
                write!(f, "no statistics for {relation}.{column}; run ANALYZE")
            }
            EstimateError::CorruptEntry {
                path,
                line,
                offset,
                message,
            } => {
                if let Some(p) = path {
                    write!(
                        f,
                        "corrupt statistics entry in {p} at line {line} (byte {offset}): {message}"
                    )
                } else {
                    write!(f, "corrupt statistics entry at line {line}: {message}")
                }
            }
            EstimateError::Io { path, op, message } => {
                write!(f, "io failure during {op} on {path}: {message}")
            }
        }
    }
}

impl std::error::Error for EstimateError {}

/// What sample sanitization found and removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleAudit {
    /// NaN or ±Inf values dropped.
    pub non_finite: usize,
    /// Finite values outside the declared domain, dropped.
    pub out_of_domain: usize,
    /// Values kept.
    pub kept: usize,
}

impl SampleAudit {
    /// Whether anything had to be removed.
    pub fn is_clean(&self) -> bool {
        self.non_finite == 0 && self.out_of_domain == 0
    }

    /// Total values dropped.
    pub fn dropped(&self) -> usize {
        self.non_finite + self.out_of_domain
    }
}

/// Drop sample values an estimator cannot digest — NaN, ±Inf, and values
/// outside the declared domain — returning the clean sample and an audit of
/// what was removed. Every fallible construction path runs this first so a
/// poisoned ANALYZE sample degrades into a smaller sample instead of a
/// panic (or worse, a silently NaN-poisoned histogram).
pub fn sanitize_sample(sample: &[f64], domain: &Domain) -> (Vec<f64>, SampleAudit) {
    let mut audit = SampleAudit::default();
    let mut clean = Vec::with_capacity(sample.len());
    for &v in sample {
        if !v.is_finite() {
            audit.non_finite += 1;
        } else if !domain.contains(v) {
            audit.out_of_domain += 1;
        } else {
            clean.push(v);
        }
    }
    audit.kept = clean.len();
    (clean, audit)
}

/// Run a closure with panics captured as [`EstimateError::Panicked`].
///
/// The legacy estimators (`assert!`-heavy construction, bandwidth
/// selectors) predate the fallible API; this is the containment boundary
/// that turns their panics into typed errors the degradation ladder can
/// act on. The panic hook is left untouched — callers who want quiet
/// logs should silence it themselves; the store's chaos tests do.
pub fn catch_fault<T>(
    stage: FaultStage,
    f: impl FnOnce() -> T + std::panic::UnwindSafe,
) -> Result<T, EstimateError> {
    std::panic::catch_unwind(f).map_err(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        };
        EstimateError::Panicked { stage, message }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_drops_only_the_bad_values() {
        let d = Domain::new(0.0, 10.0);
        let raw = [
            1.0,
            f64::NAN,
            5.0,
            f64::INFINITY,
            -3.0,
            11.0,
            9.5,
            f64::NEG_INFINITY,
        ];
        let (clean, audit) = sanitize_sample(&raw, &d);
        assert_eq!(clean, vec![1.0, 5.0, 9.5]);
        assert_eq!(audit.non_finite, 3);
        assert_eq!(audit.out_of_domain, 2);
        assert_eq!(audit.kept, 3);
        assert_eq!(audit.dropped(), 5);
        assert!(!audit.is_clean());
    }

    #[test]
    fn sanitize_keeps_clean_samples_intact() {
        let d = Domain::new(0.0, 1.0);
        let raw = [0.0, 0.5, 1.0];
        let (clean, audit) = sanitize_sample(&raw, &d);
        assert_eq!(clean, raw.to_vec());
        assert!(audit.is_clean());
        assert_eq!(audit.kept, 3);
    }

    #[test]
    fn catch_fault_converts_panics_to_typed_errors() {
        let ok = catch_fault(FaultStage::Build, || 42);
        assert_eq!(ok, Ok(42));
        let err = catch_fault(FaultStage::Estimate, || -> i32 { panic!("kaboom {}", 7) });
        match err {
            Err(EstimateError::Panicked { stage, message }) => {
                assert_eq!(stage, FaultStage::Estimate);
                assert!(message.contains("kaboom 7"), "got {message:?}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn errors_display_usefully() {
        let cases: Vec<(EstimateError, &str)> = vec![
            (EstimateError::EmptySample, "no usable sample"),
            (
                EstimateError::InvalidDomain { lo: 3.0, hi: 1.0 },
                "invalid domain",
            ),
            (
                EstimateError::InvalidQuery {
                    a: f64::NAN,
                    b: 1.0,
                },
                "invalid query",
            ),
            (
                EstimateError::InvalidBandwidth { value: f64::NAN },
                "invalid bandwidth",
            ),
            (
                EstimateError::NonFiniteEstimate { value: f64::NAN },
                "non-finite",
            ),
            (
                EstimateError::Overloaded {
                    shard: 3,
                    in_flight: 128,
                    limit: 128,
                    retry_after_us: 750,
                },
                "shard 3 overloaded",
            ),
            (
                EstimateError::Overloaded {
                    shard: 0,
                    in_flight: 9,
                    limit: 8,
                    retry_after_us: 1_500,
                },
                "retry after 1500us",
            ),
            (
                EstimateError::DeadlineExceeded {
                    elapsed_us: 2_300,
                    budget_us: 2_000,
                },
                "deadline exceeded: 2300us elapsed of a 2000us budget",
            ),
            (
                EstimateError::UnknownColumn {
                    relation: "r".into(),
                    column: "c".into(),
                },
                "no column c",
            ),
            (
                EstimateError::MissingStatistics {
                    relation: "r".into(),
                    column: "c".into(),
                },
                "run ANALYZE",
            ),
            (
                EstimateError::TaskAbandoned {
                    reason: "execution deadline expired".into(),
                },
                "abandoned: execution deadline",
            ),
            (
                EstimateError::CorruptEntry {
                    path: None,
                    line: 7,
                    offset: 0,
                    message: "bad".into(),
                },
                "line 7",
            ),
            (
                EstimateError::CorruptEntry {
                    path: Some("store/gen-000001.stats".into()),
                    line: 7,
                    offset: 142,
                    message: "bad".into(),
                },
                "gen-000001.stats at line 7 (byte 142)",
            ),
            (
                EstimateError::Io {
                    path: "store/MANIFEST".into(),
                    op: "fsync parent dir".into(),
                    message: "permission denied".into(),
                },
                "fsync parent dir on store/MANIFEST",
            ),
        ];
        for (e, needle) in cases {
            let s = e.to_string();
            assert!(s.contains(needle), "{s:?} should contain {needle:?}");
        }
    }
}
