//! Empirical cumulative distribution function over a sample.

use std::sync::Arc;

use selest_simd::GridIndex;

/// Empirical CDF of a sample, backed by a sorted copy of the values.
///
/// The sorted backing is `Arc`-shared, so cloning an `Ecdf` (e.g. out of a
/// [`crate::PreparedColumn`]) costs a reference-count bump, not a copy.
/// Rank lookups go through an `Arc`-shared [`GridIndex`] built once at
/// construction: the grid maps a probe to its cell in O(1) and finishes
/// with a branchless search over that one cell's occupants, replacing the
/// full-slice `partition_point` (and its data-dependent branch
/// mispredictions) on the serving path. The grid bracket is exact, so
/// every count is still identical to the naive search.
///
/// Used by the equi-depth histogram (quantile boundaries), by the pure
/// sampling estimator, and by tests that compare estimated CDFs against
/// analytic ones.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Arc<[f64]>,
    grid: Arc<GridIndex>,
}

/// Grid resolution for a sample of `n` points: ~4 points per cell keeps
/// the residual search 2–3 comparisons while the `starts` array stays a
/// few KiB even for large samples.
fn grid_cells(n: usize) -> usize {
    (n / 4).clamp(1, 65_536)
}

impl Ecdf {
    /// Build from an arbitrary (unsorted) sample. Panics on empty input or
    /// NaN values.
    pub fn new(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "Ecdf of empty sample");
        let mut sorted = values.to_vec();
        assert!(sorted.iter().all(|v| !v.is_nan()), "Ecdf: NaN in sample");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Self::from_shared_sorted(sorted.into())
    }

    /// Build from an already-sorted sample without re-sorting.
    pub fn from_sorted(sorted: Vec<f64>) -> Self {
        Self::from_shared_sorted(sorted.into())
    }

    /// Build from an already-sorted shared sample without re-sorting or
    /// copying.
    pub fn from_shared_sorted(sorted: Arc<[f64]>) -> Self {
        assert!(!sorted.is_empty(), "Ecdf of empty sample");
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
        let grid = Arc::new(GridIndex::build(&sorted, grid_cells(sorted.len())));
        Ecdf { sorted, grid }
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted sample backing this ECDF.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// A shared handle to the sorted backing (a reference-count bump).
    pub fn sorted_arc(&self) -> Arc<[f64]> {
        Arc::clone(&self.sorted)
    }

    /// Number of sample points `<= x`.
    pub fn count_le(&self, x: f64) -> usize {
        self.grid.partition_le(&self.sorted, x)
    }

    /// Number of sample points `< x`.
    pub fn count_lt(&self, x: f64) -> usize {
        self.grid.partition_lt(&self.sorted, x)
    }

    /// Number of sample points in the closed interval `[a, b]`.
    pub fn count_in(&self, a: f64, b: f64) -> usize {
        if b < a {
            return 0;
        }
        self.count_le(b) - self.count_lt(a)
    }

    /// `F_n(x)`: fraction of sample points `<= x`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.count_le(x) as f64 / self.sorted.len() as f64
    }

    /// Generalized inverse `F_n^{-1}(q)`: the smallest sample value whose
    /// CDF reaches `q`. `q` must lie in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "Ecdf::quantile: q={q} out of [0,1]"
        );
        if q <= 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_step_values() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(2.5), 0.75);
        assert_eq!(e.cdf(3.0), 1.0);
        assert_eq!(e.cdf(99.0), 1.0);
    }

    #[test]
    fn count_in_is_inclusive_on_both_ends() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.count_in(2.0, 3.0), 3);
        assert_eq!(e.count_in(1.0, 4.0), 5);
        assert_eq!(e.count_in(2.5, 2.6), 0);
        assert_eq!(e.count_in(5.0, 1.0), 0);
    }

    #[test]
    fn quantile_is_generalized_inverse() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.26), 20.0);
        assert_eq!(e.quantile(0.5), 20.0);
        assert_eq!(e.quantile(0.75), 30.0);
        assert_eq!(e.quantile(1.0), 40.0);
    }

    #[test]
    fn quantile_and_cdf_are_consistent() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let e = Ecdf::new(&vals);
        for &q in &[0.01, 0.1, 0.37, 0.5, 0.93, 1.0] {
            let x = e.quantile(q);
            assert!(e.cdf(x) >= q - 1e-12, "cdf(quantile({q})) too small");
        }
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn rejects_empty() {
        let _ = Ecdf::new(&[]);
    }

    /// The grid-accelerated counts must agree with the naive
    /// `partition_point` everywhere — on values, between them, outside the
    /// span, and on heavy ties.
    #[test]
    fn grid_counts_match_partition_point() {
        let mut vals: Vec<f64> = (0..777)
            .map(|i| (((i * 131) % 997) as f64).sqrt() * 7.0 - 11.0)
            .collect();
        vals.extend(std::iter::repeat_n(3.25, 40)); // tie block
        let e = Ecdf::new(&vals);
        let sorted = e.sorted_values().to_vec();
        let mut probes: Vec<f64> = sorted.iter().step_by(5).copied().collect();
        probes.extend([-1e12, -11.0001, 0.0, 3.25, 98.7, 1e12]);
        for &x in &probes {
            assert_eq!(e.count_le(x), sorted.partition_point(|&v| v <= x), "le {x}");
            assert_eq!(e.count_lt(x), sorted.partition_point(|&v| v < x), "lt {x}");
        }
    }
}
