//! Attribute domains.
//!
//! The paper studies metric attributes whose domain is an integer interval
//! `[0, 2^p - 1]` for a parameter `p` (Section 5.1.1). [`Domain`] models the
//! general case — a closed real interval `[lo, hi]` — with a constructor for
//! the paper's power-of-two integer domains. All estimators treat the domain
//! as metric and continuous; the integer grid only matters to the data
//! generators (duplicate frequencies) and to the cardinality experiments
//! (Figure 5).

/// A closed metric attribute domain `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Domain {
    lo: f64,
    hi: f64,
}

impl Domain {
    /// A domain over the closed interval `[lo, hi]`. Panics unless
    /// `lo < hi` and both are finite; serving paths use
    /// [`Domain::try_new`] instead.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "Domain requires finite lo < hi, got [{lo}, {hi}]"
        );
        Domain { lo, hi }
    }

    /// Fallible constructor: the panic-free entry point of the fault-
    /// tolerant serving path.
    pub fn try_new(lo: f64, hi: f64) -> Result<Self, crate::fault::EstimateError> {
        if lo.is_finite() && hi.is_finite() && lo < hi {
            Ok(Domain { lo, hi })
        } else {
            Err(crate::fault::EstimateError::InvalidDomain { lo, hi })
        }
    }

    /// The paper's integer domain `[0, 2^p - 1]` for `1 <= p <= 52`.
    pub fn power_of_two(p: u32) -> Self {
        assert!((1..=52).contains(&p), "power_of_two: p={p} out of 1..=52");
        Domain::new(0.0, (1u64 << p) as f64 - 1.0)
    }

    /// The unit interval `[0, 1]`.
    pub fn unit() -> Self {
        Domain::new(0.0, 1.0)
    }

    /// Left boundary `l`.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Right boundary `r`.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the domain.
    pub fn center(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether `x` lies in the closed interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Clamp `x` into the domain.
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }

    /// Length of the overlap of `[a, b]` with the domain (zero if disjoint).
    pub fn overlap(&self, a: f64, b: f64) -> f64 {
        (b.min(self.hi) - a.max(self.lo)).max(0.0)
    }

    /// Map a fraction `t` in `[0, 1]` affinely onto the domain.
    pub fn lerp(&self, t: f64) -> f64 {
        self.lo + t * self.width()
    }

    /// Inverse of [`Domain::lerp`]: position of `x` as a fraction of the
    /// domain width.
    pub fn fraction_of(&self, x: f64) -> f64 {
        (x - self.lo) / self.width()
    }
}

impl core::fmt::Display for Domain {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_matches_paper() {
        let d = Domain::power_of_two(20);
        assert_eq!(d.lo(), 0.0);
        assert_eq!(d.hi(), 1_048_575.0);
        assert_eq!(d.width(), 1_048_575.0);
    }

    #[test]
    fn contains_and_clamp() {
        let d = Domain::new(-2.0, 3.0);
        assert!(d.contains(-2.0));
        assert!(d.contains(3.0));
        assert!(!d.contains(3.0001));
        assert_eq!(d.clamp(10.0), 3.0);
        assert_eq!(d.clamp(-10.0), -2.0);
        assert_eq!(d.clamp(0.5), 0.5);
    }

    #[test]
    fn overlap_cases() {
        let d = Domain::new(0.0, 10.0);
        assert_eq!(d.overlap(2.0, 5.0), 3.0);
        assert_eq!(d.overlap(-5.0, 5.0), 5.0);
        assert_eq!(d.overlap(8.0, 20.0), 2.0);
        assert_eq!(d.overlap(11.0, 20.0), 0.0);
        assert_eq!(d.overlap(-20.0, -11.0), 0.0);
        assert_eq!(d.overlap(-1.0, 11.0), 10.0);
    }

    #[test]
    fn lerp_and_fraction_roundtrip() {
        let d = Domain::new(5.0, 25.0);
        for &t in &[0.0, 0.25, 0.5, 0.99, 1.0] {
            let x = d.lerp(t);
            assert!((d.fraction_of(x) - t).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "finite lo < hi")]
    fn rejects_inverted_bounds() {
        let _ = Domain::new(3.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of 1..=52")]
    fn rejects_huge_p() {
        let _ = Domain::power_of_two(60);
    }
}
