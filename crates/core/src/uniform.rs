//! The uniform (System R) estimator: a histogram with a single bin.
//!
//! Assumes records are uniformly distributed over the domain, so the
//! selectivity of `Q(a, b)` is the fraction of the domain the query covers.
//! It is the parametric baseline of the paper's Figure 8, where it loses by
//! orders of magnitude on skewed data (600 % MRE on the census file).

use crate::domain::Domain;
use crate::query::RangeQuery;
use crate::traits::{DensityEstimator, SelectivityEstimator};

/// The uniform-assumption selectivity estimator.
#[derive(Debug, Clone, Copy)]
pub struct UniformEstimator {
    domain: Domain,
}

impl UniformEstimator {
    /// Build over a domain; needs no samples at all.
    pub fn new(domain: Domain) -> Self {
        UniformEstimator { domain }
    }
}

impl SelectivityEstimator for UniformEstimator {
    fn selectivity(&self, q: &RangeQuery) -> f64 {
        self.domain.overlap(q.a(), q.b()) / self.domain.width()
    }

    fn domain(&self) -> Domain {
        self.domain
    }

    fn name(&self) -> String {
        "Uniform".into()
    }
}

impl DensityEstimator for UniformEstimator {
    fn density(&self, x: f64) -> f64 {
        if self.domain.contains(x) {
            1.0 / self.domain.width()
        } else {
            0.0
        }
    }

    fn domain(&self) -> Domain {
        self.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_is_domain_fraction() {
        let u = UniformEstimator::new(Domain::new(0.0, 100.0));
        assert!((u.selectivity(&RangeQuery::new(10.0, 30.0)) - 0.2).abs() < 1e-15);
        assert_eq!(u.selectivity(&RangeQuery::new(0.0, 100.0)), 1.0);
        // Query partially outside the domain counts only the overlap.
        assert!((u.selectivity(&RangeQuery::new(90.0, 200.0)) - 0.1).abs() < 1e-15);
    }

    #[test]
    fn density_is_flat_and_integrates_to_one() {
        let u = UniformEstimator::new(Domain::new(2.0, 4.0));
        assert_eq!(u.density(3.0), 0.5);
        assert_eq!(u.density(1.0), 0.0);
        assert_eq!(u.density(5.0), 0.0);
        let mass = selest_math::simpson(|x| u.density(x), 2.0, 4.0, 100);
        assert!((mass - 1.0).abs() < 1e-12);
    }
}
