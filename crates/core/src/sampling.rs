//! Pure sampling: the `O(n^{-1/2})` baseline estimator (Section 2).
//!
//! The estimated selectivity of `Q(a, b)` is simply the fraction of sample
//! points falling in `[a, b]`. It is consistent but converges only at rate
//! `O(n^{-1/2})` — every other method in the workspace exists to beat it.

use crate::domain::Domain;
use crate::ecdf::Ecdf;
use crate::query::RangeQuery;
use crate::traits::SelectivityEstimator;

/// The pure sampling selectivity estimator.
/// # Examples
///
/// ```
/// use selest_core::{Domain, RangeQuery, SamplingEstimator, SelectivityEstimator};
///
/// let sample = vec![10.0, 25.0, 40.0, 55.0, 70.0];
/// let est = SamplingEstimator::new(&sample, Domain::new(0.0, 100.0));
/// // Three of five samples fall in [20, 60].
/// assert_eq!(est.selectivity(&RangeQuery::new(20.0, 60.0)), 0.6);
/// ```
#[derive(Debug, Clone)]
pub struct SamplingEstimator {
    ecdf: Ecdf,
    domain: Domain,
}

impl SamplingEstimator {
    /// Build from a sample set (unsorted). Panics on an empty sample;
    /// serving paths use [`SamplingEstimator::try_new`] instead.
    pub fn new(samples: &[f64], domain: Domain) -> Self {
        SamplingEstimator {
            ecdf: Ecdf::new(samples),
            domain,
        }
    }

    /// Fallible constructor: sanitizes the sample (dropping NaN, ±Inf, and
    /// out-of-domain values) and errors on an empty remainder instead of
    /// panicking.
    pub fn try_new(samples: &[f64], domain: Domain) -> Result<Self, crate::fault::EstimateError> {
        let (clean, _audit) = crate::fault::sanitize_sample(samples, &domain);
        if clean.is_empty() {
            return Err(crate::fault::EstimateError::EmptySample);
        }
        Ok(SamplingEstimator {
            ecdf: Ecdf::new(&clean),
            domain,
        })
    }

    /// Build from a prepared column, borrowing its shared sorted sample
    /// (a ref-count bump — no copy, no re-sort). Bit-identical to
    /// [`SamplingEstimator::new`] over the same sample.
    pub fn from_prepared(col: &crate::prepared::PreparedColumn) -> Self {
        SamplingEstimator {
            ecdf: col.ecdf().clone(),
            domain: col.domain(),
        }
    }

    /// Number of samples `n`.
    pub fn sample_size(&self) -> usize {
        self.ecdf.len()
    }
}

impl SelectivityEstimator for SamplingEstimator {
    fn selectivity(&self, q: &RangeQuery) -> f64 {
        self.ecdf.count_in(q.a(), q.b()) as f64 / self.ecdf.len() as f64
    }

    fn domain(&self) -> Domain {
        self.domain
    }

    fn name(&self) -> String {
        "Sampling".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_of_matching_samples() {
        let s = SamplingEstimator::new(&[1.0, 2.0, 3.0, 4.0, 5.0], Domain::new(0.0, 10.0));
        assert_eq!(s.sample_size(), 5);
        let q = RangeQuery::new(2.0, 4.0);
        assert!((s.selectivity(&q) - 0.6).abs() < 1e-15);
        let whole = RangeQuery::new(0.0, 10.0);
        assert_eq!(s.selectivity(&whole), 1.0);
        let empty = RangeQuery::new(6.0, 10.0);
        assert_eq!(s.selectivity(&empty), 0.0);
    }

    #[test]
    fn converges_on_uniform_data() {
        // Deterministic low-discrepancy "sample" of U[0,1]: the estimator
        // should approach the true selectivity b - a.
        let n = 10_000;
        let samples: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let s = SamplingEstimator::new(&samples, Domain::unit());
        let q = RangeQuery::new(0.2, 0.7);
        assert!((s.selectivity(&q) - 0.5).abs() < 1e-3);
    }
}
