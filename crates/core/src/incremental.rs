//! Incremental estimator inputs: a mergeable, deterministic reservoir and
//! the updatable column substrate built on it.
//!
//! Every estimator in the workspace is a *plug-in* method: it is built
//! from a maintained sample, not from the base data. Batch ANALYZE pays
//! O(n) per refresh to re-draw that sample; this module keeps the sample
//! *live* instead, so absorbing a write costs O(log |reservoir|) and
//! re-snapshotting the estimator inputs costs
//! O(|reservoir| log |reservoir|) — independent of the relation size.
//!
//! Two pieces:
//!
//! * [`ReservoirSketch`] — a uniform fixed-capacity sample maintained as
//!   the top-k of deterministic per-row hash keys (the "A-Res" weighted
//!   reservoir with hashed priorities). Because a row's key depends only
//!   on `(seed, global row index)`, the retained set is a pure function
//!   of the offered rows: partitions sketching disjoint index ranges and
//!   merging produce *exactly* the sample a single sequential pass
//!   produces, for any partitioning — the same fixed-chunk determinism
//!   contract `selest-par` gives reductions. Merge is associative and
//!   commutative on the nose, not just within an error bound.
//! * [`IncrementalColumn`] — the updatable sibling of
//!   [`PreparedColumn`]: absorbs inserts and (tombstoned) deletes,
//!   tracks how stale its last snapshot is, and rebuilds a fresh
//!   `Arc<PreparedColumn>` on demand. When no updates have been
//!   absorbed, `snapshot()` returns the previous `Arc` unchanged, so
//!   downstream estimator builds are bit-identical to a from-scratch
//!   prepare over the same sample.
//!
//! The quantile-sketch half of the incremental substrate (`GkSketch`,
//! with summary merge and equi-depth boundary extraction) lives in
//! `selest-data`, which re-exports [`ReservoirSketch`] so the two sketch
//! types share a home in the public API.

use std::sync::Arc;

use crate::domain::Domain;
use crate::fault::EstimateError;
use crate::prepared::PreparedColumn;

/// One retained row: its hashed priority, its global stream index, and
/// the value itself. Ordering (and therefore reservoir membership) is by
/// `(key, index)` — a total order, since indexes are unique.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Slot {
    key: u64,
    index: u64,
    value: f64,
}

impl Slot {
    fn rank(&self) -> (u64, u64) {
        (self.key, self.index)
    }
}

/// SplitMix64 over the row's global index: the per-row priority depends
/// only on `(seed, index)`, never on arrival order or partitioning.
fn priority(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Serializable state of a [`ReservoirSketch`] (see
/// [`ReservoirSketch::to_parts`]); the durable store journals this.
#[derive(Debug, Clone, PartialEq)]
pub struct ReservoirParts {
    /// Maximum retained sample size.
    pub capacity: usize,
    /// Priority seed.
    pub seed: u64,
    /// Global index the next observed row will take.
    pub next_index: u64,
    /// Total rows offered (across merges).
    pub seen: u64,
    /// Retained `(key, index, value)` rows in unspecified order.
    pub slots: Vec<(u64, u64, f64)>,
}

/// A mergeable uniform reservoir: retains the `capacity` offered rows
/// with the largest deterministic hash priorities.
///
/// Determinism contract: the retained set is a pure function of
/// `(seed, {(index, value)})` — the set of offered rows with their global
/// indexes. Any partitioning of the stream into sketches built with
/// [`ReservoirSketch::with_offset`] at the partition's start index merges
/// (in any order or grouping) to exactly the sequential result.
///
/// # Examples
///
/// ```
/// use selest_core::ReservoirSketch;
///
/// let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
/// let mut whole = ReservoirSketch::new(16, 42);
/// for &v in &values {
///     whole.observe(v);
/// }
/// // Two partitions over fixed boundaries, merged in reverse order.
/// let mut left = ReservoirSketch::with_offset(16, 42, 0);
/// let mut right = ReservoirSketch::with_offset(16, 42, 600);
/// for &v in &values[..600] {
///     left.observe(v);
/// }
/// for &v in &values[600..] {
///     right.observe(v);
/// }
/// right.merge(&left);
/// assert_eq!(whole.sample(), right.sample());
/// ```
#[derive(Debug, Clone)]
pub struct ReservoirSketch {
    capacity: usize,
    seed: u64,
    next_index: u64,
    seen: u64,
    /// Min-heap by `(key, index)`: the root is the first row evicted.
    heap: Vec<Slot>,
}

impl PartialEq for ReservoirSketch {
    /// Equality is over the *retained set*, not the heap's internal
    /// layout — two reservoirs that kept the same rows are the same
    /// reservoir, however their heaps happen to be arranged.
    fn eq(&self, other: &Self) -> bool {
        self.to_parts() == other.to_parts()
    }
}

impl ReservoirSketch {
    /// An empty reservoir retaining at most `capacity` rows.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self::with_offset(capacity, seed, 0)
    }

    /// An empty reservoir whose first observed row takes global index
    /// `offset` — the partition entry point: give each partition the
    /// index where its chunk starts and merged results match the
    /// sequential pass exactly.
    pub fn with_offset(capacity: usize, seed: u64, offset: u64) -> Self {
        assert!(capacity > 0, "ReservoirSketch needs a positive capacity");
        ReservoirSketch {
            capacity,
            seed,
            next_index: offset,
            seen: 0,
            heap: Vec::with_capacity(capacity.min(4096)),
        }
    }

    /// Maximum retained sample size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Priority seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Rows currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total rows offered, across merges.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Global index the next [`ReservoirSketch::observe`] will assign.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Offer one row. Panics on non-finite values — the fallible
    /// surfaces upstream ([`IncrementalColumn::insert`]) reject those
    /// with a typed error before they reach the sketch.
    pub fn observe(&mut self, v: f64) {
        assert!(v.is_finite(), "ReservoirSketch cannot ingest {v}");
        let index = self.next_index;
        self.next_index += 1;
        self.seen += 1;
        let slot = Slot {
            key: priority(self.seed, index),
            index,
            value: v,
        };
        self.admit(slot);
    }

    fn admit(&mut self, slot: Slot) {
        if self.heap.len() < self.capacity {
            self.heap.push(slot);
            self.sift_up(self.heap.len() - 1);
        } else if slot.rank() > self.heap[0].rank() {
            self.heap[0] = slot;
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].rank() < self.heap[parent].rank() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() && self.heap[l].rank() < self.heap[smallest].rank() {
                smallest = l;
            }
            if r < self.heap.len() && self.heap[r].rank() < self.heap[smallest].rank() {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }

    /// Absorb another reservoir built with the same `(capacity, seed)`
    /// over a disjoint index range: the result retains the top-`capacity`
    /// rows of the union by priority — exactly what a single pass over
    /// the combined stream retains. Panics on a capacity or seed
    /// mismatch; the catalog's partition-merge path checks compatibility
    /// first and reports a typed error instead.
    pub fn merge(&mut self, other: &ReservoirSketch) {
        assert_eq!(
            self.capacity, other.capacity,
            "ReservoirSketch merge: capacity mismatch"
        );
        assert_eq!(
            self.seed, other.seed,
            "ReservoirSketch merge: seed mismatch"
        );
        for slot in &other.heap {
            self.admit(*slot);
        }
        self.seen += other.seen;
        self.next_index = self.next_index.max(other.next_index);
    }

    /// The retained sample in stream (index) order — the deterministic
    /// draw order downstream [`PreparedColumn`] builds consume.
    pub fn sample(&self) -> Vec<f64> {
        let mut slots = self.heap.clone();
        slots.sort_by_key(|s| s.index);
        slots.into_iter().map(|s| s.value).collect()
    }

    /// Serialize into plain parts (for the durable journal).
    pub fn to_parts(&self) -> ReservoirParts {
        let mut slots: Vec<(u64, u64, f64)> = self
            .heap
            .iter()
            .map(|s| (s.key, s.index, s.value))
            .collect();
        slots.sort_by_key(|&(_, index, _)| index);
        ReservoirParts {
            capacity: self.capacity,
            seed: self.seed,
            next_index: self.next_index,
            seen: self.seen,
            slots,
        }
    }

    /// Rebuild from serialized parts, validating state no live reservoir
    /// could have reached (zero capacity, overfull, non-finite values,
    /// priorities that do not match the seed).
    pub fn from_parts(parts: ReservoirParts) -> Result<Self, EstimateError> {
        if parts.capacity == 0 || parts.slots.len() > parts.capacity {
            return Err(EstimateError::CorruptEntry {
                path: None,
                line: 1,
                offset: 0,
                message: format!(
                    "reservoir holds {} rows against capacity {}",
                    parts.slots.len(),
                    parts.capacity
                ),
            });
        }
        let mut out = ReservoirSketch::with_offset(parts.capacity, parts.seed, 0);
        for &(key, index, value) in &parts.slots {
            if !value.is_finite() {
                return Err(EstimateError::NonFiniteUpdate { value });
            }
            if key != priority(parts.seed, index) {
                return Err(EstimateError::CorruptEntry {
                    path: None,
                    line: 1,
                    offset: 0,
                    message: format!("reservoir priority {key:#x} does not match seed/index"),
                });
            }
            out.admit(Slot { key, index, value });
        }
        out.next_index = parts.next_index;
        out.seen = parts.seen;
        Ok(out)
    }
}

/// Serializable state of an [`IncrementalColumn`] (see
/// [`IncrementalColumn::to_parts`]).
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalParts {
    /// Column domain.
    pub domain: Domain,
    /// Reservoir state.
    pub reservoir: ReservoirParts,
    /// Live rows (inserts minus tombstoned deletes).
    pub live_rows: u64,
    /// Total values absorbed (initial load plus inserts).
    pub inserted: u64,
    /// Tombstoned deletes.
    pub deleted: u64,
    /// Updates absorbed since the last snapshot rebuild.
    pub pending: u64,
}

/// What one update batch did (the incremental sibling of
/// [`crate::fault::SampleAudit`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateAudit {
    /// Inserts absorbed into the reservoir and counters.
    pub inserted: usize,
    /// Finite but out-of-domain inserts, counted but not retained (the
    /// declared domain is fixed until the next full ANALYZE, exactly as
    /// `sanitize_sample` drops out-of-domain evidence).
    pub out_of_domain: usize,
    /// Deletes tombstoned.
    pub deleted: usize,
}

/// The updatable sibling of [`PreparedColumn`].
///
/// A batch-prepared column is immutable by design; this wrapper keeps the
/// *inputs* of a prepared column live. Inserts are absorbed into a
/// [`ReservoirSketch`] in O(log |reservoir|); deletes are tombstoned
/// (counted, not removed — the reservoir stays a uniform sample of the
/// insert stream, and the staleness policy bounds how large the tombstone
/// debt may grow before a re-snapshot is forced). [`IncrementalColumn::
/// snapshot`] rebuilds an `Arc<PreparedColumn>` from the maintained
/// sample in O(|reservoir| log |reservoir|) — never O(n log n) — and
/// returns the previous `Arc` unchanged (bit-identical downstream
/// estimates, no allocation) when no updates have been absorbed.
#[derive(Debug, Clone)]
pub struct IncrementalColumn {
    domain: Domain,
    reservoir: ReservoirSketch,
    base: Arc<PreparedColumn>,
    live_rows: u64,
    inserted: u64,
    deleted: u64,
    pending: u64,
    rebuilds: u64,
}

impl IncrementalColumn {
    /// Seed the column from a full scan: one pass feeds the reservoir,
    /// then the initial snapshot is prepared from the retained sample.
    /// `values` are assumed sanitized (the catalog's ANALYZE path
    /// sanitizes first); a non-finite value still comes back as a typed
    /// error rather than a panic.
    pub fn from_values(
        values: &[f64],
        domain: Domain,
        capacity: usize,
        seed: u64,
    ) -> Result<Self, EstimateError> {
        if capacity == 0 || values.is_empty() {
            return Err(EstimateError::EmptySample);
        }
        if let Some(&bad) = values.iter().find(|v| !v.is_finite()) {
            return Err(EstimateError::NonFiniteUpdate { value: bad });
        }
        let mut reservoir = ReservoirSketch::new(capacity, seed);
        for &v in values {
            reservoir.observe(v);
        }
        let base = Arc::new(PreparedColumn::prepare(&reservoir.sample(), domain));
        Ok(IncrementalColumn {
            domain,
            reservoir,
            base,
            live_rows: values.len() as u64,
            inserted: values.len() as u64,
            deleted: 0,
            pending: 0,
            rebuilds: 0,
        })
    }

    /// The column domain (fixed until the next full ANALYZE).
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The maintained reservoir.
    pub fn reservoir(&self) -> &ReservoirSketch {
        &self.reservoir
    }

    /// Rows currently live (inserts minus tombstoned deletes).
    pub fn live_rows(&self) -> u64 {
        self.live_rows
    }

    /// Updates absorbed since the last snapshot rebuild.
    pub fn pending_updates(&self) -> u64 {
        self.pending
    }

    /// Tombstoned deletes.
    pub fn tombstones(&self) -> u64 {
        self.deleted
    }

    /// Tombstone debt: deletes as a fraction of all values ever
    /// absorbed. The staleness policy forces a re-snapshot before this
    /// bias can grow unbounded.
    pub fn tombstone_fraction(&self) -> f64 {
        self.deleted as f64 / self.inserted.max(1) as f64
    }

    /// Snapshot rebuilds performed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Whether updates have been absorbed since the last snapshot.
    pub fn is_dirty(&self) -> bool {
        self.pending > 0
    }

    /// Absorb one insert in O(log |reservoir|). Non-finite values are
    /// rejected with a typed error; finite values outside the declared
    /// domain are counted (see [`UpdateAudit::out_of_domain`]) but not
    /// retained, mirroring `sanitize_sample`.
    pub fn insert(&mut self, v: f64) -> Result<(), EstimateError> {
        if !v.is_finite() {
            return Err(EstimateError::NonFiniteUpdate { value: v });
        }
        if self.domain.contains(v) {
            self.reservoir.observe(v);
        }
        self.live_rows += 1;
        self.inserted += 1;
        self.pending += 1;
        Ok(())
    }

    /// Tombstone one delete: O(1). The reservoir is untouched — it stays
    /// a uniform sample of the insert stream, biased by at most the
    /// tombstone fraction, which the staleness policy caps.
    pub fn delete(&mut self, v: f64) -> Result<(), EstimateError> {
        if !v.is_finite() {
            return Err(EstimateError::NonFiniteUpdate { value: v });
        }
        self.live_rows = self.live_rows.saturating_sub(1);
        self.deleted += 1;
        self.pending += 1;
        Ok(())
    }

    /// Absorb a batch atomically: the batch is validated first, so a
    /// non-finite value anywhere rejects the whole batch with a typed
    /// error and leaves the column untouched.
    pub fn apply(
        &mut self,
        inserts: &[f64],
        deletes: &[f64],
    ) -> Result<UpdateAudit, EstimateError> {
        if let Some(&bad) = inserts
            .iter()
            .chain(deletes.iter())
            .find(|v| !v.is_finite())
        {
            return Err(EstimateError::NonFiniteUpdate { value: bad });
        }
        let mut audit = UpdateAudit::default();
        for &v in inserts {
            if !self.domain.contains(v) {
                audit.out_of_domain += 1;
            }
            self.insert(v)?;
            audit.inserted += 1;
        }
        for &v in deletes {
            self.delete(v)?;
            audit.deleted += 1;
        }
        Ok(audit)
    }

    /// The estimator-input snapshot. With zero pending updates this is
    /// the previous `Arc`, returned unchanged — downstream estimator
    /// builds see bit-identical inputs with no work done. Otherwise the
    /// prepared column is rebuilt from the maintained sample:
    /// O(|reservoir| log |reservoir|) for the sort, independent of the
    /// relation size.
    pub fn snapshot(&mut self) -> Arc<PreparedColumn> {
        if self.pending > 0 {
            self.base = Arc::new(PreparedColumn::prepare(
                &self.reservoir.sample(),
                self.domain,
            ));
            self.pending = 0;
            self.rebuilds += 1;
        }
        Arc::clone(&self.base)
    }

    /// The snapshot as of the last rebuild, without absorbing pending
    /// updates — what a reader sees while the column is dirty.
    pub fn last_snapshot(&self) -> Arc<PreparedColumn> {
        Arc::clone(&self.base)
    }

    /// Absorb a partition's column: reservoirs combine exactly (same
    /// top-k as a single pass), counters add, and the merged column is
    /// dirty until the next snapshot. Partitions must agree on domain,
    /// reservoir capacity, and seed; mismatches come back as typed
    /// errors.
    pub fn merge(&mut self, other: &IncrementalColumn) -> Result<(), EstimateError> {
        if self.domain != other.domain {
            return Err(EstimateError::InvalidDomain {
                lo: other.domain.lo(),
                hi: other.domain.hi(),
            });
        }
        if self.reservoir.capacity() != other.reservoir.capacity()
            || self.reservoir.seed() != other.reservoir.seed()
        {
            return Err(EstimateError::CorruptEntry {
                path: None,
                line: 1,
                offset: 0,
                message: "incremental merge: reservoir capacity/seed mismatch".to_owned(),
            });
        }
        self.reservoir.merge(&other.reservoir);
        self.live_rows += other.live_rows;
        self.inserted += other.inserted;
        self.deleted += other.deleted;
        // Everything the partition held is new to this side's snapshot.
        self.pending += (other.inserted + other.deleted).max(1);
        Ok(())
    }

    /// Serialize into plain parts (for the durable journal). The base
    /// snapshot is not serialized: it is a pure function of the
    /// reservoir, rebuilt on restore.
    pub fn to_parts(&self) -> IncrementalParts {
        IncrementalParts {
            domain: self.domain,
            reservoir: self.reservoir.to_parts(),
            live_rows: self.live_rows,
            inserted: self.inserted,
            deleted: self.deleted,
            pending: self.pending,
        }
    }

    /// Rebuild from serialized parts. The snapshot is re-prepared from
    /// the restored reservoir (deterministic, so two restores of the same
    /// parts are bit-identical); `pending` is preserved so the staleness
    /// policy still sees pre-crash update pressure.
    pub fn from_parts(parts: IncrementalParts) -> Result<Self, EstimateError> {
        let reservoir = ReservoirSketch::from_parts(parts.reservoir)?;
        if reservoir.is_empty() {
            return Err(EstimateError::EmptySample);
        }
        let base = Arc::new(PreparedColumn::prepare(&reservoir.sample(), parts.domain));
        Ok(IncrementalColumn {
            domain: parts.domain,
            reservoir,
            base,
            live_rows: parts.live_rows,
            inserted: parts.inserted,
            deleted: parts.deleted,
            pending: parts.pending,
            rebuilds: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 100.0 * ((i as f64 * 0.618_033_988_749).fract()))
            .collect()
    }

    #[test]
    fn reservoir_is_partition_independent() {
        let values = stream(5_000);
        let mut whole = ReservoirSketch::new(64, 7);
        for &v in &values {
            whole.observe(v);
        }
        for parts in [2usize, 3, 7] {
            let chunk = values.len().div_ceil(parts);
            let mut merged: Option<ReservoirSketch> = None;
            for (p, piece) in values.chunks(chunk).enumerate() {
                let mut r = ReservoirSketch::with_offset(64, 7, (p * chunk) as u64);
                for &v in piece {
                    r.observe(v);
                }
                match merged.as_mut() {
                    Some(m) => m.merge(&r),
                    None => merged = Some(r),
                }
            }
            let merged = merged.unwrap();
            assert_eq!(whole.sample(), merged.sample(), "parts={parts}");
            assert_eq!(whole.seen(), merged.seen());
        }
    }

    #[test]
    fn reservoir_is_uniform_enough() {
        // Top-k of iid hash priorities is a uniform sample: the retained
        // mean over a linear ramp should land near the stream mean.
        let values: Vec<f64> = (0..100_000).map(|i| i as f64 / 1_000.0).collect();
        let mut r = ReservoirSketch::new(2_000, 0x5e1ec7);
        for &v in &values {
            r.observe(v);
        }
        assert_eq!(r.len(), 2_000);
        let mean = r.sample().iter().sum::<f64>() / 2_000.0;
        assert!((mean - 50.0).abs() < 2.0, "sample mean {mean}");
    }

    #[test]
    fn reservoir_round_trips_through_parts() {
        let mut r = ReservoirSketch::new(32, 99);
        for &v in &stream(500) {
            r.observe(v);
        }
        let back = ReservoirSketch::from_parts(r.to_parts()).expect("valid parts");
        assert_eq!(r, back);
        // Tampered priorities are rejected.
        let mut parts = r.to_parts();
        parts.slots[0].0 ^= 1;
        assert!(ReservoirSketch::from_parts(parts).is_err());
    }

    #[test]
    fn zero_update_snapshot_is_the_same_arc() {
        let values = stream(2_000);
        let d = Domain::new(0.0, 100.0);
        let mut col = IncrementalColumn::from_values(&values, d, 128, 5).unwrap();
        let a = col.snapshot();
        let b = col.snapshot();
        assert!(Arc::ptr_eq(&a, &b), "clean snapshots must not rebuild");
        // And it is bit-identical to a from-scratch prepare of the sample.
        let fresh = PreparedColumn::prepare(&col.reservoir().sample(), d);
        assert_eq!(a.sorted(), fresh.sorted());
        assert_eq!(a.values(), fresh.values());
    }

    #[test]
    fn updates_dirty_then_snapshot_cleans() {
        let values = stream(1_000);
        let d = Domain::new(0.0, 100.0);
        let mut col = IncrementalColumn::from_values(&values, d, 64, 5).unwrap();
        assert!(!col.is_dirty());
        col.insert(50.0).unwrap();
        col.delete(1.0).unwrap();
        assert_eq!(col.pending_updates(), 2);
        assert_eq!(col.live_rows(), 1_000);
        assert_eq!(col.tombstones(), 1);
        let snap = col.snapshot();
        assert!(!col.is_dirty());
        assert_eq!(col.rebuilds(), 1);
        assert!(snap.len() <= 64);
    }

    #[test]
    fn non_finite_updates_are_typed_errors_and_atomic() {
        let d = Domain::new(0.0, 100.0);
        let mut col = IncrementalColumn::from_values(&stream(100), d, 32, 1).unwrap();
        let before = col.to_parts();
        assert!(matches!(
            col.insert(f64::NAN),
            Err(EstimateError::NonFiniteUpdate { value }) if value.is_nan()
        ));
        let err = col.apply(&[1.0, 2.0, f64::INFINITY], &[3.0]);
        assert!(matches!(err, Err(EstimateError::NonFiniteUpdate { .. })));
        assert_eq!(col.to_parts(), before, "failed batch must not mutate");
        let audit = col.apply(&[1.0, 500.0], &[2.0]).unwrap();
        assert_eq!(audit.inserted, 2);
        assert_eq!(audit.out_of_domain, 1);
        assert_eq!(audit.deleted, 1);
    }

    #[test]
    fn merge_combines_partitions_exactly() {
        let values = stream(3_000);
        let d = Domain::new(0.0, 100.0);
        let mut whole = IncrementalColumn::from_values(&values, d, 64, 3).unwrap();
        let mut left = IncrementalColumn::from_values(&values[..1_500], d, 64, 3).unwrap();
        // The right partition starts at the left's index offset.
        let mut right_res = ReservoirSketch::with_offset(64, 3, 1_500);
        for &v in &values[1_500..] {
            right_res.observe(v);
        }
        let right = IncrementalColumn::from_parts(IncrementalParts {
            domain: d,
            reservoir: right_res.to_parts(),
            live_rows: 1_500,
            inserted: 1_500,
            deleted: 0,
            pending: 0,
        })
        .unwrap();
        left.merge(&right).unwrap();
        assert_eq!(left.live_rows(), 3_000);
        assert!(left.is_dirty());
        assert_eq!(
            whole.snapshot().sorted(),
            left.snapshot().sorted(),
            "merged partitions must retain the sequential sample"
        );
    }

    #[test]
    fn incremental_column_round_trips_through_parts() {
        let d = Domain::new(0.0, 100.0);
        let mut col = IncrementalColumn::from_values(&stream(800), d, 48, 11).unwrap();
        col.apply(&[1.0, 2.0, 3.0], &[4.0]).unwrap();
        let parts = col.to_parts();
        let back = IncrementalColumn::from_parts(parts.clone()).unwrap();
        assert_eq!(back.to_parts(), parts);
        assert_eq!(back.pending_updates(), col.pending_updates());
        assert_eq!(back.live_rows(), col.live_rows());
    }
}
