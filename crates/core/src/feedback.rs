//! Query-feedback refinement (extension; the paper's future-work item \[1\],
//! after Chen & Roussopoulos, SIGMOD 1994).
//!
//! [`CorrectionGrid`] is the reusable core: the domain is divided into `m`
//! equal feedback buckets; whenever the true result of a query becomes
//! known, every overlapped bucket's correction factor moves toward the
//! observed ratio `true / estimated` by an exponentially weighted average.
//! Estimates decompose a query across buckets, apply each bucket's
//! correction to the base estimate of the overlapped piece, and sum. The
//! grid also exposes a [`CorrectionGrid::drift`] metric — how far the
//! corrections have moved from 1 — which the store's resilience layer uses
//! as a staleness health signal.
//!
//! [`FeedbackEstimator`] wraps any base [`SelectivityEstimator`] with a
//! grid. This keeps the base estimator's shape where no feedback exists and
//! bends it toward reality where the workload has revealed systematic bias.

use crate::domain::Domain;
use crate::fault::EstimateError;
use crate::query::RangeQuery;
use crate::traits::SelectivityEstimator;

/// Smallest base selectivity treated as informative when computing a
/// feedback ratio; below this the observation is ignored to avoid unbounded
/// corrections.
const MIN_BASE_SELECTIVITY: f64 = 1e-9;

/// Per-bucket multiplicative corrections over a domain — the learning core
/// shared by [`FeedbackEstimator`] and the store's resilient serving layer.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrectionGrid {
    domain: Domain,
    corrections: Vec<f64>,
    alpha: f64,
    observations: usize,
}

impl CorrectionGrid {
    /// A grid of `buckets` equal-width buckets over `domain`, learning rate
    /// `alpha` in `(0, 1]` (weight of the newest observation).
    pub fn new(domain: Domain, buckets: usize, alpha: f64) -> Self {
        assert!(buckets >= 1, "CorrectionGrid needs at least one bucket");
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "CorrectionGrid: alpha must be in (0, 1], got {alpha}"
        );
        CorrectionGrid {
            domain,
            corrections: vec![1.0; buckets],
            alpha,
            observations: 0,
        }
    }

    /// Rebuild a grid from persisted state (the durable store's feedback
    /// files) — the restore counterpart of reading back
    /// [`CorrectionGrid::corrections`] and [`CorrectionGrid::observations`].
    /// Rejects, with a typed error, state no live grid could have reached:
    /// an empty bucket vector, an out-of-range learning rate, or a
    /// non-finite/negative correction factor.
    pub fn from_parts(
        domain: Domain,
        corrections: Vec<f64>,
        alpha: f64,
        observations: usize,
    ) -> Result<Self, EstimateError> {
        if corrections.is_empty() {
            return Err(EstimateError::EmptySample);
        }
        if !alpha.is_finite() || alpha <= 0.0 || alpha > 1.0 {
            return Err(EstimateError::NonFiniteEstimate { value: alpha });
        }
        if let Some(&bad) = corrections.iter().find(|c| !c.is_finite() || **c < 0.0) {
            return Err(EstimateError::NonFiniteEstimate { value: bad });
        }
        Ok(CorrectionGrid {
            domain,
            corrections,
            alpha,
            observations,
        })
    }

    /// The domain the grid spans.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The learning rate (weight of the newest observation).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current correction factor of each bucket.
    pub fn corrections(&self) -> &[f64] {
        &self.corrections
    }

    /// Number of accepted observations.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// How far the workload has bent the corrections away from the base
    /// estimator: the largest `|c - 1|` over the buckets. Zero means the
    /// base estimator still matches observed truths; large values mean the
    /// stored statistics are stale and a re-ANALYZE is overdue.
    pub fn drift(&self) -> f64 {
        self.corrections
            .iter()
            .map(|c| (c - 1.0).abs())
            .fold(0.0, f64::max)
    }

    fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let w = self.domain.width() / self.corrections.len() as f64;
        let lo = self.domain.lo() + i as f64 * w;
        // Close the last bucket exactly at the domain boundary.
        let hi = if i + 1 == self.corrections.len() {
            self.domain.hi()
        } else {
            lo + w
        };
        (lo, hi)
    }

    /// Learn from one executed query: the base estimator said
    /// `base_estimate`, execution revealed `true_selectivity`. Rejects (with
    /// a typed error, never a panic) non-finite or out-of-range inputs —
    /// the serving path feeds this from execution counters and must not be
    /// crashable by a corrupted counter. Ignores observations whose base
    /// estimate is too small to form a meaningful ratio.
    pub fn try_observe(
        &mut self,
        q: &RangeQuery,
        base_estimate: f64,
        true_selectivity: f64,
    ) -> Result<(), EstimateError> {
        if !true_selectivity.is_finite() || !(0.0..=1.0).contains(&true_selectivity) {
            return Err(EstimateError::NonFiniteEstimate {
                value: true_selectivity,
            });
        }
        if !base_estimate.is_finite() {
            return Err(EstimateError::NonFiniteEstimate {
                value: base_estimate,
            });
        }
        if base_estimate < MIN_BASE_SELECTIVITY {
            return Ok(());
        }
        let ratio = true_selectivity / base_estimate;
        let m = self.corrections.len();
        for i in 0..m {
            let (lo, hi) = self.bucket_bounds(i);
            let overlap = (q.b().min(hi) - q.a().max(lo)).max(0.0);
            if overlap > 0.0 {
                // Weight the update by how much of the query lies in this
                // bucket, so wide queries spread their evidence thinly.
                let weight = self.alpha * (overlap / q.width().max(f64::MIN_POSITIVE)).min(1.0);
                self.corrections[i] = (1.0 - weight) * self.corrections[i] + weight * ratio;
            }
        }
        self.observations += 1;
        Ok(())
    }

    /// Corrected selectivity of `q`: decompose across buckets, scale the
    /// base estimate of each piece (provided by `base_piece`) by the
    /// bucket's correction, sum, and clamp to `[0, 1]`.
    pub fn corrected(&self, q: &RangeQuery, base_piece: impl Fn(&RangeQuery) -> f64) -> f64 {
        let mut total = 0.0;
        for i in 0..self.corrections.len() {
            let (lo, hi) = self.bucket_bounds(i);
            let a = q.a().max(lo);
            let b = q.b().min(hi);
            if b > a {
                let piece = RangeQuery::new(a, b);
                total += self.corrections[i] * base_piece(&piece);
            }
        }
        if total.is_finite() {
            total.clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

/// A selectivity estimator that refines a base estimator with query
/// feedback.
///
/// # Examples
///
/// ```
/// use selest_core::{Domain, FeedbackEstimator, RangeQuery, SelectivityEstimator,
///                   UniformEstimator};
///
/// // A uniform base over [0, 100] while the real data lives in [0, 50].
/// let base = UniformEstimator::new(Domain::new(0.0, 100.0));
/// let mut est = FeedbackEstimator::new(base, 10, 0.8);
/// let q = RangeQuery::new(10.0, 20.0);
/// for _ in 0..20 {
///     est.observe(&q, 0.2); // executed queries report the truth
/// }
/// assert!((est.selectivity(&q) - 0.2).abs() < 0.02);
/// ```
pub struct FeedbackEstimator<E> {
    base: E,
    grid: CorrectionGrid,
}

impl<E: SelectivityEstimator> FeedbackEstimator<E> {
    /// Wrap `base` with `buckets` feedback buckets and learning rate
    /// `alpha` in `(0, 1]` (weight of the newest observation).
    pub fn new(base: E, buckets: usize, alpha: f64) -> Self {
        let grid = CorrectionGrid::new(base.domain(), buckets, alpha);
        FeedbackEstimator { base, grid }
    }

    /// The wrapped base estimator.
    pub fn base(&self) -> &E {
        &self.base
    }

    /// Number of feedback observations applied so far.
    pub fn observations(&self) -> usize {
        self.grid.observations()
    }

    /// Current correction factor of each bucket.
    pub fn corrections(&self) -> &[f64] {
        self.grid.corrections()
    }

    /// Largest deviation of any bucket's correction from 1 — see
    /// [`CorrectionGrid::drift`].
    pub fn drift(&self) -> f64 {
        self.grid.drift()
    }

    /// Feed back the true selectivity of an executed query. Updates every
    /// bucket the query overlaps. Panics on an out-of-range truth; the
    /// panic-free variant is [`FeedbackEstimator::try_observe`].
    pub fn observe(&mut self, q: &RangeQuery, true_selectivity: f64) {
        assert!(
            true_selectivity.is_finite() && (0.0..=1.0).contains(&true_selectivity),
            "true selectivity out of [0,1]: {true_selectivity}"
        );
        let est = self.base.selectivity(q);
        let _ = self.grid.try_observe(q, est, true_selectivity);
    }

    /// Fallible feedback: rejects non-finite or out-of-range truths with a
    /// typed error instead of panicking.
    pub fn try_observe(
        &mut self,
        q: &RangeQuery,
        true_selectivity: f64,
    ) -> Result<(), EstimateError> {
        let est = self.base.selectivity(q);
        self.grid.try_observe(q, est, true_selectivity)
    }
}

impl<E: SelectivityEstimator> SelectivityEstimator for FeedbackEstimator<E> {
    fn selectivity(&self, q: &RangeQuery) -> f64 {
        self.grid.corrected(q, |piece| self.base.selectivity(piece))
    }

    fn domain(&self) -> Domain {
        self.base.domain()
    }

    fn name(&self) -> String {
        format!("Feedback({})", self.base.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformEstimator;

    fn skewed_truth(q: &RangeQuery) -> f64 {
        // True distribution: all mass uniform on [0, 50] of a [0, 100]
        // domain — the uniform base estimator is off by 2x inside and
        // infinitely off outside.
        let overlap = (q.b().min(50.0) - q.a().max(0.0)).max(0.0);
        overlap / 50.0
    }

    #[test]
    fn no_feedback_means_base_estimate() {
        let base = UniformEstimator::new(Domain::new(0.0, 100.0));
        let fb = FeedbackEstimator::new(base, 10, 0.5);
        let q = RangeQuery::new(10.0, 30.0);
        assert!((fb.selectivity(&q) - base.selectivity(&q)).abs() < 1e-12);
        assert_eq!(fb.observations(), 0);
        assert_eq!(fb.drift(), 0.0);
    }

    #[test]
    fn feedback_reduces_systematic_bias() {
        let base = UniformEstimator::new(Domain::new(0.0, 100.0));
        let mut fb = FeedbackEstimator::new(base, 10, 0.9);
        let q = RangeQuery::new(10.0, 20.0);
        let before = (fb.selectivity(&q) - skewed_truth(&q)).abs();
        for _ in 0..30 {
            let truth = skewed_truth(&q);
            fb.observe(&q, truth);
        }
        let after = (fb.selectivity(&q) - skewed_truth(&q)).abs();
        assert!(
            after < before / 5.0,
            "feedback should shrink the error: before={before}, after={after}"
        );
        assert_eq!(fb.observations(), 30);
        assert!(fb.drift() > 0.1, "bias correction must register as drift");
    }

    #[test]
    fn feedback_is_local_to_observed_buckets() {
        let base = UniformEstimator::new(Domain::new(0.0, 100.0));
        let mut fb = FeedbackEstimator::new(base, 10, 0.9);
        let observed = RangeQuery::new(0.0, 10.0); // bucket 0 only
        for _ in 0..20 {
            fb.observe(&observed, skewed_truth(&observed));
        }
        // A query over untouched buckets still returns the base estimate.
        let untouched = RangeQuery::new(70.0, 90.0);
        assert!((fb.selectivity(&untouched) - base.selectivity(&untouched)).abs() < 1e-12);
    }

    #[test]
    fn estimates_stay_in_unit_interval() {
        let base = UniformEstimator::new(Domain::new(0.0, 100.0));
        let mut fb = FeedbackEstimator::new(base, 4, 1.0);
        // Pathological feedback pushing corrections high.
        for _ in 0..10 {
            fb.observe(&RangeQuery::new(0.0, 25.0), 1.0);
        }
        let s = fb.selectivity(&RangeQuery::new(0.0, 100.0));
        assert!((0.0..=1.0).contains(&s), "selectivity {s} escaped [0,1]");
    }

    #[test]
    fn tiny_base_estimates_are_ignored() {
        let base = UniformEstimator::new(Domain::new(0.0, 100.0));
        let mut fb = FeedbackEstimator::new(base, 10, 0.9);
        // Zero-width query: base selectivity 0, must not poison corrections.
        fb.observe(&RangeQuery::new(5.0, 5.0), 0.1);
        assert!(fb.corrections().iter().all(|&c| (c - 1.0).abs() < 1e-12));
    }

    #[test]
    fn try_observe_rejects_garbage_without_panicking() {
        let base = UniformEstimator::new(Domain::new(0.0, 100.0));
        let mut fb = FeedbackEstimator::new(base, 10, 0.9);
        let q = RangeQuery::new(10.0, 20.0);
        assert!(fb.try_observe(&q, f64::NAN).is_err());
        assert!(fb.try_observe(&q, -0.1).is_err());
        assert!(fb.try_observe(&q, 1.5).is_err());
        assert!(fb.try_observe(&q, f64::INFINITY).is_err());
        assert_eq!(fb.observations(), 0, "rejected observations must not count");
        assert!(fb.try_observe(&q, 0.5).is_ok());
        assert_eq!(fb.observations(), 1);
    }

    #[test]
    fn grid_corrected_neutralizes_nonfinite_base_pieces() {
        let grid = CorrectionGrid::new(Domain::new(0.0, 100.0), 4, 0.5);
        let q = RangeQuery::new(0.0, 100.0);
        let s = grid.corrected(&q, |_| f64::NAN);
        assert_eq!(s, 0.0, "NaN base pieces must not escape the grid");
    }

    #[test]
    fn from_parts_round_trips_live_state_and_rejects_garbage() {
        let d = Domain::new(0.0, 100.0);
        let mut grid = CorrectionGrid::new(d, 4, 0.5);
        grid.try_observe(&RangeQuery::new(0.0, 50.0), 0.2, 0.6)
            .unwrap();
        let restored = CorrectionGrid::from_parts(
            grid.domain(),
            grid.corrections().to_vec(),
            grid.alpha(),
            grid.observations(),
        )
        .expect("valid state restores");
        assert_eq!(restored, grid);
        // A restored grid keeps learning exactly like the original.
        let q = RangeQuery::new(25.0, 75.0);
        let (mut a, mut b) = (grid.clone(), restored);
        a.try_observe(&q, 0.3, 0.9).unwrap();
        b.try_observe(&q, 0.3, 0.9).unwrap();
        assert_eq!(a, b);
        // States no live grid could reach are typed errors, not panics.
        assert!(CorrectionGrid::from_parts(d, vec![], 0.5, 0).is_err());
        assert!(CorrectionGrid::from_parts(d, vec![1.0], 0.0, 0).is_err());
        assert!(CorrectionGrid::from_parts(d, vec![1.0], 1.5, 0).is_err());
        assert!(CorrectionGrid::from_parts(d, vec![f64::NAN], 0.5, 0).is_err());
        assert!(CorrectionGrid::from_parts(d, vec![-0.1], 0.5, 0).is_err());
    }

    #[test]
    fn drift_tracks_correction_magnitude() {
        let mut grid = CorrectionGrid::new(Domain::new(0.0, 100.0), 2, 1.0);
        assert_eq!(grid.drift(), 0.0);
        // One observation with truth 3x the base estimate in bucket 0.
        grid.try_observe(&RangeQuery::new(0.0, 50.0), 0.2, 0.6)
            .unwrap();
        assert!(
            (grid.drift() - 2.0).abs() < 1e-12,
            "ratio 3 -> correction 3 -> drift 2"
        );
    }
}
