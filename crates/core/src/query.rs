//! Range queries `Q(a, b)`.

use crate::domain::Domain;

/// A range query `Q(a, b)` retrieving all records `r` with `a <= r.A <= b`
/// (Section 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeQuery {
    a: f64,
    b: f64,
}

impl RangeQuery {
    /// Build `Q(a, b)`. Panics unless `a <= b` and both are finite;
    /// serving paths use [`RangeQuery::try_new`] instead.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(
            a.is_finite() && b.is_finite() && a <= b,
            "RangeQuery requires finite a <= b, got ({a}, {b})"
        );
        RangeQuery { a, b }
    }

    /// Fallible constructor: the panic-free entry point of the fault-
    /// tolerant serving path.
    pub fn try_new(a: f64, b: f64) -> Result<Self, crate::fault::EstimateError> {
        if a.is_finite() && b.is_finite() && a <= b {
            Ok(RangeQuery { a, b })
        } else {
            Err(crate::fault::EstimateError::InvalidQuery { a, b })
        }
    }

    /// Build `Q(a, b)` without checking the invariants — the entry point
    /// for untrusted bounds (deserialized query logs, fault injection)
    /// that must flow *into* the serving path so it can reject them with
    /// a typed error instead of a constructor panic. Every fallible
    /// serving API ([`RangeQuery::validate`]-gated) sanitizes these;
    /// infallible estimators remain entitled to assume `new`'s invariants.
    pub fn unchecked(a: f64, b: f64) -> Self {
        RangeQuery { a, b }
    }

    /// Check the `finite a <= b` invariant, returning the typed
    /// [`EstimateError::InvalidQuery`](crate::fault::EstimateError::InvalidQuery)
    /// for degenerate bounds (NaN/±Inf endpoints, inverted ranges).
    pub fn validate(&self) -> Result<(), crate::fault::EstimateError> {
        if self.a.is_finite() && self.b.is_finite() && self.a <= self.b {
            Ok(())
        } else {
            Err(crate::fault::EstimateError::InvalidQuery {
                a: self.a,
                b: self.b,
            })
        }
    }

    /// A query of width `size_fraction * domain.width()` centered at
    /// `center`, clamped so it lies entirely inside the domain (the paper's
    /// query files reject positions that stick out of the domain; clamping
    /// the center achieves the same support, see `selest-data::queries`).
    pub fn centered(domain: &Domain, center: f64, size_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&size_fraction),
            "size fraction out of [0,1]: {size_fraction}"
        );
        let w = size_fraction * domain.width();
        let half = 0.5 * w;
        let c = center.clamp(domain.lo() + half, domain.hi() - half);
        RangeQuery::new(c - half, c + half)
    }

    /// Left endpoint `a`.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Right endpoint `b`.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Query width `b - a`.
    pub fn width(&self) -> f64 {
        self.b - self.a
    }

    /// Midpoint of the query range.
    pub fn center(&self) -> f64 {
        0.5 * (self.a + self.b)
    }

    /// Whether `x` satisfies the predicate `a <= x <= b`.
    pub fn matches(&self, x: f64) -> bool {
        x >= self.a && x <= self.b
    }

    /// Width of the query as a fraction of the domain width.
    pub fn size_fraction(&self, domain: &Domain) -> f64 {
        self.width() / domain.width()
    }
}

impl core::fmt::Display for RangeQuery {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Q({}, {})", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let q = RangeQuery::new(2.0, 6.0);
        assert_eq!(q.a(), 2.0);
        assert_eq!(q.b(), 6.0);
        assert_eq!(q.width(), 4.0);
        assert_eq!(q.center(), 4.0);
        assert!(q.matches(2.0) && q.matches(6.0) && q.matches(4.0));
        assert!(!q.matches(1.999) && !q.matches(6.001));
    }

    #[test]
    fn point_query_is_allowed() {
        let q = RangeQuery::new(3.0, 3.0);
        assert_eq!(q.width(), 0.0);
        assert!(q.matches(3.0));
    }

    #[test]
    fn centered_stays_inside_domain() {
        let d = Domain::new(0.0, 100.0);
        let q = RangeQuery::centered(&d, 1.0, 0.1); // would stick out left
        assert_eq!(q.a(), 0.0);
        assert_eq!(q.b(), 10.0);
        let q = RangeQuery::centered(&d, 99.0, 0.1); // would stick out right
        assert_eq!(q.b(), 100.0);
        let q = RangeQuery::centered(&d, 50.0, 0.02);
        assert!((q.a() - 49.0).abs() < 1e-12 && (q.b() - 51.0).abs() < 1e-12);
    }

    #[test]
    fn size_fraction_roundtrips() {
        let d = Domain::new(0.0, 1_000.0);
        let q = RangeQuery::centered(&d, 400.0, 0.05);
        assert!((q.size_fraction(&d) - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite a <= b")]
    fn rejects_inverted_range() {
        let _ = RangeQuery::new(5.0, 4.0);
    }

    #[test]
    fn validate_accepts_checked_and_rejects_degenerate_queries() {
        assert!(RangeQuery::new(1.0, 2.0).validate().is_ok());
        assert!(RangeQuery::unchecked(3.0, 3.0).validate().is_ok());
        for (a, b) in [
            (f64::NAN, 1.0),
            (0.0, f64::NAN),
            (f64::INFINITY, 1.0),
            (0.0, f64::NEG_INFINITY),
            (5.0, 4.0),
        ] {
            let q = RangeQuery::unchecked(a, b);
            match q.validate() {
                Err(crate::fault::EstimateError::InvalidQuery { a: ea, b: eb }) => {
                    assert_eq!(ea.to_bits(), a.to_bits());
                    assert_eq!(eb.to_bits(), b.to_bits());
                }
                other => panic!("({a}, {b}) should be invalid, got {other:?}"),
            }
        }
    }
}
