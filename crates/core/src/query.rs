//! Range queries `Q(a, b)`.

use crate::domain::Domain;

/// A range query `Q(a, b)` retrieving all records `r` with `a <= r.A <= b`
/// (Section 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeQuery {
    a: f64,
    b: f64,
}

impl RangeQuery {
    /// Build `Q(a, b)`. Panics unless `a <= b` and both are finite;
    /// serving paths use [`RangeQuery::try_new`] instead.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(
            a.is_finite() && b.is_finite() && a <= b,
            "RangeQuery requires finite a <= b, got ({a}, {b})"
        );
        RangeQuery { a, b }
    }

    /// Fallible constructor: the panic-free entry point of the fault-
    /// tolerant serving path.
    pub fn try_new(a: f64, b: f64) -> Result<Self, crate::fault::EstimateError> {
        if a.is_finite() && b.is_finite() && a <= b {
            Ok(RangeQuery { a, b })
        } else {
            Err(crate::fault::EstimateError::InvalidQuery { a, b })
        }
    }

    /// Build `Q(a, b)` without checking the invariants — the entry point
    /// for untrusted bounds (deserialized query logs, fault injection)
    /// that must flow *into* the serving path so it can reject them with
    /// a typed error instead of a constructor panic. Every fallible
    /// serving API ([`RangeQuery::validate`]-gated) sanitizes these;
    /// infallible estimators remain entitled to assume `new`'s invariants.
    pub fn unchecked(a: f64, b: f64) -> Self {
        RangeQuery { a, b }
    }

    /// Check the `finite a <= b` invariant, returning the typed
    /// [`EstimateError::InvalidQuery`](crate::fault::EstimateError::InvalidQuery)
    /// for degenerate bounds (NaN/±Inf endpoints, inverted ranges).
    pub fn validate(&self) -> Result<(), crate::fault::EstimateError> {
        if self.a.is_finite() && self.b.is_finite() && self.a <= self.b {
            Ok(())
        } else {
            Err(crate::fault::EstimateError::InvalidQuery {
                a: self.a,
                b: self.b,
            })
        }
    }

    /// A query of width `size_fraction * domain.width()` centered at
    /// `center`, clamped so it lies entirely inside the domain (the paper's
    /// query files reject positions that stick out of the domain; clamping
    /// the center achieves the same support, see `selest-data::queries`).
    pub fn centered(domain: &Domain, center: f64, size_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&size_fraction),
            "size fraction out of [0,1]: {size_fraction}"
        );
        let w = size_fraction * domain.width();
        let half = 0.5 * w;
        let c = center.clamp(domain.lo() + half, domain.hi() - half);
        RangeQuery::new(c - half, c + half)
    }

    /// Left endpoint `a`.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Right endpoint `b`.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Query width `b - a`.
    pub fn width(&self) -> f64 {
        self.b - self.a
    }

    /// Midpoint of the query range.
    pub fn center(&self) -> f64 {
        0.5 * (self.a + self.b)
    }

    /// Whether `x` satisfies the predicate `a <= x <= b`.
    pub fn matches(&self, x: f64) -> bool {
        x >= self.a && x <= self.b
    }

    /// Width of the query as a fraction of the domain width.
    pub fn size_fraction(&self, domain: &Domain) -> f64 {
        self.width() / domain.width()
    }

    /// The exact bit patterns of the two bounds, `(a.to_bits(),
    /// b.to_bits())`.
    ///
    /// This is the *identity* of the query for caching purposes: two
    /// queries with equal bounds bits are the same query down to the last
    /// ulp, so an estimate computed for one is — by the determinism
    /// contract every estimator in the workspace obeys — bit-identical to
    /// the estimate the other would receive. A cache that tags entries
    /// with these bits (plus the snapshot generation and column identity)
    /// can therefore never serve an approximate answer; see
    /// [`RangeQuery::quantized_key`] for the companion *placement* hint.
    pub fn bounds_bits(&self) -> (u64, u64) {
        (self.a.to_bits(), self.b.to_bits())
    }

    /// Quantized cache key: both bounds mapped onto a `2^grid_bits`-cell
    /// grid over `domain` and packed into one `u64` (`a`-cell in the high
    /// half, `b`-cell in the low half). `grid_bits` must be in `1..=32`.
    ///
    /// The key is a **placement hint only** — it decides which slot of a
    /// fixed-size direct-mapped estimate cache a query hashes to, so
    /// near-identical ranges contend for the same slot instead of
    /// spraying across the table. It is deliberately lossy; correctness
    /// never depends on it. The error-free guarantee of the serving cache
    /// comes from comparing [`RangeQuery::bounds_bits`] exactly on every
    /// probe: a quantization collision costs a cache miss (or an
    /// eviction), never a wrong answer.
    ///
    /// Bounds outside the domain clamp to the edge cells, so the key is
    /// total over all validated queries. Pure IEEE-754 arithmetic on
    /// fixed inputs: the key for a given `(query, domain, grid_bits)` is
    /// identical across runs, worker counts, and platforms.
    pub fn quantized_key(&self, domain: &Domain, grid_bits: u32) -> u64 {
        assert!(
            (1..=32).contains(&grid_bits),
            "quantized_key needs 1..=32 grid bits, got {grid_bits}"
        );
        let cells = (1u64 << grid_bits) as f64;
        let w = domain.width();
        let cell = |x: f64| -> u64 {
            if w <= 0.0 {
                return 0;
            }
            let rel = ((x - domain.lo()) / w).clamp(0.0, 1.0);
            ((rel * cells) as u64).min((1u64 << grid_bits) - 1)
        };
        (cell(self.a) << grid_bits) | cell(self.b)
    }
}

impl core::fmt::Display for RangeQuery {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Q({}, {})", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let q = RangeQuery::new(2.0, 6.0);
        assert_eq!(q.a(), 2.0);
        assert_eq!(q.b(), 6.0);
        assert_eq!(q.width(), 4.0);
        assert_eq!(q.center(), 4.0);
        assert!(q.matches(2.0) && q.matches(6.0) && q.matches(4.0));
        assert!(!q.matches(1.999) && !q.matches(6.001));
    }

    #[test]
    fn point_query_is_allowed() {
        let q = RangeQuery::new(3.0, 3.0);
        assert_eq!(q.width(), 0.0);
        assert!(q.matches(3.0));
    }

    #[test]
    fn centered_stays_inside_domain() {
        let d = Domain::new(0.0, 100.0);
        let q = RangeQuery::centered(&d, 1.0, 0.1); // would stick out left
        assert_eq!(q.a(), 0.0);
        assert_eq!(q.b(), 10.0);
        let q = RangeQuery::centered(&d, 99.0, 0.1); // would stick out right
        assert_eq!(q.b(), 100.0);
        let q = RangeQuery::centered(&d, 50.0, 0.02);
        assert!((q.a() - 49.0).abs() < 1e-12 && (q.b() - 51.0).abs() < 1e-12);
    }

    #[test]
    fn size_fraction_roundtrips() {
        let d = Domain::new(0.0, 1_000.0);
        let q = RangeQuery::centered(&d, 400.0, 0.05);
        assert!((q.size_fraction(&d) - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite a <= b")]
    fn rejects_inverted_range() {
        let _ = RangeQuery::new(5.0, 4.0);
    }

    #[test]
    fn quantized_key_buckets_and_bounds_bits_identify() {
        let d = Domain::new(0.0, 100.0);
        let q = RangeQuery::new(10.0, 30.0);
        // Identity is exact: equal queries share bounds bits, and a 1-ulp
        // perturbation changes them.
        assert_eq!(q.bounds_bits(), RangeQuery::new(10.0, 30.0).bounds_bits());
        let nudged = RangeQuery::new(f64::from_bits(10.0f64.to_bits() + 1), 30.0);
        assert_ne!(q.bounds_bits(), nudged.bounds_bits());
        // The placement key is stable for equal queries and coarse for
        // nearby ones: the 1-ulp nudge lands in the same grid cell.
        for bits in [1, 8, 16, 32] {
            assert_eq!(
                q.quantized_key(&d, bits),
                RangeQuery::new(10.0, 30.0).quantized_key(&d, bits)
            );
            assert_eq!(q.quantized_key(&d, bits), nudged.quantized_key(&d, bits));
        }
        // Distinct ranges separate once the grid is fine enough.
        let far = RangeQuery::new(60.0, 90.0);
        assert_ne!(q.quantized_key(&d, 8), far.quantized_key(&d, 8));
        // Cells stay inside the packed halves.
        let edge = RangeQuery::new(100.0, 100.0);
        let k = edge.quantized_key(&d, 16);
        assert_eq!(k >> 16, 0xFFFF);
        assert_eq!(k & 0xFFFF, 0xFFFF);
        // Out-of-domain bounds clamp instead of overflowing the grid.
        let outside = RangeQuery::new(-50.0, 250.0);
        let k = outside.quantized_key(&d, 8);
        assert_eq!(k >> 8, 0);
        assert_eq!(k & 0xFF, 0xFF);
    }

    #[test]
    #[should_panic(expected = "1..=32 grid bits")]
    fn quantized_key_rejects_oversized_grids() {
        let _ = RangeQuery::new(0.0, 1.0).quantized_key(&Domain::unit(), 33);
    }

    #[test]
    fn validate_accepts_checked_and_rejects_degenerate_queries() {
        assert!(RangeQuery::new(1.0, 2.0).validate().is_ok());
        assert!(RangeQuery::unchecked(3.0, 3.0).validate().is_ok());
        for (a, b) in [
            (f64::NAN, 1.0),
            (0.0, f64::NAN),
            (f64::INFINITY, 1.0),
            (0.0, f64::NEG_INFINITY),
            (5.0, 4.0),
        ] {
            let q = RangeQuery::unchecked(a, b);
            match q.validate() {
                Err(crate::fault::EstimateError::InvalidQuery { a: ea, b: eb }) => {
                    assert_eq!(ea.to_bits(), a.to_bits());
                    assert_eq!(eb.to_bits(), b.to_bits());
                }
                other => panic!("({a}, {b}) should be invalid, got {other:?}"),
            }
        }
    }
}
