//! The estimator traits shared by every method in the workspace.

use crate::domain::Domain;
use crate::fault::{catch_fault, EstimateError, FaultStage};
use crate::query::RangeQuery;
use crate::scratch::BatchScratch;

/// One query through the fault-isolated path: validate, catch panics,
/// reject non-finite answers. Shared by the `try_*` default methods so the
/// Vec-returning and caller-provided-output variants cannot drift apart.
fn try_single<E: SelectivityEstimator + ?Sized>(
    est: &E,
    q: &RangeQuery,
) -> Result<f64, EstimateError> {
    q.validate()?;
    let v = catch_fault(
        FaultStage::Estimate,
        std::panic::AssertUnwindSafe(|| est.selectivity(q)),
    )?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(EstimateError::NonFiniteEstimate { value: v })
    }
}

/// An estimator of the distribution selectivity `sigma(a, b)` of range
/// queries (equation (2) of the paper).
///
/// Implementations return probabilities in `[0, 1]`; the estimated *instance*
/// selectivity (result count) is obtained via
/// [`SelectivityEstimator::estimate_count`].
pub trait SelectivityEstimator {
    /// Estimated probability that a record falls in `[q.a(), q.b()]`.
    fn selectivity(&self, q: &RangeQuery) -> f64;

    /// Estimated selectivities for a whole batch of queries, in input
    /// order.
    ///
    /// The default simply loops over [`SelectivityEstimator::selectivity`];
    /// estimators whose evaluation cost can be amortized across a batch
    /// (e.g. the sorted-sample kernel estimator's merge scan) override
    /// this. Overrides MUST return bit-identical values to the per-query
    /// path — batch evaluation is an execution strategy, never a different
    /// estimator.
    fn selectivity_batch(&self, queries: &[RangeQuery]) -> Vec<f64> {
        queries.iter().map(|q| self.selectivity(q)).collect()
    }

    /// Fault-isolated batch estimation: one `Result` per query, in input
    /// order. Where [`SelectivityEstimator::selectivity_batch`] lets one
    /// poisoned query (or one panicking evaluation) take down the whole
    /// batch, this degrades per query: degenerate bounds come back as
    /// [`EstimateError::InvalidQuery`], a panicking evaluation as
    /// [`EstimateError::Panicked`], a NaN/±Inf answer as
    /// [`EstimateError::NonFiniteEstimate`] — and every other slot holds
    /// exactly the value the infallible path would have produced.
    ///
    /// Overrides (e.g. the kernel merge scan) MUST keep successful slots
    /// bit-identical to the per-query path, like `selectivity_batch`.
    fn try_selectivity_batch(&self, queries: &[RangeQuery]) -> Vec<Result<f64, EstimateError>> {
        queries.iter().map(|q| try_single(self, q)).collect()
    }

    /// Allocation-free batch estimation: write the estimates for `queries`
    /// into the caller-provided `out` slice (which must have exactly
    /// `queries.len()` elements), using `scratch` for any working buffers.
    ///
    /// Semantically identical to [`SelectivityEstimator::selectivity_batch`]
    /// — same values, same bits — but after the first call on a given
    /// estimator type the warm `scratch` makes the call perform **zero
    /// heap allocations**. The default ignores `scratch` and loops over
    /// [`SelectivityEstimator::selectivity`]; estimators that override
    /// `selectivity_batch` should override this with the same engine so
    /// both entry points share one implementation.
    fn selectivity_batch_into(
        &self,
        queries: &[RangeQuery],
        scratch: &mut BatchScratch,
        out: &mut [f64],
    ) {
        assert_eq!(
            queries.len(),
            out.len(),
            "selectivity_batch_into needs one output slot per query"
        );
        let _ = scratch;
        for (slot, q) in out.iter_mut().zip(queries) {
            *slot = self.selectivity(q);
        }
    }

    /// Fault-isolated counterpart of
    /// [`SelectivityEstimator::selectivity_batch_into`]: `out` is cleared
    /// and refilled with one `Result` per query, in input order, reusing
    /// `out`'s existing capacity (error values may still allocate — errors
    /// are the cold path). Same per-slot semantics as
    /// [`SelectivityEstimator::try_selectivity_batch`].
    fn try_selectivity_batch_into(
        &self,
        queries: &[RangeQuery],
        scratch: &mut BatchScratch,
        out: &mut Vec<Result<f64, EstimateError>>,
    ) {
        let _ = scratch;
        out.clear();
        out.extend(queries.iter().map(|q| try_single(self, q)));
    }

    /// The attribute domain this estimator was built over.
    fn domain(&self) -> Domain;

    /// Short human-readable method name used in experiment output
    /// (e.g. `"EWH"`, `"Kernel(BK,DPI2)"`).
    fn name(&self) -> String;

    /// Estimated result count for a relation instance with `n_records`
    /// tuples: `N * sigma(a, b)`.
    fn estimate_count(&self, q: &RangeQuery, n_records: usize) -> f64 {
        self.selectivity(q) * n_records as f64
    }
}

/// An estimator of the probability density function `f` underlying the
/// attribute. Not every selectivity estimator exposes a density (pure
/// sampling does not); every density estimator induces a selectivity
/// estimator by integration.
pub trait DensityEstimator {
    /// Estimated density at `x`.
    fn density(&self, x: f64) -> f64;

    /// The attribute domain this estimator was built over.
    fn domain(&self) -> Domain;

    /// Evaluate the density on an even grid of `n_points >= 2` spanning the
    /// domain; used for plotting and for the MISE quadrature.
    fn density_grid(&self, n_points: usize) -> Vec<(f64, f64)> {
        assert!(n_points >= 2, "density_grid needs at least two points");
        let d = self.domain();
        let step = d.width() / (n_points - 1) as f64;
        (0..n_points)
            .map(|i| {
                let x = d.lo() + i as f64 * step;
                (x, self.density(x))
            })
            .collect()
    }
}

/// The blanket impls forward every batch entry point, so wrapping an
/// estimator in `&`/`Box` never silently falls back to the per-query
/// defaults (losing an override's amortization or scratch reuse).
macro_rules! forward_selectivity_estimator {
    () => {
        fn selectivity(&self, q: &RangeQuery) -> f64 {
            (**self).selectivity(q)
        }
        fn selectivity_batch(&self, queries: &[RangeQuery]) -> Vec<f64> {
            (**self).selectivity_batch(queries)
        }
        fn try_selectivity_batch(&self, queries: &[RangeQuery]) -> Vec<Result<f64, EstimateError>> {
            (**self).try_selectivity_batch(queries)
        }
        fn selectivity_batch_into(
            &self,
            queries: &[RangeQuery],
            scratch: &mut BatchScratch,
            out: &mut [f64],
        ) {
            (**self).selectivity_batch_into(queries, scratch, out)
        }
        fn try_selectivity_batch_into(
            &self,
            queries: &[RangeQuery],
            scratch: &mut BatchScratch,
            out: &mut Vec<Result<f64, EstimateError>>,
        ) {
            (**self).try_selectivity_batch_into(queries, scratch, out)
        }
        fn domain(&self) -> Domain {
            (**self).domain()
        }
        fn name(&self) -> String {
            (**self).name()
        }
    };
}

impl<T: SelectivityEstimator + ?Sized> SelectivityEstimator for &T {
    forward_selectivity_estimator!();
}

impl<T: SelectivityEstimator + ?Sized> SelectivityEstimator for Box<T> {
    forward_selectivity_estimator!();
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Half(Domain);
    impl SelectivityEstimator for Half {
        fn selectivity(&self, _q: &RangeQuery) -> f64 {
            0.5
        }
        fn domain(&self) -> Domain {
            self.0
        }
        fn name(&self) -> String {
            "Half".into()
        }
    }

    #[test]
    fn estimate_count_scales_by_relation_size() {
        let e = Half(Domain::unit());
        let q = RangeQuery::new(0.0, 0.5);
        assert_eq!(e.estimate_count(&q, 1_000), 500.0);
        assert_eq!(e.estimate_count(&q, 0), 0.0);
    }

    #[test]
    fn default_batch_matches_per_query_loop() {
        let e = Half(Domain::unit());
        let queries: Vec<RangeQuery> = (0..5)
            .map(|i| RangeQuery::new(0.1 * i as f64, 0.1 * i as f64 + 0.05))
            .collect();
        let batch = e.selectivity_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, s) in queries.iter().zip(&batch) {
            assert_eq!(s.to_bits(), e.selectivity(q).to_bits());
        }
        // Blanket impls forward the batch path too.
        let boxed: Box<dyn SelectivityEstimator> = Box::new(Half(Domain::unit()));
        assert_eq!(boxed.selectivity_batch(&queries), batch);
        let as_ref: &dyn SelectivityEstimator = &e;
        assert_eq!(as_ref.selectivity_batch(&queries), batch);
    }

    #[test]
    fn blanket_impls_delegate() {
        let e = Half(Domain::unit());
        let q = RangeQuery::new(0.1, 0.2);
        let as_ref: &dyn SelectivityEstimator = &e;
        assert_eq!(as_ref.selectivity(&q), 0.5);
        let boxed: Box<dyn SelectivityEstimator> = Box::new(Half(Domain::unit()));
        assert_eq!(boxed.selectivity(&q), 0.5);
        assert_eq!(boxed.name(), "Half");
        assert_eq!(boxed.estimate_count(&q, 10), 5.0);
    }

    #[test]
    fn into_variants_match_vec_variants() {
        let e = Half(Domain::unit());
        let queries: Vec<RangeQuery> = (0..7)
            .map(|i| RangeQuery::new(0.1 * i as f64, 0.1 * i as f64 + 0.05))
            .collect();
        let mut scratch = BatchScratch::new();
        let mut out = vec![f64::NAN; queries.len()];
        e.selectivity_batch_into(&queries, &mut scratch, &mut out);
        assert_eq!(out, e.selectivity_batch(&queries));
        let mut tried = Vec::new();
        e.try_selectivity_batch_into(&queries, &mut scratch, &mut tried);
        let direct = e.try_selectivity_batch(&queries);
        assert_eq!(tried.len(), direct.len());
        for (a, b) in tried.iter().zip(&direct) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
        // Blanket impls forward the _into paths too.
        let boxed: Box<dyn SelectivityEstimator> = Box::new(Half(Domain::unit()));
        let mut out2 = vec![0.0; queries.len()];
        boxed.selectivity_batch_into(&queries, &mut scratch, &mut out2);
        assert_eq!(out2, out);
    }

    #[test]
    #[should_panic(expected = "one output slot per query")]
    fn into_requires_matching_output_length() {
        let e = Half(Domain::unit());
        let queries = [RangeQuery::new(0.1, 0.2)];
        let mut out = [0.0; 2];
        e.selectivity_batch_into(&queries, &mut BatchScratch::new(), &mut out);
    }

    struct Tri;
    impl DensityEstimator for Tri {
        fn density(&self, x: f64) -> f64 {
            (1.0 - x.abs()).max(0.0)
        }
        fn domain(&self) -> Domain {
            Domain::new(-1.0, 1.0)
        }
    }

    #[test]
    fn density_grid_spans_domain() {
        let g = Tri.density_grid(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0].0, -1.0);
        assert_eq!(g[4].0, 1.0);
        assert_eq!(g[2], (0.0, 1.0));
    }
}
