//! Error metrics (Section 2 and Section 5.1.2 of the paper).
//!
//! The paper evaluates estimators with the *mean relative error*
//!
//! ```text
//! MRE(D, s) = 1/|F_D(s)| * sum_{Q in F_D(s)} | |Q| - sigma_hat(Q) * |D| | / |Q|
//! ```
//!
//! where `|Q|` is the true result count of the query on data file `D` and
//! `sigma_hat(Q) * |D|` is the estimated count. [`ErrorStats`] accumulates
//! this (plus the mean absolute error the paper also examined) over a query
//! file. [`integrated_squared_error`] computes the ISE of a density estimate
//! against a known true density — averaging it over independent sample sets
//! yields the (empirical) MISE of equation (3).

use crate::traits::DensityEstimator;
use selest_math::{kahan_sum, simpson};

/// Absolute count error `| true - estimated |`.
pub fn absolute_error(true_count: f64, estimated_count: f64) -> f64 {
    (true_count - estimated_count).abs()
}

/// Relative count error `| true - estimated | / true` (the summand of the
/// paper's MRE). Panics if `true_count <= 0`; callers must filter empty
/// queries first (the paper's workloads avoid them by placing queries
/// according to the data distribution).
pub fn relative_error(true_count: f64, estimated_count: f64) -> f64 {
    assert!(
        true_count > 0.0,
        "relative_error: true count must be positive, got {true_count}"
    );
    (true_count - estimated_count).abs() / true_count
}

/// Accumulator for query-file error statistics.
///
/// Queries whose true result count is zero cannot contribute a relative
/// error; they are tallied in [`ErrorStats::skipped_zero`] and excluded from
/// every mean, matching the paper's workload design which avoids them.
/// Estimates that are NaN or ±Inf would poison every mean; they are tallied
/// in [`ErrorStats::skipped_nonfinite`] and likewise excluded — a failing
/// estimator shows up as an explicit counter, not a silently-NaN MRE.
#[derive(Debug, Clone, Default)]
pub struct ErrorStats {
    abs_errors: Vec<f64>,
    rel_errors: Vec<f64>,
    skipped_zero: usize,
    skipped_nonfinite: usize,
}

impl ErrorStats {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one query's true and estimated result counts. A non-finite
    /// estimate (or a non-finite/negative truth) is tallied into
    /// [`ErrorStats::skipped_nonfinite`] instead of entering the means —
    /// in release builds a single NaN would otherwise poison every
    /// aggregate this accumulator reports.
    pub fn record(&mut self, true_count: f64, estimated_count: f64) {
        if !estimated_count.is_finite() || !true_count.is_finite() || true_count < 0.0 {
            self.skipped_nonfinite += 1;
        } else if true_count > 0.0 {
            self.abs_errors
                .push(absolute_error(true_count, estimated_count));
            self.rel_errors
                .push(relative_error(true_count, estimated_count));
        } else {
            self.skipped_zero += 1;
        }
    }

    /// Number of queries that contributed to the means.
    pub fn count(&self) -> usize {
        self.rel_errors.len()
    }

    /// Number of zero-result queries that were skipped.
    pub fn skipped_zero(&self) -> usize {
        self.skipped_zero
    }

    /// Number of recordings skipped because the estimate (or truth) was
    /// non-finite — each one is an estimator failure the caller should
    /// surface, not average away.
    pub fn skipped_nonfinite(&self) -> usize {
        self.skipped_nonfinite
    }

    /// Mean relative error (the paper's MRE). Panics if no query was
    /// recorded.
    pub fn mean_relative_error(&self) -> f64 {
        assert!(!self.rel_errors.is_empty(), "MRE of empty ErrorStats");
        kahan_sum(self.rel_errors.iter().copied()) / self.rel_errors.len() as f64
    }

    /// Mean absolute count error.
    pub fn mean_absolute_error(&self) -> f64 {
        assert!(!self.abs_errors.is_empty(), "MAE of empty ErrorStats");
        kahan_sum(self.abs_errors.iter().copied()) / self.abs_errors.len() as f64
    }

    /// Largest relative error observed.
    pub fn max_relative_error(&self) -> f64 {
        self.rel_errors.iter().copied().fold(0.0, f64::max)
    }

    /// Root mean squared relative error.
    pub fn rms_relative_error(&self) -> f64 {
        assert!(!self.rel_errors.is_empty(), "RMS of empty ErrorStats");
        (kahan_sum(self.rel_errors.iter().map(|e| e * e)) / self.rel_errors.len() as f64).sqrt()
    }

    /// The `q`-quantile of the per-query relative errors (type-7
    /// interpolation) — tail behavior that the MRE hides; an optimizer
    /// mostly suffers from the p95/p99 misestimates.
    pub fn relative_error_quantile(&self, q: f64) -> f64 {
        assert!(!self.rel_errors.is_empty(), "quantile of empty ErrorStats");
        let mut sorted = self.rel_errors.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
        selest_math::quantile(&sorted, q)
    }

    /// Merge another accumulator into this one, appending its recordings
    /// after this one's. Order is preserved, so the Kahan-compensated
    /// means stay bit-identical to a single sequential accumulation.
    pub fn merge(&mut self, other: &ErrorStats) {
        self.abs_errors.extend_from_slice(&other.abs_errors);
        self.rel_errors.extend_from_slice(&other.rel_errors);
        self.skipped_zero += other.skipped_zero;
        self.skipped_nonfinite += other.skipped_nonfinite;
    }

    /// Deterministic reduction for chunked (parallel) evaluation: merge
    /// per-chunk accumulators *in chunk order*.
    ///
    /// As long as the chunks partition the query file at fixed boundaries
    /// (see `selest-par`), the merged per-query error sequence — and with
    /// it every Kahan-summed mean, RMS, and quantile — is bit-for-bit the
    /// sequence a single-threaded [`ErrorStats::record`] loop would have
    /// produced, regardless of how many workers computed the chunks.
    pub fn from_ordered_chunks<I: IntoIterator<Item = ErrorStats>>(chunks: I) -> ErrorStats {
        let mut total = ErrorStats::new();
        for chunk in chunks {
            total.merge(&chunk);
        }
        total
    }
}

/// Integrated squared error `Int_D (f_hat(x) - f(x))^2 dx` of a density
/// estimate against the true density `f`, by composite Simpson quadrature
/// with `panels` panels over the estimator's domain.
///
/// The MISE of equation (3) is the expectation of this quantity over sample
/// sets; `selest-experiments` averages it over repeated draws.
pub fn integrated_squared_error<E, F>(estimator: &E, truth: F, panels: usize) -> f64
where
    E: DensityEstimator + ?Sized,
    F: Fn(f64) -> f64,
{
    let d = estimator.domain();
    simpson(
        |x| {
            let diff = estimator.density(x) - truth(x);
            diff * diff
        },
        d.lo(),
        d.hi(),
        panels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    #[test]
    fn absolute_and_relative_error_basics() {
        assert_eq!(absolute_error(100.0, 80.0), 20.0);
        assert_eq!(absolute_error(80.0, 100.0), 20.0);
        assert!((relative_error(100.0, 80.0) - 0.2).abs() < 1e-15);
        assert!((relative_error(100.0, 130.0) - 0.3).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "true count must be positive")]
    fn relative_error_rejects_zero_truth() {
        let _ = relative_error(0.0, 5.0);
    }

    #[test]
    fn stats_accumulate_and_average() {
        let mut s = ErrorStats::new();
        s.record(100.0, 90.0); // rel 0.1, abs 10
        s.record(200.0, 240.0); // rel 0.2, abs 40
        s.record(0.0, 3.0); // skipped
        assert_eq!(s.count(), 2);
        assert_eq!(s.skipped_zero(), 1);
        assert!((s.mean_relative_error() - 0.15).abs() < 1e-15);
        assert!((s.mean_absolute_error() - 25.0).abs() < 1e-15);
        assert!((s.max_relative_error() - 0.2).abs() < 1e-15);
        let rms = ((0.01f64 + 0.04) / 2.0).sqrt();
        assert!((s.rms_relative_error() - rms).abs() < 1e-15);
        assert!((s.relative_error_quantile(0.0) - 0.1).abs() < 1e-15);
        assert!((s.relative_error_quantile(1.0) - 0.2).abs() < 1e-15);
        assert!((s.relative_error_quantile(0.5) - 0.15).abs() < 1e-15);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = ErrorStats::new();
        a.record(10.0, 11.0);
        let mut b = ErrorStats::new();
        b.record(10.0, 13.0);
        b.record(0.0, 1.0);
        b.record(10.0, f64::NAN);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.skipped_zero(), 1);
        assert_eq!(a.skipped_nonfinite(), 1);
        assert!((a.mean_relative_error() - 0.2).abs() < 1e-15);
    }

    #[test]
    fn ordered_chunk_reduction_matches_sequential_recording() {
        // Adversarial magnitudes so naive reassociation would change the
        // sums; chunked-in-order reduction must not.
        let pairs: Vec<(f64, f64)> = (0..1_000)
            .map(|i| {
                let t = 10f64.powi((i % 13) - 6);
                (t, t * (1.0 + 1e-3 * (i as f64).sin()))
            })
            .collect();
        let mut seq = ErrorStats::new();
        for &(t, e) in &pairs {
            seq.record(t, e);
        }
        for chunk_size in [1, 7, 64, 1_000] {
            let merged = ErrorStats::from_ordered_chunks(pairs.chunks(chunk_size).map(|c| {
                let mut s = ErrorStats::new();
                for &(t, e) in c {
                    s.record(t, e);
                }
                s
            }));
            assert_eq!(merged.count(), seq.count());
            assert_eq!(
                merged.mean_relative_error().to_bits(),
                seq.mean_relative_error().to_bits(),
                "chunk_size={chunk_size}"
            );
            assert_eq!(
                merged.mean_absolute_error().to_bits(),
                seq.mean_absolute_error().to_bits()
            );
            assert_eq!(
                merged.rms_relative_error().to_bits(),
                seq.rms_relative_error().to_bits()
            );
            assert_eq!(
                merged.relative_error_quantile(0.95).to_bits(),
                seq.relative_error_quantile(0.95).to_bits()
            );
        }
    }

    #[test]
    fn nonfinite_estimates_are_tallied_not_averaged() {
        let mut s = ErrorStats::new();
        s.record(100.0, 90.0);
        s.record(100.0, f64::NAN);
        s.record(100.0, f64::INFINITY);
        s.record(100.0, f64::NEG_INFINITY);
        s.record(f64::NAN, 50.0);
        assert_eq!(s.count(), 1, "only the finite recording contributes");
        assert_eq!(s.skipped_nonfinite(), 4);
        // The means stay finite — no NaN poisoning.
        assert!((s.mean_relative_error() - 0.1).abs() < 1e-15);
        assert!(s.mean_absolute_error().is_finite());
        assert!(s.rms_relative_error().is_finite());
    }

    struct Flat;
    impl DensityEstimator for Flat {
        fn density(&self, _x: f64) -> f64 {
            1.0
        }
        fn domain(&self) -> Domain {
            Domain::unit()
        }
    }

    #[test]
    fn ise_of_perfect_estimate_is_zero() {
        let ise = integrated_squared_error(&Flat, |_| 1.0, 100);
        assert!(ise.abs() < 1e-15);
    }

    #[test]
    fn ise_of_constant_offset() {
        // (1 - 1.5)^2 over [0,1] = 0.25.
        let ise = integrated_squared_error(&Flat, |_| 1.5, 100);
        assert!((ise - 0.25).abs() < 1e-12);
    }
}
