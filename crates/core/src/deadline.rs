//! Per-request deadlines for the serving path.
//!
//! [`QueryDeadline`] wraps the parallel engine's cooperative
//! [`selest_par::Deadline`] (the shared trip flag workers already poll)
//! with the bookkeeping an *estimate request* needs: when the request
//! started and what its budget was, so an expiry can be reported as a
//! typed [`EstimateError::DeadlineExceeded`] carrying both numbers.
//!
//! Deadlines are **cooperative**: nothing is interrupted mid-computation.
//! The serving engine, the resilient ladder, and the kernel merge scan
//! poll [`QueryDeadline::expired`] at checkpoints (admission, between scan
//! phases, every few batch slots) and abandon only the work that has not
//! started — a batch that runs out of budget returns partial results, with
//! every finished slot holding exactly the bits the unhurried path would
//! have produced.
//!
//! The deadline rides to the estimator inside [`crate::BatchScratch`]
//! (see [`crate::BatchScratch::set_deadline`]), so the
//! [`crate::SelectivityEstimator`] trait surface stays unchanged:
//! estimators that know how to cancel cooperatively read the slot,
//! everything else ignores it.

use std::time::{Duration, Instant};

use crate::fault::EstimateError;

/// A per-request execution budget: a shared cooperative trip flag plus
/// the start instant and budget needed to report expiry as a typed error.
///
/// Cloning is cheap and shares the trip flag: expire one clone (or let
/// the wall clock pass the budget) and every holder observes it.
#[derive(Debug, Clone)]
pub struct QueryDeadline {
    inner: selest_par::Deadline,
    started: Instant,
    budget: Option<Duration>,
}

impl QueryDeadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        QueryDeadline {
            inner: selest_par::Deadline::after(budget),
            started: Instant::now(),
            budget: Some(budget),
        }
    }

    /// A deadline only [`QueryDeadline::expire`] trips — the deterministic
    /// variant chaos tests use to cut a batch at an exact slot.
    pub fn manual() -> Self {
        QueryDeadline {
            inner: selest_par::Deadline::manual(),
            started: Instant::now(),
            budget: None,
        }
    }

    /// A deadline that is already expired (no work will start).
    pub fn already_expired() -> Self {
        let d = Self::manual();
        d.expire();
        d
    }

    /// Trip the deadline now; every holder of a clone observes it at its
    /// next checkpoint.
    pub fn expire(&self) {
        self.inner.expire();
    }

    /// Whether the budget is spent (manually tripped or past due).
    pub fn expired(&self) -> bool {
        self.inner.expired()
    }

    /// Microseconds since the request started.
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// The request's budget in microseconds (`0` for manual deadlines,
    /// which have no wall-clock budget).
    pub fn budget_us(&self) -> u64 {
        self.budget.map_or(0, |b| b.as_micros() as u64)
    }

    /// The shared [`selest_par::Deadline`] — hand this to a `TryConfig`
    /// so a parallel rebuild racing the request honors the same budget.
    pub fn as_par_deadline(&self) -> &selest_par::Deadline {
        &self.inner
    }

    /// The typed error reporting this deadline's expiry, stamped with the
    /// elapsed time observed *now*.
    pub fn error(&self) -> EstimateError {
        EstimateError::DeadlineExceeded {
            elapsed_us: self.elapsed_us(),
            budget_us: self.budget_us(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_deadline_trips_every_clone() {
        let d = QueryDeadline::manual();
        let c = d.clone();
        assert!(!d.expired() && !c.expired());
        c.expire();
        assert!(d.expired() && c.expired());
        assert_eq!(d.budget_us(), 0);
        match d.error() {
            EstimateError::DeadlineExceeded { budget_us, .. } => assert_eq!(budget_us, 0),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn wall_clock_deadline_reports_budget_and_elapsed() {
        let d = QueryDeadline::after(Duration::from_millis(200));
        assert!(!d.expired(), "200ms budget cannot expire instantly");
        assert_eq!(d.budget_us(), 200_000);
        let zero = QueryDeadline::after(Duration::ZERO);
        assert!(zero.expired());
        match zero.error() {
            EstimateError::DeadlineExceeded { budget_us, .. } => assert_eq!(budget_us, 0),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn already_expired_starts_tripped() {
        let d = QueryDeadline::already_expired();
        assert!(d.expired());
        // The par-side flag is shared, so parallel engines see it too.
        assert!(d.as_par_deadline().expired());
    }
}
