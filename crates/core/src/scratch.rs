//! Reusable scratch storage for allocation-free batch estimation.
//!
//! The batch serving path ([`crate::traits::SelectivityEstimator::
//! selectivity_batch_into`]) needs working buffers whose *shape* depends on
//! the estimator (the kernel merge scan keeps plans, packed cut keys, and
//! resolved indices; a histogram needs nothing). [`BatchScratch`] is the
//! caller-owned bag those buffers live in: the caller allocates it once,
//! threads it through every batch call, and after the first call on a given
//! estimator type the buffers are warm — subsequent calls perform **zero
//! heap allocations** (a counting-allocator test in the workspace pins
//! this).
//!
//! The bag is type-erased (`Box<dyn Any>`): each estimator downcasts to its
//! own private scratch type via [`BatchScratch::get_or_default`]. Handing
//! the same scratch to a *different* estimator type simply re-initializes
//! the slot — correctness never depends on what was in it, only speed.

use std::any::Any;

use crate::deadline::QueryDeadline;

/// Caller-owned, estimator-typed scratch space for the `_into` batch APIs.
///
/// Create one per serving thread (or per resilient ladder / harness
/// worker), reuse it across calls. `Default`/`new` make an empty bag; no
/// allocation happens until an estimator first asks for its buffers.
///
/// Besides the typed buffers, the bag carries the request's optional
/// [`QueryDeadline`]: the serving engine sets it before a fallible batch
/// call and clears it after, so deadline-aware estimators (the kernel
/// merge scan, the resilient ladder) can cancel cooperatively without the
/// trait surface changing. Estimators that never look at it are
/// unaffected.
#[derive(Default)]
pub struct BatchScratch {
    slot: Option<Box<dyn Any + Send>>,
    deadline: Option<QueryDeadline>,
}

impl BatchScratch {
    /// An empty scratch bag. Allocation-free until first use.
    pub const fn new() -> Self {
        BatchScratch {
            slot: None,
            deadline: None,
        }
    }

    /// Arm the request deadline for the next batch call. The caller is
    /// responsible for clearing it afterwards ([`Self::clear_deadline`]);
    /// a stale deadline would cut the *next* request's batch short.
    pub fn set_deadline(&mut self, deadline: QueryDeadline) {
        self.deadline = Some(deadline);
    }

    /// Disarm the request deadline.
    pub fn clear_deadline(&mut self) {
        self.deadline = None;
    }

    /// The armed request deadline, if any. Deadline-aware estimators read
    /// (and clone — it is an `Arc`-backed flag) this at the start of a
    /// batch call.
    pub fn deadline(&self) -> Option<&QueryDeadline> {
        self.deadline.as_ref()
    }

    /// The scratch buffers of type `T`, creating them (once) if the bag is
    /// empty or currently holds a different estimator's type.
    pub fn get_or_default<T: Default + Send + 'static>(&mut self) -> &mut T {
        let matches = self
            .slot
            .as_ref()
            .is_some_and(|slot| slot.as_ref().is::<T>());
        if !matches {
            self.slot = Some(Box::<T>::default());
        }
        self.slot
            .as_mut()
            .expect("slot filled above")
            .downcast_mut::<T>()
            .expect("slot type checked above")
    }

    /// Drop whatever buffers the bag holds, returning it to the empty
    /// state (mainly for tests and memory-pressure hooks). The armed
    /// deadline (if any) is dropped too.
    pub fn clear(&mut self) {
        self.slot = None;
        self.deadline = None;
    }
}

impl std::fmt::Debug for BatchScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScratch")
            .field("occupied", &self.slot.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct KernelLike {
        cuts: Vec<u64>,
    }

    #[derive(Default)]
    struct OtherLike {
        vals: Vec<f64>,
    }

    #[test]
    fn buffers_persist_across_calls_of_the_same_type() {
        let mut scratch = BatchScratch::new();
        let k = scratch.get_or_default::<KernelLike>();
        k.cuts.extend(0..100);
        let cap = k.cuts.capacity();
        k.cuts.clear();
        // Same type again: same buffers, capacity retained.
        let k = scratch.get_or_default::<KernelLike>();
        assert!(k.cuts.is_empty());
        assert_eq!(k.cuts.capacity(), cap);
    }

    #[test]
    fn switching_types_reinitializes() {
        let mut scratch = BatchScratch::new();
        scratch.get_or_default::<KernelLike>().cuts.push(7);
        let o = scratch.get_or_default::<OtherLike>();
        assert!(o.vals.is_empty());
        o.vals.push(1.5);
        // And back: the kernel buffers were dropped, fresh default.
        assert!(scratch.get_or_default::<KernelLike>().cuts.is_empty());
    }

    #[test]
    fn clear_empties_the_bag() {
        let mut scratch = BatchScratch::new();
        scratch.get_or_default::<KernelLike>().cuts.push(1);
        scratch.clear();
        assert!(scratch.get_or_default::<KernelLike>().cuts.is_empty());
        assert_eq!(format!("{scratch:?}"), "BatchScratch { occupied: true }");
    }

    #[test]
    fn deadline_slot_arms_and_disarms() {
        let mut scratch = BatchScratch::new();
        assert!(scratch.deadline().is_none());
        scratch.set_deadline(crate::deadline::QueryDeadline::manual());
        assert!(scratch.deadline().is_some());
        assert!(!scratch.deadline().expect("armed").expired());
        scratch.clear_deadline();
        assert!(scratch.deadline().is_none());
        // clear() drops an armed deadline along with the buffers.
        scratch.set_deadline(crate::deadline::QueryDeadline::already_expired());
        scratch.clear();
        assert!(scratch.deadline().is_none());
    }
}
