//! Core abstractions for selectivity estimation of range queries on metric
//! attributes, following Blohsfeld, Korus & Seeger (SIGMOD 1999).
//!
//! # Notation (Table 1 of the paper)
//!
//! | Symbol | Meaning | Here |
//! |--------|---------|------|
//! | `N` | number of tuples in the database | [`errors::relative_error`]'s true count, dataset sizes |
//! | `n` | sample size | length of estimator sample sets |
//! | `Q(a,b)` | range query from `a` to `b` | [`RangeQuery`] |
//! | `sigma(a,b)` | distribution selectivity of `Q(a,b)` | [`SelectivityEstimator::selectivity`] |
//! | `F`, `f` | distribution function / PDF | [`DensityEstimator`] and the `selest-data` distributions |
//! | `MISE` | mean integrated squared error | [`errors::integrated_squared_error`] |
//! | `K`, `h` | kernel function / bandwidth | `selest-kernel` |
//!
//! The *distribution selectivity* `sigma(a,b)` is the probability that a
//! record falls in `[a, b]`; the *instance selectivity* is the realized
//! fraction in a concrete relation instance and is estimated as
//! `N * sigma(a,b)`. All estimators in the workspace implement
//! [`SelectivityEstimator`] and return distribution selectivities.

pub mod confidence;
pub mod deadline;
pub mod domain;
pub mod ecdf;
pub mod errors;
pub mod exact;
pub mod fault;
pub mod feedback;
pub mod incremental;
pub mod prepared;
pub mod query;
pub mod sampling;
pub mod scratch;
pub mod traits;
pub mod uniform;

pub use confidence::{wald_interval, wilson_interval, ConfidenceInterval};
pub use deadline::QueryDeadline;
pub use domain::Domain;
pub use ecdf::Ecdf;
pub use errors::{absolute_error, integrated_squared_error, relative_error, ErrorStats};
pub use exact::ExactSelectivity;
pub use fault::{catch_fault, sanitize_sample, EstimateError, FaultStage, SampleAudit};
pub use feedback::{CorrectionGrid, FeedbackEstimator};
pub use incremental::{
    IncrementalColumn, IncrementalParts, ReservoirParts, ReservoirSketch, UpdateAudit,
};
pub use prepared::{ColumnSummary, PreparedColumn};
pub use query::RangeQuery;
pub use sampling::SamplingEstimator;
pub use scratch::BatchScratch;
pub use traits::{DensityEstimator, SelectivityEstimator};
pub use uniform::UniformEstimator;
