//! The shared per-column preparation substrate (DESIGN.md §10).
//!
//! The paper's experiments — and the catalog's ANALYZE, and the
//! ResilientEstimator degradation ladder — build a whole *suite* of
//! estimators over the same attribute sample. Every constructor in the
//! workspace historically re-copied and re-sorted that sample on its own:
//! k estimators cost k·O(n log n) sorts plus k copies. [`PreparedColumn`]
//! is the one immutable artifact they can all borrow from instead:
//!
//! * the sample in its **original order** (the order Kahan-compensated
//!   statistics consume — preserving it is what keeps `from_prepared`
//!   construction bit-identical to the legacy paths);
//! * the **ascending sort** of the sample, held by an [`Ecdf`] and shared
//!   via `Arc` so estimators borrow it without copying;
//! * the column [`Domain`];
//! * a lazily computed one-pass [`ColumnSummary`] (n, min/max, mean,
//!   stddev, median/IQR, robust scale) evaluated with the chunked
//!   deterministic `selest-math` primitives, in parallel via `selest-par`
//!   for large samples — bit-identical for every worker count.
//!
//! Ownership model: whoever draws the sample prepares it, exactly once —
//! the catalog at ANALYZE time, the experiment context at fixture-build
//! time, a test at fixture setup. Estimator constructors never prepare;
//! their `from_prepared` paths only borrow (`&PreparedColumn`), bumping
//! the inner `Arc`s when they need to retain the sorted sample. Sharing
//! across entries, suites, and the fallback ladder goes through
//! `Arc<PreparedColumn>`.
//!
//! Invariants: the sample is non-empty and NaN-free (preparation sorts,
//! which rejects NaN); `sorted` is the stable ascending sort of `values`;
//! `domain` is the column's declared domain — *membership of every sample
//! point in it is deliberately not checked here*, so each estimator's own
//! domain assertion (and its exact panic message) still fires on the
//! legacy and prepared paths alike.

use std::sync::Arc;
use std::sync::OnceLock;

use crate::domain::Domain;
use crate::ecdf::Ecdf;

/// One-pass descriptive summary of a prepared column, shared by every bin
/// rule and bandwidth selector built over it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnSummary {
    /// Sample size `n`.
    pub count: usize,
    /// Smallest sample value.
    pub min: f64,
    /// Largest sample value.
    pub max: f64,
    /// Arithmetic mean (Kahan-compensated, original input order).
    pub mean: f64,
    /// Sample standard deviation (`n - 1` denominator); `0.0` for `n < 2`.
    pub stddev: f64,
    /// Type-7 median.
    pub median: f64,
    /// Type-7 interquartile range `Q3 - Q1`.
    pub iqr: f64,
    /// The paper's robust scale `min(stddev, IQR / 1.349)` — the quantity
    /// every normal-scale rule starts from; `0.0` for `n < 2` or a
    /// constant sample.
    pub robust_scale: f64,
}

impl ColumnSummary {
    /// Compute the summary with an explicit worker count. `values` is the
    /// sample in original order, `sorted` its ascending sort; the
    /// order-sensitive sums run over `values` so the results match the
    /// legacy free functions (`mean`, `stddev`, `robust_scale`) bit for
    /// bit, for every `jobs` value.
    fn compute(values: &[f64], sorted: &[f64], jobs: usize) -> Self {
        let n = values.len();
        debug_assert!(
            n > 0 && n == sorted.len(),
            "ColumnSummary over a prepared sample"
        );
        if n < 2 {
            // A single observation has no spread; consumers that need two
            // or more samples keep their own asserts.
            return ColumnSummary {
                count: 1,
                min: sorted[0],
                max: sorted[0],
                mean: values[0],
                stddev: 0.0,
                median: sorted[0],
                iqr: 0.0,
                robust_scale: 0.0,
            };
        }
        ColumnSummary {
            count: n,
            min: sorted[0],
            max: sorted[n - 1],
            mean: selest_math::stats::mean_jobs(values, jobs),
            stddev: selest_math::stats::stddev_jobs(values, jobs),
            median: selest_math::stats::median(sorted),
            iqr: selest_math::stats::interquartile_range(sorted),
            robust_scale: selest_math::stats::robust_scale_sorted_jobs(values, sorted, jobs),
        }
    }
}

/// An `Arc`-shared, immutable per-column artifact: the sample, its sort,
/// its ECDF, its domain, and (lazily) its [`ColumnSummary`] — prepared
/// once, borrowed by every estimator built over the column.
///
/// # Examples
///
/// ```
/// use selest_core::{Domain, PreparedColumn, RangeQuery, SamplingEstimator,
///     SelectivityEstimator};
///
/// let col = PreparedColumn::prepare(&[10.0, 25.0, 40.0, 55.0, 70.0], Domain::new(0.0, 100.0));
/// let est = SamplingEstimator::from_prepared(&col); // borrows the sort — no copy
/// assert_eq!(est.selectivity(&RangeQuery::new(20.0, 60.0)), 0.6);
/// assert_eq!(col.summary().count, 5);
/// ```
#[derive(Debug)]
pub struct PreparedColumn {
    /// The sample in its original (pre-sort) order.
    values: Arc<[f64]>,
    /// ECDF over the ascending sort of the sample (owns the shared sort).
    ecdf: Ecdf,
    /// The column's declared domain.
    domain: Domain,
    /// Lazily computed summary (first consumer pays the one pass).
    summary: OnceLock<ColumnSummary>,
}

impl PreparedColumn {
    /// Prepare a column: retain the sample, sort it once, build the ECDF.
    /// Panics on an empty sample or NaN values (the same conditions the
    /// legacy per-estimator sorts rejected). The summary is computed
    /// lazily on first access.
    pub fn prepare(samples: &[f64], domain: Domain) -> Self {
        assert!(
            !samples.is_empty(),
            "PreparedColumn::prepare of an empty sample"
        );
        let values: Arc<[f64]> = samples.into();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample set"));
        PreparedColumn {
            values,
            ecdf: Ecdf::from_sorted(sorted),
            domain,
            summary: OnceLock::new(),
        }
    }

    /// The sample in its original order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// A shared handle to the original-order sample (a ref-count bump).
    pub fn values_arc(&self) -> Arc<[f64]> {
        Arc::clone(&self.values)
    }

    /// The ascending sort of the sample.
    pub fn sorted(&self) -> &[f64] {
        self.ecdf.sorted_values()
    }

    /// A shared handle to the sorted sample (a ref-count bump).
    pub fn sorted_arc(&self) -> Arc<[f64]> {
        self.ecdf.sorted_arc()
    }

    /// The ECDF over the sorted sample.
    pub fn ecdf(&self) -> &Ecdf {
        &self.ecdf
    }

    /// The column's declared domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Sample size `n`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false: preparation rejects empty samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The column summary, computed on first access with
    /// [`selest_par::configured_jobs`] workers and cached thereafter.
    pub fn summary(&self) -> &ColumnSummary {
        self.summary_jobs(selest_par::configured_jobs())
    }

    /// [`PreparedColumn::summary`] with an explicit worker count for the
    /// (first) computation. The chunked sums make the result bit-identical
    /// for every `jobs` value, so a cached summary never disagrees with
    /// the requested worker count.
    pub fn summary_jobs(&self, jobs: usize) -> &ColumnSummary {
        self.summary
            .get_or_init(|| ColumnSummary::compute(&self.values, self.sorted(), jobs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f64> {
        // Deliberately unsorted so original-order vs sorted-order sums differ.
        let mut xs: Vec<f64> = (0..1_500)
            .map(|i| ((i * 7_919) % 1_000) as f64 / 3.0)
            .collect();
        xs.push(0.001);
        xs
    }

    #[test]
    fn prepare_retains_both_orders() {
        let xs = sample();
        let col = PreparedColumn::prepare(&xs, Domain::new(0.0, 1_000.0));
        assert_eq!(col.values(), xs.as_slice());
        assert_eq!(col.len(), xs.len());
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(col.sorted(), sorted.as_slice());
        assert_eq!(col.ecdf().len(), xs.len());
        assert_eq!(col.domain(), Domain::new(0.0, 1_000.0));
    }

    #[test]
    fn summary_matches_legacy_free_functions_bit_for_bit() {
        let xs = sample();
        let col = PreparedColumn::prepare(&xs, Domain::new(0.0, 1_000.0));
        let s = col.summary();
        assert_eq!(s.count, xs.len());
        assert_eq!(s.mean.to_bits(), selest_math::stats::mean(&xs).to_bits());
        assert_eq!(
            s.stddev.to_bits(),
            selest_math::stats::stddev(&xs).to_bits()
        );
        assert_eq!(
            s.robust_scale.to_bits(),
            selest_math::stats::robust_scale(&xs).to_bits()
        );
        assert_eq!(s.min, *col.sorted().first().unwrap());
        assert_eq!(s.max, *col.sorted().last().unwrap());
        assert!(s.iqr >= 0.0 && s.median >= s.min && s.median <= s.max);
    }

    #[test]
    fn summary_is_bit_identical_for_any_job_count() {
        let xs: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2_654_435_761_usize) % 9_973) as f64)
            .collect();
        let reference = *PreparedColumn::prepare(&xs, Domain::new(0.0, 10_000.0)).summary_jobs(1);
        for jobs in [2, 3, 7] {
            let col = PreparedColumn::prepare(&xs, Domain::new(0.0, 10_000.0));
            let s = col.summary_jobs(jobs);
            assert_eq!(
                s.mean.to_bits(),
                reference.mean.to_bits(),
                "mean jobs={jobs}"
            );
            assert_eq!(
                s.stddev.to_bits(),
                reference.stddev.to_bits(),
                "stddev jobs={jobs}"
            );
            assert_eq!(
                s.robust_scale.to_bits(),
                reference.robust_scale.to_bits(),
                "robust_scale jobs={jobs}"
            );
            assert_eq!(
                s.median.to_bits(),
                reference.median.to_bits(),
                "median jobs={jobs}"
            );
            assert_eq!(s.iqr.to_bits(), reference.iqr.to_bits(), "iqr jobs={jobs}");
        }
    }

    #[test]
    fn single_sample_summary_degrades_gracefully() {
        let col = PreparedColumn::prepare(&[42.0], Domain::new(0.0, 100.0));
        let s = col.summary();
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max, s.mean, s.median), (42.0, 42.0, 42.0, 42.0));
        assert_eq!((s.stddev, s.iqr, s.robust_scale), (0.0, 0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn prepare_rejects_empty() {
        let _ = PreparedColumn::prepare(&[], Domain::unit());
    }

    #[test]
    #[should_panic(expected = "NaN in sample set")]
    fn prepare_rejects_nan() {
        let _ = PreparedColumn::prepare(&[1.0, f64::NAN], Domain::unit());
    }
}
