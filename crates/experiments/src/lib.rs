//! The experiment harness: regenerates every table and figure of
//! Blohsfeld, Korus & Seeger (SIGMOD 1999). See DESIGN.md §2 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured results.
//!
//! Run everything with the bundled binary:
//!
//! ```text
//! cargo run --release -p selest-experiments --bin repro -- all
//! cargo run --release -p selest-experiments --bin repro -- --quick fig12
//! ```

pub mod context;
pub mod figures;
pub mod harness;
pub mod methods;
pub mod oracle;

pub use context::FileContext;
pub use harness::{evaluate, ExperimentReport, Scale, Series};

/// All experiment ids in paper order.
pub const ALL_EXPERIMENTS: [&str; 19] = [
    "fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
    "fig11", "fig12", "tab02", "ext01", "ext02", "ext03", "ext04", "ext05", "ext06",
];

/// Run one experiment by id.
pub fn run_experiment(id: &str, scale: &Scale) -> ExperimentReport {
    match id {
        "fig01" => figures::fig01::run(scale),
        "fig02" => figures::fig02::run(scale),
        "fig03" => figures::fig03::run(scale),
        "fig04" => figures::fig04::run(scale),
        "fig05" => figures::fig05::run(scale),
        "fig06" => figures::fig06::run(scale),
        "fig07" => figures::fig07::run(scale),
        "fig08" => figures::fig08::run(scale),
        "fig09" => figures::fig09::run(scale),
        "fig10" => figures::fig10::run(scale),
        "fig11" => figures::fig11::run(scale),
        "fig12" => figures::fig12::run(scale),
        "tab02" => figures::tab02::run(scale),
        "ext01" => figures::ext01::run(scale),
        "ext02" => figures::ext02::run(scale),
        "ext03" => figures::ext03::run(scale),
        "ext04" => figures::ext04::run(scale),
        "ext05" => figures::ext05::run(scale),
        "ext06" => figures::ext06::run(scale),
        other => panic!("unknown experiment id {other}; known: {ALL_EXPERIMENTS:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_round_trip() {
        // The cheap experiments run through the dispatcher; expensive ones
        // are covered by their own module tests.
        for id in ["fig01", "fig02", "tab02"] {
            let r = run_experiment(id, &Scale::quick());
            assert_eq!(r.id, id);
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        let _ = run_experiment("fig99", &Scale::quick());
    }
}
