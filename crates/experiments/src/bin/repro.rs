//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--jobs N] [--csv DIR] [ids...]
//! ```
//!
//! With no ids, every experiment runs in paper order. `--quick` uses the
//! reduced scale (10x smaller data, 5x fewer queries); `--csv DIR` also
//! writes one CSV per experiment into DIR; `--jobs N` sets the worker
//! count of the batch-estimation engine (default: `SELEST_JOBS` or all
//! hardware threads).
//!
//! Independent experiments are computed concurrently on the engine, but
//! reports are printed to stdout in paper order — stdout (and the CSVs)
//! are byte-identical for every `--jobs` value; per-experiment timings go
//! to stderr.

use std::io::Write as _;

use selest_experiments::{run_experiment, Scale, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::paper();
    let mut csv_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::quick(),
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory argument");
                    std::process::exit(2);
                }));
            }
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--jobs needs a worker count");
                    std::process::exit(2);
                });
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => selest_par::set_jobs(n),
                    _ => {
                        eprintln!("--jobs needs a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("usage: repro [--quick] [--jobs N] [--csv DIR] [ids...]");
                println!("experiments: {}", ALL_EXPERIMENTS.join(" "));
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned()).collect();
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create CSV output directory");
    }
    let started = std::time::Instant::now();
    // Fan the experiments out on the engine; the ordered merge keeps the
    // reports in request order regardless of completion order.
    let reports = selest_par::parallel_map(&ids, |id| {
        let t0 = std::time::Instant::now();
        let report = run_experiment(id, &scale);
        eprintln!("  [{id} computed in {:.1?}]", t0.elapsed());
        report
    });
    for report in &reports {
        println!("{report}\n");
        if let Some(dir) = &csv_dir {
            let path = format!("{dir}/{}.csv", report.id);
            let mut f = std::fs::File::create(&path).expect("create CSV file");
            f.write_all(report.to_csv().as_bytes()).expect("write CSV");
        }
    }
    eprintln!(
        "  [{} experiment(s) in {:.1?} with {} worker(s)]",
        reports.len(),
        started.elapsed(),
        selest_par::configured_jobs()
    );
}
