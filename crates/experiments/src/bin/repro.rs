//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--csv DIR] [ids...]
//! ```
//!
//! With no ids, every experiment runs in paper order. `--quick` uses the
//! reduced scale (10x smaller data, 5x fewer queries); `--csv DIR` also
//! writes one CSV per experiment into DIR.

use std::io::Write as _;

use selest_experiments::{run_experiment, Scale, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::paper();
    let mut csv_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::quick(),
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory argument");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!("usage: repro [--quick] [--csv DIR] [ids...]");
                println!("experiments: {}", ALL_EXPERIMENTS.join(" "));
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned()).collect();
    } else if ids.iter().any(|i| i == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned()).collect();
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create CSV output directory");
    }
    for id in &ids {
        let started = std::time::Instant::now();
        let report = run_experiment(id, &scale);
        println!("{report}");
        println!("  ({} in {:.1?})\n", id, started.elapsed());
        if let Some(dir) = &csv_dir {
            let path = format!("{dir}/{id}.csv");
            let mut f = std::fs::File::create(&path).expect("create CSV file");
            f.write_all(report.to_csv().as_bytes()).expect("write CSV");
        }
    }
}
