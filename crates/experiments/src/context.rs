//! Per-data-file experiment context: the generated file, its ground truth,
//! the 2 000-record sample, and the four size-separated query files —
//! everything Section 5.1 fixes before any estimator runs.

use std::sync::Arc;

use selest_core::{ExactSelectivity, PreparedColumn};
use selest_data::{sample_without_replacement, DataFile, PaperFile, QueryFile};

use crate::harness::Scale;

/// Everything the experiments need about one data file.
pub struct FileContext {
    /// The generated data file.
    pub data: DataFile,
    /// Exact range counts over the full file.
    pub exact: ExactSelectivity,
    /// The estimator-building sample (without replacement).
    pub sample: Vec<f64>,
    /// The sample prepared once — sorted, ECDF'd, summarized — and shared
    /// by every estimator the figures build over this file (see
    /// [`crate::methods`]).
    pub prepared: Arc<PreparedColumn>,
    /// Query files for sizes 1 %, 2 %, 5 %, 10 %.
    pub queries: [QueryFile; 4],
}

impl FileContext {
    /// Build the context for one paper file at the given scale.
    pub fn build(file: PaperFile, scale: &Scale) -> Self {
        let data = file.generate_scaled(scale.record_divisor);
        let exact = ExactSelectivity::new(data.values(), data.domain());
        let n_sample = scale.sample_size.min(data.len());
        // Seeds are derived from the file's name via the query generator's
        // own seeding; the sample seed is fixed so reruns are identical.
        let sample = sample_without_replacement(data.values(), n_sample, 0xabcd_0001);
        let prepared = Arc::new(PreparedColumn::prepare(&sample, data.domain()));
        let queries = [
            QueryFile::generate(&data, 0.01, scale.queries_per_file, 0x9e37_0001),
            QueryFile::generate(&data, 0.02, scale.queries_per_file, 0x9e37_0002),
            QueryFile::generate(&data, 0.05, scale.queries_per_file, 0x9e37_0005),
            QueryFile::generate(&data, 0.10, scale.queries_per_file, 0x9e37_0010),
        ];
        FileContext {
            data,
            exact,
            sample,
            prepared,
            queries,
        }
    }

    /// The query file of the given size fraction (one of 0.01/0.02/0.05/0.10).
    pub fn query_file(&self, size: f64) -> &QueryFile {
        self.queries
            .iter()
            .find(|q| (q.size_fraction() - size).abs() < 1e-12)
            .unwrap_or_else(|| panic!("no query file of size {size}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_assembles_everything() {
        let scale = Scale::quick();
        let ctx = FileContext::build(PaperFile::Uniform { p: 15 }, &scale);
        assert_eq!(ctx.data.len(), 10_000);
        assert_eq!(ctx.sample.len(), 1_000);
        assert_eq!(ctx.exact.total(), 10_000);
        for (qf, size) in ctx.queries.iter().zip([0.01, 0.02, 0.05, 0.10]) {
            assert_eq!(qf.len(), 200);
            assert!((qf.size_fraction() - size).abs() < 1e-12);
        }
        assert_eq!(ctx.query_file(0.05).len(), 200);
    }

    #[test]
    #[should_panic(expected = "no query file of size")]
    fn unknown_query_size_panics() {
        let ctx = FileContext::build(PaperFile::Uniform { p: 15 }, &Scale::quick());
        let _ = ctx.query_file(0.03);
    }
}
