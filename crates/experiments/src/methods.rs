//! Constructors for the named estimator configurations the paper's figures
//! compare, all built from a [`FileContext`]'s shared [`PreparedColumn`]
//! substrate: the sample is sorted and summarized once per file, and every
//! method borrows that work instead of re-sorting its own copy. Results
//! are bit-identical to building each estimator from the raw sample.

use selest_core::{PreparedColumn, SamplingEstimator, UniformEstimator};
use selest_histogram::{
    equi_depth_prepared, equi_width_prepared, max_diff_prepared, AverageShiftedHistogram, BinRule,
    BinnedHistogram, NormalScaleBins,
};
use selest_hybrid::HybridEstimator;
use selest_kernel::{
    BandwidthSelector, BoundaryPolicy, DirectPlugIn, KernelEstimator, KernelFn, NormalScale,
};

use crate::context::FileContext;

/// Equi-width histogram with a fixed bin count.
pub fn ewh(ctx: &FileContext, k: usize) -> BinnedHistogram {
    equi_width_prepared(&ctx.prepared, k)
}

/// Equi-width histogram with normal-scale bins (the paper's `EWH`).
pub fn ewh_ns(ctx: &FileContext) -> BinnedHistogram {
    let k = NormalScaleBins.bins_prepared(&ctx.prepared);
    ewh(ctx, k)
}

/// Equi-depth histogram with a fixed bin count.
pub fn edh(ctx: &FileContext, k: usize) -> BinnedHistogram {
    equi_depth_prepared(&ctx.prepared, k)
}

/// Max-diff histogram with a fixed bin count.
pub fn mdh(ctx: &FileContext, k: usize) -> BinnedHistogram {
    max_diff_prepared(&ctx.prepared, k)
}

/// Average shifted histogram with normal-scale base bins and ten shifts
/// (the paper's `ASH`).
pub fn ash_ns(ctx: &FileContext) -> AverageShiftedHistogram {
    let k = NormalScaleBins.bins_prepared(&ctx.prepared);
    AverageShiftedHistogram::from_prepared(&ctx.prepared, k, 10)
}

/// Pure sampling baseline.
pub fn sampling(ctx: &FileContext) -> SamplingEstimator {
    SamplingEstimator::from_prepared(&ctx.prepared)
}

/// Uniform (one-bin) baseline.
pub fn uniform(ctx: &FileContext) -> UniformEstimator {
    UniformEstimator::new(ctx.data.domain())
}

/// Kernel estimator with an explicit bandwidth; the bandwidth is capped at
/// half the domain for boundary kernels.
pub fn kernel(ctx: &FileContext, boundary: BoundaryPolicy, h: f64) -> KernelEstimator {
    let h = if boundary == BoundaryPolicy::BoundaryKernel {
        h.min(0.5 * ctx.data.domain().width())
    } else {
        h
    };
    KernelEstimator::from_prepared(&ctx.prepared, KernelFn::Epanechnikov, h, boundary)
}

/// Kernel estimator, normal-scale bandwidth.
pub fn kernel_ns(ctx: &FileContext, boundary: BoundaryPolicy) -> KernelEstimator {
    let h = NormalScale.bandwidth_prepared(&ctx.prepared, KernelFn::Epanechnikov);
    kernel(ctx, boundary, h)
}

/// Kernel estimator, two-stage direct plug-in bandwidth with boundary
/// kernels (the paper's best kernel configuration, `Kernel` in Figure 12).
pub fn kernel_dpi2(ctx: &FileContext, boundary: BoundaryPolicy) -> KernelEstimator {
    let h = DirectPlugIn::two_stage().bandwidth_prepared(&ctx.prepared, KernelFn::Epanechnikov);
    kernel(ctx, boundary, h)
}

/// Hybrid estimator with the default configuration (the paper's `Hybrid`).
pub fn hybrid(ctx: &FileContext) -> HybridEstimator {
    HybridEstimator::from_prepared(&ctx.prepared)
}

/// The shared substrate itself, for callers that want to build additional
/// estimators over the same one-sort preparation.
pub fn prepared(ctx: &FileContext) -> &PreparedColumn {
    &ctx.prepared
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{evaluate, Scale};
    use selest_data::PaperFile;

    #[test]
    fn every_method_builds_and_evaluates() {
        let ctx = crate::context::FileContext::build(PaperFile::Normal { p: 15 }, &Scale::quick());
        let qf = ctx.query_file(0.05);
        let methods: Vec<(String, f64)> = vec![
            (
                "EWH".into(),
                evaluate(&ewh_ns(&ctx), qf.queries(), &ctx.exact).mean_relative_error(),
            ),
            (
                "EDH".into(),
                evaluate(&edh(&ctx, 20), qf.queries(), &ctx.exact).mean_relative_error(),
            ),
            (
                "MDH".into(),
                evaluate(&mdh(&ctx, 20), qf.queries(), &ctx.exact).mean_relative_error(),
            ),
            (
                "ASH".into(),
                evaluate(&ash_ns(&ctx), qf.queries(), &ctx.exact).mean_relative_error(),
            ),
            (
                "Kernel".into(),
                evaluate(
                    &kernel_dpi2(&ctx, BoundaryPolicy::BoundaryKernel),
                    qf.queries(),
                    &ctx.exact,
                )
                .mean_relative_error(),
            ),
            (
                "Hybrid".into(),
                evaluate(&hybrid(&ctx), qf.queries(), &ctx.exact).mean_relative_error(),
            ),
            (
                "Sampling".into(),
                evaluate(&sampling(&ctx), qf.queries(), &ctx.exact).mean_relative_error(),
            ),
            (
                "Uniform".into(),
                evaluate(&uniform(&ctx), qf.queries(), &ctx.exact).mean_relative_error(),
            ),
        ];
        for (name, mre) in &methods {
            assert!(mre.is_finite() && *mre >= 0.0, "{name}: MRE {mre}");
            // 5% queries on a smooth normal file: every real method should
            // be well under 100% error.
            if name != "Uniform" {
                assert!(*mre < 1.0, "{name}: MRE {mre} suspiciously large");
            }
        }
        // The uniform estimator must be the clear loser on normal data.
        let uniform_mre = methods.last().expect("nonempty").1;
        for (name, mre) in &methods[..methods.len() - 1] {
            assert!(
                *mre < uniform_mre,
                "{name} ({mre}) should beat Uniform ({uniform_mre}) on normal data"
            );
        }
    }
}
