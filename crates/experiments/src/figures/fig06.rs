//! Figure 6: consistency — MRE(n(20), 1%) as a function of the sample size
//! for pure sampling, the equi-width histogram (normal-scale bins), and the
//! kernel estimator (normal-scale bandwidth, boundary kernels). All three
//! must fall with n, ordered kernel < histogram < sampling.

use selest_data::PaperFile;
use selest_kernel::BoundaryPolicy;

use crate::context::FileContext;
use crate::harness::{evaluate, ExperimentReport, Scale, Series};
use crate::methods;

/// Sample sizes swept (the paper spans 200 to 10 000).
pub const SAMPLE_SIZES: [usize; 6] = [200, 500, 1_000, 2_000, 5_000, 10_000];

/// Run the sample-size sweep.
pub fn run(scale: &Scale) -> ExperimentReport {
    let base = FileContext::build(PaperFile::Normal { p: 20 }, scale);
    let mut series = vec![
        Series {
            label: "sampling".into(),
            points: Vec::new(),
        },
        Series {
            label: "EWH (h-NS)".into(),
            points: Vec::new(),
        },
        Series {
            label: "kernel (h-NS, BK)".into(),
            points: Vec::new(),
        },
    ];
    for &n in &SAMPLE_SIZES {
        // A sample approaching the whole file makes "sampling" trivially
        // exact; keep the sweep in the regime the paper studies.
        if n * 2 > base.data.len() {
            continue;
        }
        // Redraw the sample at each size (fresh seed per size, as the paper
        // redraws its sample sets).
        let sample =
            selest_data::sample_without_replacement(base.data.values(), n, 0xf16_0600 + n as u64);
        let prepared = std::sync::Arc::new(selest_core::PreparedColumn::prepare(
            &sample,
            base.data.domain(),
        ));
        let ctx = FileContext {
            sample,
            prepared,
            ..no_sample_clone(&base, scale)
        };
        let qf = ctx.query_file(0.01);
        let x = n as f64;
        series[0].points.push((
            x,
            evaluate(&methods::sampling(&ctx), qf.queries(), &ctx.exact).mean_relative_error(),
        ));
        series[1].points.push((
            x,
            evaluate(&methods::ewh_ns(&ctx), qf.queries(), &ctx.exact).mean_relative_error(),
        ));
        series[2].points.push((
            x,
            evaluate(
                &methods::kernel_ns(&ctx, BoundaryPolicy::BoundaryKernel),
                qf.queries(),
                &ctx.exact,
            )
            .mean_relative_error(),
        ));
    }
    let mut report = ExperimentReport::new(
        "fig06",
        "MRE(n(20), 1%) vs. sample size: sampling, EWH, kernel",
        "sample size n",
        "MRE",
    );
    report.series = series;
    report.notes.push(
        "paper: EWH falls from ~12% at n=200 to ~4% at n=10000; kernel < EWH < sampling".into(),
    );
    report
}

/// Rebuild a context sharing `base`'s data/queries but with sample and
/// prepared slots to be replaced by the caller (struct-update helper).
fn no_sample_clone(base: &FileContext, _scale: &Scale) -> FileContext {
    FileContext {
        data: base.data.clone(),
        exact: base.exact.clone(),
        sample: Vec::new(),
        prepared: std::sync::Arc::clone(&base.prepared),
        queries: base.queries.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_are_consistent_and_ordered() {
        let r = run(&Scale::quick());
        for s in &r.series {
            assert!(s.points.len() >= 4, "{}: too few points", s.label);
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(
                last < first,
                "{}: error should fall with n ({first} -> {last})",
                s.label
            );
        }
        // At the largest common n: kernel <= EWH <= sampling (allow slack
        // of 15% for quick-scale noise — at n = 10 000 sampling is itself
        // excellent and the EWH/sampling gap sits inside single-draw
        // variance, so assert near-parity rather than strict ordering).
        let at_last = |i: usize| r.series[i].points.last().unwrap().1;
        let (sampling, ewh, kernel) = (at_last(0), at_last(1), at_last(2));
        assert!(
            ewh < sampling * 1.15,
            "EWH {ewh} should be at or below sampling {sampling}"
        );
        assert!(
            kernel < ewh * 1.15,
            "kernel {kernel} should be at or below EWH {ewh}"
        );
    }
}
