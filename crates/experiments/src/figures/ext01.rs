//! Extension experiment 1: sensitivity to the kernel function.
//!
//! Section 3.2 of the paper (citing Silverman) claims "varying the kernel
//! function K causes only small effects on the accuracy of the estimator
//! in comparison to varying h". This experiment quantifies that: MRE of
//! all seven kernels at their own normal-scale bandwidth, against the
//! spread produced by halving/doubling h for the Epanechnikov kernel.

use selest_data::PaperFile;
use selest_kernel::{BandwidthSelector, BoundaryPolicy, KernelFn, NormalScale};

use crate::context::FileContext;
use crate::harness::{evaluate, ExperimentReport, Scale};
use crate::methods;

/// Run on n(20), 1 % queries.
pub fn run(scale: &Scale) -> ExperimentReport {
    let ctx = FileContext::build(PaperFile::Normal { p: 20 }, scale);
    let queries = ctx.query_file(0.01).queries();
    let mut report = ExperimentReport::new(
        "ext01",
        "Kernel-choice sensitivity vs. bandwidth sensitivity (n(20), 1% queries)",
        "configuration",
        "MRE",
    );
    // Boundary kernels are Epanechnikov-specific; reflection works for all.
    let policy = BoundaryPolicy::Reflection;
    for kernel in KernelFn::ALL {
        let h = NormalScale.bandwidth(&ctx.sample, kernel);
        let est =
            selest_kernel::KernelEstimator::new(&ctx.sample, ctx.data.domain(), kernel, h, policy);
        let mre = evaluate(&est, queries, &ctx.exact).mean_relative_error();
        report
            .bars
            .push(("kernel".into(), kernel.name().into(), mre));
    }
    // Bandwidth sensitivity for contrast: x/4, x/2, x1, x2, x4.
    let h_ns = NormalScale.bandwidth(&ctx.sample, KernelFn::Epanechnikov);
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let est = methods::kernel(&ctx, policy, h_ns * factor);
        let mre = evaluate(&est, queries, &ctx.exact).mean_relative_error();
        report
            .bars
            .push(("bandwidth".into(), format!("{factor}x h-NS"), mre));
    }
    report.notes.push(
        "the paper's claim: the kernel column should be nearly flat while the bandwidth \
         column varies strongly"
            .into(),
    );
    report
}

/// Relative spreads (max/min of MRE) of the two bar groups.
pub fn spreads(report: &ExperimentReport) -> (f64, f64) {
    let spread = |group: &str| {
        let vals: Vec<f64> = report
            .bars
            .iter()
            .filter(|(g, _, _)| g == group)
            .map(|&(_, _, v)| v)
            .collect();
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(0.0, f64::max);
        max / min
    };
    (spread("kernel"), spread("bandwidth"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_choice_matters_much_less_than_bandwidth() {
        let r = run(&Scale::quick());
        let (kernel_spread, bandwidth_spread) = spreads(&r);
        assert!(
            kernel_spread < 1.6,
            "kernels at their own NS bandwidth should be near-equivalent, spread {kernel_spread}"
        );
        assert!(
            bandwidth_spread > 1.8 * kernel_spread,
            "bandwidth spread {bandwidth_spread} should dwarf kernel spread {kernel_spread}"
        );
    }
}
