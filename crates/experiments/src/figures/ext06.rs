//! Extension experiment 6: query-feedback refinement (the paper's third
//! future-work item, after Chen & Roussopoulos \[1\]).
//!
//! Statistics go stale: ANALYZE ran before the data shifted. The feedback
//! wrapper learns multiplicative corrections from executed queries, so the
//! error of the stale estimator should fall toward the fresh estimator's
//! as the workload streams by — without re-running ANALYZE.

use selest_core::{FeedbackEstimator, SelectivityEstimator};
use selest_data::{sample_without_replacement, PaperFile};

use crate::context::FileContext;
use crate::harness::{evaluate, ExperimentReport, Scale, Series};
use crate::methods;

/// Run the staleness-recovery experiment on n(20).
pub fn run(scale: &Scale) -> ExperimentReport {
    // "Fresh" data: the ordinary n(20) file. "Stale" statistics: built on a
    // sample of a *shifted* version of the data (the distribution drifted
    // right by 10% of the domain after ANALYZE).
    let ctx = FileContext::build(PaperFile::Normal { p: 20 }, scale);
    let domain = ctx.data.domain();
    let shift = 0.10 * domain.width();
    let stale_values: Vec<f64> = ctx
        .data
        .values()
        .iter()
        .map(|&v| (v - shift).max(domain.lo()))
        .collect();
    let stale_sample = sample_without_replacement(&stale_values, ctx.sample.len(), 0xfeed06);
    let stale = selest_histogram::equi_width(
        &stale_sample,
        domain,
        selest_histogram::binrules::BinRule::bins(
            &selest_histogram::NormalScaleBins,
            &stale_sample,
            &domain,
        ),
    );

    let queries = ctx.query_file(0.01).queries();
    let n = ctx.exact.total();
    let mut feedback = FeedbackEstimator::new(stale.clone(), 64, 0.5);

    // Stream the workload: after each batch, estimate the remaining error.
    let mut series = Series {
        label: "stale + feedback".into(),
        points: Vec::new(),
    };
    let batch = (queries.len() / 10).max(1);
    let eval_now = |est: &(dyn SelectivityEstimator + Sync)| {
        evaluate(est, queries, &ctx.exact).mean_relative_error()
    };
    series.points.push((0.0, eval_now(&feedback)));
    for (i, chunk) in queries.chunks(batch).enumerate() {
        for q in chunk {
            let truth = ctx.exact.count(q) as f64 / n as f64;
            feedback.observe(q, truth);
        }
        series
            .points
            .push((((i + 1) * batch) as f64, eval_now(&feedback)));
    }

    let mut report = ExperimentReport::new(
        "ext06",
        "Query feedback repairing stale statistics (n(20) shifted 10%, 1% queries)",
        "queries observed",
        "MRE",
    );
    let stale_mre = eval_now(&stale);
    let fresh_mre = eval_now(&methods::ewh_ns(&ctx));
    report.series.push(series);
    report.series.push(Series {
        label: "stale (no feedback)".into(),
        points: vec![(0.0, stale_mre), (queries.len() as f64, stale_mre)],
    });
    report.series.push(Series {
        label: "fresh ANALYZE".into(),
        points: vec![(0.0, fresh_mre), (queries.len() as f64, fresh_mre)],
    });
    report.notes.push(format!(
        "stale statistics start at {:.1}% MRE; a fresh ANALYZE would give {:.1}%",
        100.0 * stale_mre,
        100.0 * fresh_mre
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_recovers_most_of_the_staleness_penalty() {
        let r = run(&Scale::quick());
        let fb = r.series_by_label("stale + feedback").unwrap();
        let stale = r.series_by_label("stale (no feedback)").unwrap().points[0].1;
        let fresh = r.series_by_label("fresh ANALYZE").unwrap().points[0].1;
        let start = fb.points.first().unwrap().1;
        let end = fb.points.last().unwrap().1;
        assert!(
            stale > 2.0 * fresh,
            "premise: staleness hurts ({stale} vs {fresh})"
        );
        assert!(
            (start - stale).abs() < 0.02,
            "feedback starts at the stale error"
        );
        // After the workload, at least half the staleness penalty is gone.
        assert!(
            end < fresh + 0.5 * (stale - fresh),
            "feedback end {end} should recover half the gap (stale {stale}, fresh {fresh})"
        );
    }
}
