//! One module per table/figure of the paper's evaluation (see DESIGN.md §2
//! for the experiment index). Every module exposes
//! `run(scale: &Scale) -> ExperimentReport`; the bar-chart figures
//! additionally expose `run_with_files` so tests can restrict the file set.

pub mod ext01;
pub mod ext02;
pub mod ext03;
pub mod ext04;
pub mod ext05;
pub mod ext06;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod tab02;
