//! Figure 2: the three contribution cases of a kernel to a range query —
//! no overlap (zero), partial overlap (explicit primitive), full overlap
//! (exactly one).

use selest_core::{Domain, RangeQuery, SelectivityEstimator};
use selest_kernel::{BoundaryPolicy, KernelEstimator, KernelFn};

use crate::harness::{ExperimentReport, Scale};

/// Reproduce the three cases with one sample each, exactly as drawn in
/// Figure 2: query `[a, b] = [40, 60]`, bandwidth `h = 5`, samples at
/// `X1 = 20` (no overlap), `X2 = 42 ~ a` (partial), `X3 = 50` (full).
pub fn run(_scale: &Scale) -> ExperimentReport {
    let domain = Domain::new(0.0, 100.0);
    let q = RangeQuery::new(40.0, 60.0);
    let h = 5.0;
    let cases = [
        ("X1 (no overlap)", 20.0),
        ("X2 (partial)", 42.0),
        ("X3 (full)", 50.0),
    ];
    let mut report = ExperimentReport::new(
        "fig02",
        "Kernel contribution cases for Q(40, 60), h = 5",
        "case",
        "contribution",
    );
    for (label, x) in cases {
        let est = KernelEstimator::new(
            &[x],
            domain,
            KernelFn::Epanechnikov,
            h,
            BoundaryPolicy::NoTreatment,
        );
        // One sample: the estimator's selectivity IS that sample's
        // integral contribution.
        report
            .bars
            .push(("Q(40,60)".into(), label.into(), est.selectivity(&q)));
    }
    report.notes.push(
        "zero for kernels out of reach, one for kernels fully inside, \
         the exact primitive F_K only in the boundary strips"
            .into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_three_cases_behave_as_drawn() {
        let r = run(&Scale::quick());
        let zero = r.bar("Q(40,60)", "X1 (no overlap)").unwrap();
        let partial = r.bar("Q(40,60)", "X2 (partial)").unwrap();
        let full = r.bar("Q(40,60)", "X3 (full)").unwrap();
        assert_eq!(zero, 0.0);
        assert!(partial > 0.0 && partial < 1.0, "partial {partial}");
        assert_eq!(full, 1.0);
        // X2 = 42 with h = 5: CDF((60-42)/5 >= 1) - CDF((40-42)/5 = -0.4)
        // = 1 - CDF(-0.4).
        let expect = 1.0 - KernelFn::Epanechnikov.cdf(-0.4);
        assert!((partial - expect).abs() < 1e-12);
    }
}
