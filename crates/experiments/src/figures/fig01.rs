//! Figure 1: a kernel density estimate as superimposed per-sample bumps.

use selest_kernel::{kde::bump_decomposition, KernelFn};

use crate::harness::{ExperimentReport, Scale, Series};

/// The five-sample illustration of Figure 1.
pub fn run(_scale: &Scale) -> ExperimentReport {
    let samples = [1.0, 2.1, 2.6, 4.0, 4.4];
    let h = 0.9;
    let d = bump_decomposition(&samples, KernelFn::Epanechnikov, h, 0.0, 5.5, 111);
    let mut report = ExperimentReport::new(
        "fig01",
        "Kernel density estimation: per-sample bumps and their sum",
        "x",
        "density",
    );
    for (i, bump) in d.bumps.iter().enumerate() {
        report.series.push(Series {
            label: format!("bump@{}", samples[i]),
            points: d.grid.iter().copied().zip(bump.iter().copied()).collect(),
        });
    }
    report.series.push(Series {
        label: "estimate".into(),
        points: d
            .grid
            .iter()
            .copied()
            .zip(d.estimate.iter().copied())
            .collect(),
    });
    report.notes.push(format!(
        "Epanechnikov kernel, n = {}, h = {h}; the estimate is the pointwise sum of the bumps",
        samples.len()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_is_the_sum_of_bumps() {
        let r = run(&Scale::quick());
        assert_eq!(r.series.len(), 6);
        let est = r.series_by_label("estimate").expect("estimate series");
        for (i, &(_, y)) in est.points.iter().enumerate() {
            let sum: f64 = r.series[..5].iter().map(|s| s.points[i].1).sum();
            assert!((y - sum).abs() < 1e-12);
        }
    }
}
