//! Figure 4: the MRE of an equi-width histogram as a function of its bin
//! count, against the flat pure-sampling line — the U-shaped smoothing
//! trade-off that motivates Section 4.

use selest_data::PaperFile;

use crate::context::FileContext;
use crate::harness::{evaluate, ExperimentReport, Scale, Series};
use crate::methods;

/// Log-spaced bin counts for the sweep.
pub fn bin_sweep(max_bins: usize, steps: usize) -> Vec<usize> {
    let mut ks = vec![2usize];
    for i in 1..=steps {
        let k = (2.0 * (max_bins as f64 / 2.0).powf(i as f64 / steps as f64)).round() as usize;
        if *ks.last().expect("nonempty") != k {
            ks.push(k.min(max_bins));
        }
    }
    ks
}

/// Run the Figure 4 sweep on `n(20)` with 1 % queries.
pub fn run(scale: &Scale) -> ExperimentReport {
    run_on(scale, PaperFile::Normal { p: 20 })
}

/// The same sweep on an arbitrary file (reused by Figure 5).
pub fn run_on(scale: &Scale, file: PaperFile) -> ExperimentReport {
    let ctx = FileContext::build(file, scale);
    let qf = ctx.query_file(0.01);
    let ks = bin_sweep(1_000, 22);
    let points: Vec<(f64, f64)> = ks
        .iter()
        .map(|&k| {
            let mre =
                evaluate(&methods::ewh(&ctx, k), qf.queries(), &ctx.exact).mean_relative_error();
            (k as f64, mre)
        })
        .collect();
    let sampling_mre =
        evaluate(&methods::sampling(&ctx), qf.queries(), &ctx.exact).mean_relative_error();
    let mut report = ExperimentReport::new(
        "fig04",
        "EWH mean relative error vs. number of bins (1% queries)",
        "bins",
        "MRE",
    );
    report.series.push(Series {
        label: format!("EWH {}", ctx.data.name()),
        points,
    });
    report.series.push(Series {
        label: "sampling".into(),
        points: ks.iter().map(|&k| (k as f64, sampling_mre)).collect(),
    });
    report.notes.push(
        "paper: minimum ~7% at ~20 bins, sampling line at 17.5% (N = 100 000, n = 2 000)"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_u_shaped_and_dips_below_sampling() {
        let r = run(&Scale::quick());
        let ewh = &r.series[0];
        let sampling = r.series[1].points[0].1;
        // The best bin count beats sampling...
        assert!(
            ewh.y_min() < sampling,
            "EWH best {} should beat sampling {sampling}",
            ewh.y_min()
        );
        // ...and both extremes are worse than the minimum (U shape).
        let first = ewh.points.first().unwrap().1;
        let last = ewh.points.last().unwrap().1;
        assert!(
            first > 1.5 * ewh.y_min(),
            "left arm {first} vs min {}",
            ewh.y_min()
        );
        assert!(
            last > 1.5 * ewh.y_min(),
            "right arm {last} vs min {}",
            ewh.y_min()
        );
        // The over-binned end approaches the sampling error from around it.
        assert!(
            last < 2.0 * sampling,
            "right arm {last} should approach sampling {sampling}"
        );
    }

    #[test]
    fn bin_sweep_is_increasing_and_bounded() {
        let ks = bin_sweep(1_000, 22);
        assert_eq!(ks[0], 2);
        assert!(ks.windows(2).all(|w| w[0] < w[1]));
        assert!(*ks.last().unwrap() <= 1_000);
    }
}
