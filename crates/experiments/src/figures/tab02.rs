//! Table 2: properties of the data files — regenerated from the actual
//! generators, with the measured distinct-value counts appended (the
//! quantity behind the cardinality discussion of Section 5.2.1).

use selest_data::PaperFile;

use crate::harness::{ExperimentReport, Scale};

/// Regenerate Table 2 at the given scale.
pub fn run(scale: &Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "tab02",
        "Properties of the data files (Table 2)",
        "file",
        "value",
    );
    for file in PaperFile::all() {
        let data = file.generate_scaled(scale.record_divisor);
        let name = data.name().to_owned();
        report
            .bars
            .push((name.clone(), "p".into(), file.p() as f64));
        report
            .bars
            .push((name.clone(), "records".into(), data.len() as f64));
        report.bars.push((
            name.clone(),
            "distinct".into(),
            data.distinct_count() as f64,
        ));
        report
            .bars
            .push((name.clone(), "avg freq".into(), data.avg_frequency()));
        report
            .notes
            .push(format!("{name}: {}", file.distribution_label()));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_parameters() {
        let r = run(&Scale::quick());
        assert_eq!(r.bar("u(15)", "p"), Some(15.0));
        assert_eq!(r.bar("arap1", "p"), Some(21.0));
        assert_eq!(r.bar("arap2", "p"), Some(18.0));
        assert_eq!(r.bar("iw", "p"), Some(21.0));
        assert_eq!(r.bars.len(), 14 * 4);
    }

    #[test]
    fn duplicate_structure_varies_as_intended() {
        let r = run(&Scale::quick());
        // Small-domain normal file duplicates heavily; large-domain uniform
        // barely at all; census is the most extreme.
        let freq = |f: &str| r.bar(f, "avg freq").unwrap();
        assert!(freq("n(10)") > 5.0, "n(10) avg freq {}", freq("n(10)"));
        assert!(freq("u(20)") < 1.1, "u(20) avg freq {}", freq("u(20)"));
        assert!(
            freq("iw") > 5.0 * freq("u(20)"),
            "iw should duplicate heavily"
        );
    }
}
