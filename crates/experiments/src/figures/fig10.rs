//! Figure 10: boundary treatments compared — relative error of 1 % queries
//! as a function of the query position on uniform data, for the untreated
//! kernel estimator, the reflection technique, and boundary kernels. Both
//! treatments collapse the boundary error; boundary kernels win slightly in
//! most cases.

use selest_core::SelectivityEstimator;
use selest_data::{positional_sweep, PaperFile};
use selest_kernel::BoundaryPolicy;

use crate::context::FileContext;
use crate::harness::{ExperimentReport, Scale, Series};
use crate::methods;

/// Run the three-policy sweep.
pub fn run(scale: &Scale) -> ExperimentReport {
    let ctx = FileContext::build(PaperFile::Uniform { p: 20 }, scale);
    let n = ctx.exact.total();
    let sweep = positional_sweep(&ctx.data.domain(), 0.01, scale.sweep_points);
    let width = ctx.data.domain().width();
    let mut report = ExperimentReport::new(
        "fig10",
        "Relative error of 1% queries vs. position: boundary treatments (uniform data)",
        "position (fraction of domain)",
        "relative error",
    );
    for (policy, label) in [
        (BoundaryPolicy::NoTreatment, "no treatment"),
        (BoundaryPolicy::Reflection, "reflection"),
        (BoundaryPolicy::BoundaryKernel, "boundary kernels"),
    ] {
        let est = methods::kernel_ns(&ctx, policy);
        let points: Vec<(f64, f64)> = sweep
            .iter()
            .filter_map(|(center, q)| {
                let truth = ctx.exact.count(q) as f64;
                if truth == 0.0 {
                    return None;
                }
                let err = (est.estimate_count(q, n) - truth).abs() / truth;
                Some((center / width, err))
            })
            .collect();
        report.series.push(Series {
            label: label.into(),
            points,
        });
    }
    report.notes.push(
        "paper: both treatments remove the boundary blow-up; boundary kernels are slightly \
         better than reflection in almost all cases"
            .into(),
    );
    report
}

/// Mean relative error within the boundary strips (first/last 3% of
/// positions) for the series with the given label.
pub fn boundary_error(report: &ExperimentReport, label: &str) -> f64 {
    let s = report.series_by_label(label).expect("series exists");
    let (mut sum, mut n) = (0.0, 0usize);
    for &(pos, err) in &s.points {
        if !(0.03..=0.97).contains(&pos) {
            sum += err;
            n += 1;
        }
    }
    sum / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn treatments_collapse_the_boundary_error() {
        let r = run(&Scale::quick());
        let untreated = boundary_error(&r, "no treatment");
        let reflected = boundary_error(&r, "reflection");
        let bk = boundary_error(&r, "boundary kernels");
        assert!(
            untreated > 3.0 * reflected,
            "reflection: {untreated} -> {reflected}"
        );
        assert!(
            untreated > 3.0 * bk,
            "boundary kernels: {untreated} -> {bk}"
        );
    }

    #[test]
    fn interior_errors_are_policy_independent() {
        let r = run(&Scale::quick());
        // Compare mid-domain points across the three series.
        let mid = |label: &str| {
            let s = r.series_by_label(label).unwrap();
            let pts: Vec<f64> = s
                .points
                .iter()
                .filter(|(p, _)| (0.4..=0.6).contains(p))
                .map(|&(_, e)| e)
                .collect();
            pts.iter().sum::<f64>() / pts.len() as f64
        };
        let a = mid("no treatment");
        let b = mid("reflection");
        let c = mid("boundary kernels");
        assert!((a - b).abs() < 1e-9, "interior: {a} vs {b}");
        assert!((a - c).abs() < 1e-9, "interior: {a} vs {c}");
    }
}
