//! Figure 9: how close does the normal scale rule get to the oracle bin
//! count? Per file: EWH at the observed-optimal bins (`h-opt`) vs. EWH at
//! the normal-scale bins (`h-NS`). The paper finds the rule lands within
//! about 3 percentage points of optimal on average.

use selest_data::PaperFile;

use crate::context::FileContext;
use crate::harness::{evaluate, ExperimentReport, Scale};
use crate::methods;
use crate::oracle::oracle_bins;

/// Run over the headline files.
pub fn run(scale: &Scale) -> ExperimentReport {
    run_with_files(scale, &PaperFile::headline())
}

/// Run over an explicit file set.
pub fn run_with_files(scale: &Scale, files: &[PaperFile]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig09",
        "EWH: oracle bin count (h-opt) vs. normal scale rule (h-NS), 1% queries",
        "file",
        "MRE",
    );
    for file in files {
        let ctx = FileContext::build(*file, scale);
        let queries = ctx.query_file(0.01).queries();
        let group = ctx.data.name().to_owned();
        let (k_opt, opt_mre) = oracle_bins(&ctx, queries, 1_000);
        report.bars.push((group.clone(), "h-opt".into(), opt_mre));
        let ns = methods::ewh_ns(&ctx);
        let k_ns = ns.n_bins();
        report.bars.push((
            group.clone(),
            "h-NS".into(),
            evaluate(&ns, queries, &ctx.exact).mean_relative_error(),
        ));
        report
            .notes
            .push(format!("{group}: k-opt = {k_opt}, k-NS = {k_ns}"));
    }
    report.notes.push(
        "paper: the normal scale rule costs ~3 MRE percentage points vs. the oracle on average"
            .into(),
    );
    report
}

/// Mean excess MRE (percentage points) of h-NS over h-opt across groups.
pub fn mean_excess(report: &ExperimentReport) -> f64 {
    let mut groups: Vec<&String> = report.bars.iter().map(|b| &b.0).collect();
    groups.dedup();
    let mut total = 0.0;
    let mut n = 0usize;
    for g in groups {
        if let (Some(opt), Some(ns)) = (report.bar(g, "h-opt"), report.bar(g, "h-NS")) {
            total += ns - opt;
            n += 1;
        }
    }
    total / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_scale_is_close_to_oracle_on_smooth_data() {
        let r = run_with_files(
            &Scale::quick(),
            &[PaperFile::Normal { p: 20 }, PaperFile::Uniform { p: 20 }],
        );
        for g in ["n(20)", "u(20)"] {
            let opt = r.bar(g, "h-opt").unwrap();
            let ns = r.bar(g, "h-NS").unwrap();
            assert!(ns >= opt - 1e-12, "{g}: oracle must win by construction");
            assert!(
                ns - opt < 0.08,
                "{g}: h-NS ({ns}) should be within ~8 points of h-opt ({opt}) on smooth data"
            );
        }
        assert!(mean_excess(&r) < 0.08, "mean excess {}", mean_excess(&r));
    }
}
