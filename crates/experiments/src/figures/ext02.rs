//! Extension experiment 2: change-point detectors for the hybrid
//! estimator — the paper's Section 3.3 leaves "whether other methods for
//! change point detection are more effective" to future work. We compare
//! the paper's second-derivative-maxima detector against the CUSUM/KS
//! binary segmentation, per data file.

use selest_data::PaperFile;
use selest_hybrid::{CusumDetector, HybridConfig, HybridEstimator, SecondDerivativeDetector};

use crate::context::FileContext;
use crate::harness::{evaluate, ExperimentReport, Scale};

/// Run over the headline files.
pub fn run(scale: &Scale) -> ExperimentReport {
    run_with_files(scale, &PaperFile::headline())
}

/// Run over an explicit file set.
pub fn run_with_files(scale: &Scale, files: &[PaperFile]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "ext02",
        "Hybrid estimator: change-point detectors compared (1% queries)",
        "file",
        "MRE",
    );
    for file in files {
        let ctx = FileContext::build(*file, scale);
        let queries = ctx.query_file(0.01).queries();
        let group = ctx.data.name().to_owned();
        let configs: Vec<(&str, HybridConfig)> = vec![
            (
                "f''-maxima",
                HybridConfig {
                    detector: Box::new(SecondDerivativeDetector::default()),
                    ..Default::default()
                },
            ),
            (
                "CUSUM-KS",
                HybridConfig {
                    detector: Box::new(CusumDetector::default()),
                    ..Default::default()
                },
            ),
        ];
        for (label, cfg) in configs {
            let est = HybridEstimator::with_config(&ctx.sample, ctx.data.domain(), &cfg);
            let mre = evaluate(&est, queries, &ctx.exact).mean_relative_error();
            report.bars.push((group.clone(), label.into(), mre));
            report
                .notes
                .push(format!("{group} / {label}: {} bins", est.n_bins()));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_detectors_produce_working_hybrids() {
        let r = run_with_files(
            &Scale::quick(),
            &[PaperFile::Arapahoe1, PaperFile::Normal { p: 20 }],
        );
        for file in ["arap1", "n(20)"] {
            for det in ["f''-maxima", "CUSUM-KS"] {
                let mre = r.bar(file, det).unwrap();
                assert!(mre.is_finite() && mre < 1.5, "{file}/{det}: MRE {mre}");
            }
        }
        // On the spiky file both must do far better than they would with no
        // partitioning (compare against a sanity ceiling).
        for det in ["f''-maxima", "CUSUM-KS"] {
            let mre = r.bar("arap1", det).unwrap();
            assert!(
                mre < 0.6,
                "arap1/{det}: MRE {mre} suggests partitioning failed"
            );
        }
    }
}
