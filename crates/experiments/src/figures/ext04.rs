//! Extension experiment 4: empirical MISE against the AMISE theory of
//! Section 4.
//!
//! For a known truth (the standard normal mapped onto the domain), the
//! mean integrated squared error over repeated sample draws is computed
//! for the equi-width histogram and the kernel estimator at a sweep of
//! smoothing parameters, next to the closed-form AMISE curves — making the
//! bias/variance trade-off of equation (9) and the `n^{-2/3}` vs
//! `n^{-4/5}` story directly visible.

use rand::SeedableRng;
use selest_core::{integrated_squared_error, DensityEstimator, Domain};
use selest_data::{ContinuousDistribution, Normal};
use selest_histogram::{amise_histogram, equi_width};
use selest_kernel::{amise, BoundaryPolicy, KernelEstimator, KernelFn};

use crate::harness::{ExperimentReport, Scale, Series};

/// Number of independent sample draws averaged per point.
const REPS: u64 = 6;

/// Run the MISE sweep.
pub fn run(scale: &Scale) -> ExperimentReport {
    let sigma = 100.0;
    let dist = Normal::new(500.0, sigma);
    let domain = Domain::new(0.0, 1_000.0);
    let n = scale.sample_size;

    // True roughness functionals of the N(500, 100) density.
    let r_f_prime = 1.0 / (4.0 * core::f64::consts::PI.sqrt() * sigma.powi(3));
    let r_f_second = 3.0 / (8.0 * core::f64::consts::PI.sqrt() * sigma.powi(5));

    let draw = |seed: u64| -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        std::iter::repeat_with(|| dist.sample(&mut rng))
            .filter(|v| domain.contains(*v))
            .take(n)
            .collect()
    };
    let mise = |build: &dyn Fn(&[f64]) -> Box<dyn DensityEstimator>| -> f64 {
        let mut total = 0.0;
        for rep in 0..REPS {
            let sample = draw(0xe04 + rep);
            let est = build(&sample);
            total += integrated_squared_error(est.as_ref(), |x| dist.pdf(x), 1_500);
        }
        total / REPS as f64
    };

    let mut report = ExperimentReport::new(
        "ext04",
        "Empirical MISE vs. the AMISE theory (normal truth)",
        "smoothing parameter h",
        "(A)MISE",
    );
    // Histogram: bin widths from w/200 to w/4.
    let mut hist_emp = Vec::new();
    let mut hist_amise = Vec::new();
    for &k in &[4usize, 8, 16, 32, 64, 128] {
        let h = domain.width() / k as f64;
        hist_emp.push((h, mise(&|s: &[f64]| Box::new(equi_width(s, domain, k)))));
        hist_amise.push((h, amise_histogram(h, n, r_f_prime)));
    }
    hist_emp.reverse();
    hist_amise.reverse();
    report.series.push(Series {
        label: "EWH empirical".into(),
        points: hist_emp,
    });
    report.series.push(Series {
        label: "EWH AMISE".into(),
        points: hist_amise,
    });

    // Kernel: bandwidths around the AMISE optimum.
    let h_star = selest_kernel::amise_optimal_bandwidth(KernelFn::Epanechnikov, n, r_f_second);
    let mut k_emp = Vec::new();
    let mut k_amise = Vec::new();
    for &f in &[0.25, 0.5, 1.0, 2.0, 4.0] {
        let h = h_star * f;
        k_emp.push((
            h,
            mise(&|s: &[f64]| {
                Box::new(KernelEstimator::new(
                    s,
                    domain,
                    KernelFn::Epanechnikov,
                    h,
                    BoundaryPolicy::Reflection,
                ))
            }),
        ));
        k_amise.push((h, amise(KernelFn::Epanechnikov, h, n, r_f_second)));
    }
    report.series.push(Series {
        label: "kernel empirical".into(),
        points: k_emp,
    });
    report.series.push(Series {
        label: "kernel AMISE".into(),
        points: k_amise,
    });
    report.notes.push(format!(
        "n = {n}, truth N(500, {sigma}); kernel AMISE optimum h* = {h_star:.1}; \
         REPS = {REPS} draws per point"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_mise_tracks_amise_shape() {
        let mut scale = Scale::quick();
        scale.sample_size = 500;
        let r = run(&scale);
        // Kernel: empirical minimum near the AMISE-optimal bandwidth
        // (the middle of the sweep by construction), and within 3x of the
        // AMISE value there.
        let emp = r.series_by_label("kernel empirical").unwrap();
        let theory = r.series_by_label("kernel AMISE").unwrap();
        let best_emp = emp.argmin();
        let best_theory = theory.argmin();
        assert!(
            (best_emp / best_theory) < 4.0 && (best_emp / best_theory) > 0.25,
            "empirical optimum {best_emp} far from theory {best_theory}"
        );
        let at = |s: &crate::harness::Series, x: f64| {
            s.points.iter().find(|p| p.0 == x).map(|p| p.1).unwrap()
        };
        let ratio = at(emp, best_theory) / at(theory, best_theory);
        assert!(
            (0.3..3.0).contains(&ratio),
            "empirical/AMISE ratio {ratio} at the optimum"
        );
        // Both histogram curves are U-shaped (endpoints above minimum).
        let h_emp = r.series_by_label("EWH empirical").unwrap();
        assert!(h_emp.points.first().unwrap().1 > h_emp.y_min());
        assert!(h_emp.points.last().unwrap().1 > h_emp.y_min());
    }

    #[test]
    fn kernel_mise_beats_histogram_mise_at_their_optima() {
        let mut scale = Scale::quick();
        scale.sample_size = 500;
        let r = run(&scale);
        let k = r.series_by_label("kernel empirical").unwrap().y_min();
        let h = r.series_by_label("EWH empirical").unwrap().y_min();
        assert!(k < h, "kernel best MISE {k} should beat histogram {h}");
    }
}
