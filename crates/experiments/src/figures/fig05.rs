//! Figure 5: the impact of the domain cardinality — the bin-count sweep of
//! Figure 4 repeated for `n(10)`, `n(15)`, `n(20)`. Smaller domains mean
//! more duplicates per value and *lower* errors; the paper concludes that
//! large metric domains are the hard (and interesting) case.

use selest_data::PaperFile;

use crate::figures::fig04;
use crate::harness::{ExperimentReport, Scale};

/// Run the three-cardinality sweep.
pub fn run(scale: &Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig05",
        "EWH MRE vs. bins for domain cardinalities p = 10, 15, 20 (1% queries)",
        "bins",
        "MRE",
    );
    for p in [10u32, 15, 20] {
        let sub = fig04::run_on(scale, PaperFile::Normal { p });
        let mut s = sub.series[0].clone();
        s.label = format!("n({p})");
        report.series.push(s);
    }
    report
        .notes
        .push("paper: the error is considerably higher for large domain cardinalities".into());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_domains_have_larger_minimum_error() {
        // At Scale::quick the p=10/p=20 gap sits inside sampling noise;
        // halving the record divisor restores the paper's ordering with a
        // ~20% margin while keeping the test in CI-friendly time.
        let scale = Scale {
            record_divisor: 5,
            ..Scale::quick()
        };
        let r = run(&scale);
        let best: Vec<f64> = r.series.iter().map(|s| s.y_min()).collect();
        // p = 10 easiest, p = 20 hardest (allow p=15 ~ p=20 noise, but the
        // extremes must be ordered).
        assert!(
            best[0] < best[2],
            "n(10) best {} should be below n(20) best {}",
            best[0],
            best[2]
        );
    }
}
