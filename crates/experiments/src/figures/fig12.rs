//! Figure 12: the final comparison of the most promising estimators on 1 %
//! queries — equi-width histogram (normal-scale bins), kernel estimator
//! (boundary kernels, two-stage plug-in bandwidth), hybrid estimator, and
//! the average shifted histogram (ten shifts).
//!
//! The paper's headline: kernels win on the smooth synthetic files
//! (ASH close behind), the hybrid wins on the TIGER/Line files, and on the
//! census file every method performs about the same.

use selest_data::PaperFile;
use selest_kernel::BoundaryPolicy;

use crate::context::FileContext;
use crate::harness::{evaluate, ExperimentReport, Scale};
use crate::methods;

/// Run over the headline files.
pub fn run(scale: &Scale) -> ExperimentReport {
    run_with_files(scale, &PaperFile::headline())
}

/// Run over an explicit file set.
pub fn run_with_files(scale: &Scale, files: &[PaperFile]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig12",
        "Most promising estimators on 1% queries: EWH, Kernel, Hybrid, ASH",
        "file",
        "MRE",
    );
    for file in files {
        let ctx = FileContext::build(*file, scale);
        let queries = ctx.query_file(0.01).queries();
        let group = ctx.data.name().to_owned();
        report.bars.push((
            group.clone(),
            "EWH".into(),
            evaluate(&methods::ewh_ns(&ctx), queries, &ctx.exact).mean_relative_error(),
        ));
        report.bars.push((
            group.clone(),
            "Kernel".into(),
            evaluate(
                &methods::kernel_dpi2(&ctx, BoundaryPolicy::BoundaryKernel),
                queries,
                &ctx.exact,
            )
            .mean_relative_error(),
        ));
        report.bars.push((
            group.clone(),
            "Hybrid".into(),
            evaluate(&methods::hybrid(&ctx), queries, &ctx.exact).mean_relative_error(),
        ));
        report.bars.push((
            group.clone(),
            "ASH".into(),
            evaluate(&methods::ash_ns(&ctx), queries, &ctx.exact).mean_relative_error(),
        ));
    }
    report.notes.push(
        "paper: kernel best on u(20)/n(20)/e(20) with ASH slightly behind; hybrid best on the \
         TIGER files; near-tie on the census file"
            .into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_wins_on_smooth_synthetic_data() {
        let r = run_with_files(&Scale::quick(), &[PaperFile::Normal { p: 20 }]);
        let kernel = r.bar("n(20)", "Kernel").unwrap();
        let ewh = r.bar("n(20)", "EWH").unwrap();
        assert!(
            kernel <= ewh * 1.05,
            "kernel ({kernel}) should match or beat EWH ({ewh}) on n(20)"
        );
    }

    #[test]
    fn hybrid_wins_on_tiger_like_data() {
        let r = run_with_files(&Scale::quick(), &[PaperFile::Arapahoe1]);
        let hybrid = r.bar("arap1", "Hybrid").unwrap();
        let kernel = r.bar("arap1", "Kernel").unwrap();
        let ewh = r.bar("arap1", "EWH").unwrap();
        assert!(
            hybrid < kernel && hybrid < ewh,
            "hybrid ({hybrid}) should beat kernel ({kernel}) and EWH ({ewh}) on arap1"
        );
    }

    #[test]
    fn census_file_is_a_near_tie() {
        let r = run_with_files(&Scale::quick(), &[PaperFile::InstanceWeight]);
        let values: Vec<f64> = ["EWH", "Kernel", "Hybrid", "ASH"]
            .iter()
            .map(|m| r.bar("iw", m).unwrap())
            .collect();
        let best = values.iter().copied().fold(f64::INFINITY, f64::min);
        let worst = values.iter().copied().fold(0.0, f64::max);
        // "almost no difference": within a moderate band of each other.
        assert!(
            worst < best * 3.0 + 0.05,
            "iw spread too wide: best {best}, worst {worst}"
        );
    }
}
