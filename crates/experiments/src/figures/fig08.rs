//! Figure 8: histogram shoot-out — equi-width, equi-depth and max-diff
//! (each at its observed-optimal bin count), pure sampling, and the uniform
//! estimator, on 1 % queries. On large metric domains the paper finds
//! EWH >= EDH > MDH, the reverse of the small-domain literature, and the
//! uniform estimator loses catastrophically on skewed files.

use selest_data::PaperFile;

use crate::context::FileContext;
use crate::harness::{evaluate, ExperimentReport, Scale};
use crate::methods;
use crate::oracle::oracle_bins;

/// Maximum bin count explored by the per-file oracle search.
const MAX_BINS: usize = 1_000;

/// Run over the headline files.
pub fn run(scale: &Scale) -> ExperimentReport {
    run_with_files(scale, &PaperFile::headline())
}

/// Run over an explicit file set.
pub fn run_with_files(scale: &Scale, files: &[PaperFile]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig08",
        "Histogram estimators at oracle bin counts vs. sampling and uniform (1% queries)",
        "file",
        "MRE",
    );
    for file in files {
        let ctx = FileContext::build(*file, scale);
        let qf = ctx.query_file(0.01);
        let queries = qf.queries();
        let group = ctx.data.name().to_owned();
        // Oracle bins are searched for EWH; the paper observes the same
        // optimum is "also reasonable for other histograms".
        let (k_opt, ewh_mre) = oracle_bins(&ctx, queries, MAX_BINS);
        report.bars.push((group.clone(), "EWH".into(), ewh_mre));
        report.bars.push((
            group.clone(),
            "EDH".into(),
            evaluate(&methods::edh(&ctx, k_opt), queries, &ctx.exact).mean_relative_error(),
        ));
        report.bars.push((
            group.clone(),
            "MDH".into(),
            evaluate(&methods::mdh(&ctx, k_opt), queries, &ctx.exact).mean_relative_error(),
        ));
        report.bars.push((
            group.clone(),
            "sample".into(),
            evaluate(&methods::sampling(&ctx), queries, &ctx.exact).mean_relative_error(),
        ));
        report.bars.push((
            group.clone(),
            "uniform".into(),
            evaluate(&methods::uniform(&ctx), queries, &ctx.exact).mean_relative_error(),
        ));
        report
            .notes
            .push(format!("{group}: oracle bins k = {k_opt}"));
    }
    report.notes.push(
        "paper: uniform loses by orders of magnitude on skewed data (600% on ci); \
         EWH is the overall histogram winner on large metric domains"
            .into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_loses_big_on_skewed_data_and_histograms_beat_sampling() {
        let r = run_with_files(&Scale::quick(), &[PaperFile::Exponential { p: 20 }]);
        let uniform = r.bar("e(20)", "uniform").unwrap();
        let ewh = r.bar("e(20)", "EWH").unwrap();
        let sample = r.bar("e(20)", "sample").unwrap();
        assert!(uniform > 5.0 * ewh, "uniform {uniform} vs EWH {ewh}");
        assert!(ewh < sample, "EWH {ewh} should beat sampling {sample}");
    }

    #[test]
    fn ewh_at_oracle_bins_is_competitive_with_edh_and_mdh() {
        let r = run_with_files(&Scale::quick(), &[PaperFile::Normal { p: 20 }]);
        let ewh = r.bar("n(20)", "EWH").unwrap();
        let edh = r.bar("n(20)", "EDH").unwrap();
        let mdh = r.bar("n(20)", "MDH").unwrap();
        // The paper's claim on large metric domains: EWH at least matches
        // EDH and clearly beats MDH. Allow small noise slack on EDH.
        assert!(ewh <= edh * 1.2, "EWH {ewh} vs EDH {edh}");
        assert!(ewh < mdh, "EWH {ewh} vs MDH {mdh}");
    }
}
