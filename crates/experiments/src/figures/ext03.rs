//! Extension experiment 3: the full estimator zoo — everything this
//! workspace implements (the paper's methods plus the wavelet histogram,
//! v-optimal histogram, adaptive kernel, and LSCV bandwidths) on the
//! headline files, 1 % queries. The "Figure 12 of the extended system".

use selest_core::SelectivityEstimator;
use selest_data::PaperFile;
use selest_histogram::{v_optimal, BinRule, NormalScaleBins, WaveletHistogram};
use selest_kernel::{
    AdaptiveBoundary, AdaptiveKernelEstimator, BandwidthSelector, BoundaryPolicy, KernelFn, Lscv,
    NormalScale,
};

use crate::context::FileContext;
use crate::harness::{evaluate, ExperimentReport, Scale};
use crate::methods;

/// Run over the headline files.
pub fn run(scale: &Scale) -> ExperimentReport {
    run_with_files(scale, &PaperFile::headline())
}

/// Run over an explicit file set.
pub fn run_with_files(scale: &Scale, files: &[PaperFile]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "ext03",
        "The full estimator zoo on 1% queries (paper methods + extensions)",
        "file",
        "MRE",
    );
    for file in files {
        let ctx = FileContext::build(*file, scale);
        let queries = ctx.query_file(0.01).queries();
        let group = ctx.data.name().to_owned();
        let domain = ctx.data.domain();
        let k = NormalScaleBins.bins(&ctx.sample, &domain);

        let mut record = |label: &str, est: &(dyn SelectivityEstimator + Sync)| {
            let mre = evaluate(est, queries, &ctx.exact).mean_relative_error();
            report.bars.push((group.clone(), label.into(), mre));
        };
        record("sampling", &methods::sampling(&ctx));
        record("EWH", &methods::ewh_ns(&ctx));
        record("EDH", &methods::edh(&ctx, k));
        record("MDH", &methods::mdh(&ctx, k));
        record("VOPT", &v_optimal(&ctx.sample, domain, k, 256));
        record("ASH", &methods::ash_ns(&ctx));
        {
            // Fine grid with ~4 samples per cell: finer grids keep noise
            // spikes among the retained coefficients.
            let grid_log2 = ((ctx.sample.len() / 4).max(2) as f64).log2().floor() as u32;
            let grid_log2 = grid_log2.clamp(4, 12);
            record(
                "Wavelet",
                &WaveletHistogram::build(&ctx.sample, domain, grid_log2, 4 * k),
            );
        }
        record(
            "Kernel",
            &methods::kernel_dpi2(&ctx, BoundaryPolicy::BoundaryKernel),
        );
        {
            let h = Lscv
                .bandwidth(&ctx.sample, KernelFn::Epanechnikov)
                .min(0.5 * domain.width());
            record(
                "Kernel-LSCV",
                &methods::kernel(&ctx, BoundaryPolicy::BoundaryKernel, h),
            );
        }
        {
            let h0 = NormalScale.bandwidth(&ctx.sample, KernelFn::Epanechnikov);
            record(
                "AdaptiveK",
                &AdaptiveKernelEstimator::new(
                    &ctx.sample,
                    domain,
                    KernelFn::Epanechnikov,
                    h0,
                    0.5,
                    AdaptiveBoundary::Reflection,
                ),
            );
        }
        record("Hybrid", &methods::hybrid(&ctx));
    }
    report.notes.push(
        "wavelet budget = 4x the normal-scale bin count (same storage order as the \
         histograms); adaptive kernel: Abramson alpha = 1/2 on an h-NS pilot"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_method_runs_and_the_extensions_are_competitive() {
        let r = run_with_files(&Scale::quick(), &[PaperFile::Normal { p: 20 }]);
        let methods = [
            "sampling",
            "EWH",
            "EDH",
            "MDH",
            "VOPT",
            "ASH",
            "Wavelet",
            "Kernel",
            "Kernel-LSCV",
            "AdaptiveK",
            "Hybrid",
        ];
        for m in methods {
            let mre = r.bar("n(20)", m).unwrap_or_else(|| panic!("{m} missing"));
            assert!(mre.is_finite() && mre >= 0.0, "{m}: MRE {mre}");
            assert!(mre < 1.0, "{m}: MRE {mre} out of sane range on n(20)");
        }
        // The wavelet histogram with 4x budget should at least match plain
        // sampling on smooth data.
        let wavelet = r.bar("n(20)", "Wavelet").unwrap();
        let sampling = r.bar("n(20)", "sampling").unwrap();
        assert!(
            wavelet < sampling,
            "wavelet ({wavelet}) should beat sampling ({sampling})"
        );
    }
}
