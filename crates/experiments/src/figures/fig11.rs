//! Figure 11: bandwidth selection — the kernel estimator (boundary kernels)
//! at the oracle bandwidth (`h-opt`), the normal scale rule (`h-NS`), and
//! the two-stage direct plug-in rule (`h-DPI2`), per data file, 1 %
//! queries. The paper: h-NS suffices on synthetic data but fails on the
//! real files, where DPI clearly wins (while still trailing the oracle by
//! up to 5 points).

use selest_data::PaperFile;
use selest_kernel::BoundaryPolicy;

use crate::context::FileContext;
use crate::harness::{evaluate, ExperimentReport, Scale};
use crate::methods;
use crate::oracle::oracle_bandwidth;

/// Run over the headline files.
pub fn run(scale: &Scale) -> ExperimentReport {
    run_with_files(scale, &PaperFile::headline())
}

/// Run over an explicit file set.
pub fn run_with_files(scale: &Scale, files: &[PaperFile]) -> ExperimentReport {
    let policy = BoundaryPolicy::BoundaryKernel;
    let mut report = ExperimentReport::new(
        "fig11",
        "Kernel estimator: oracle (h-opt) vs. normal scale (h-NS) vs. plug-in (h-DPI2), 1% queries",
        "file",
        "MRE",
    );
    for file in files {
        let ctx = FileContext::build(*file, scale);
        let queries = ctx.query_file(0.01).queries();
        let group = ctx.data.name().to_owned();
        let (h_opt, opt_mre) = oracle_bandwidth(&ctx, queries, policy);
        report.bars.push((group.clone(), "h-opt".into(), opt_mre));
        let ns = methods::kernel_ns(&ctx, policy);
        report.bars.push((
            group.clone(),
            "h-NS".into(),
            evaluate(&ns, queries, &ctx.exact).mean_relative_error(),
        ));
        let dpi = methods::kernel_dpi2(&ctx, policy);
        report.bars.push((
            group.clone(),
            "h-DPI2".into(),
            evaluate(&dpi, queries, &ctx.exact).mean_relative_error(),
        ));
        report.notes.push(format!(
            "{group}: h-opt = {h_opt:.1}, h-NS = {:.1}, h-DPI2 = {:.1}",
            ns.bandwidth(),
            dpi.bandwidth()
        ));
    }
    report.notes.push(
        "paper: h-NS good on synthetic files, high errors on real files where h-DPI2 \
         clearly outperforms it"
            .into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_scale_is_fine_on_synthetic_data() {
        let r = run_with_files(&Scale::quick(), &[PaperFile::Normal { p: 20 }]);
        let opt = r.bar("n(20)", "h-opt").unwrap();
        let ns = r.bar("n(20)", "h-NS").unwrap();
        assert!(ns - opt < 0.06, "h-NS {ns} vs h-opt {opt} on normal data");
    }

    #[test]
    fn plug_in_beats_normal_scale_on_spiky_real_data() {
        let r = run_with_files(&Scale::quick(), &[PaperFile::Arapahoe1]);
        let ns = r.bar("arap1", "h-NS").unwrap();
        let dpi = r.bar("arap1", "h-DPI2").unwrap();
        assert!(
            dpi < ns,
            "on arap1 the plug-in ({dpi}) should beat the normal scale rule ({ns})"
        );
    }
}
