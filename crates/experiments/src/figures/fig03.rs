//! Figure 3: the boundary problem. Signed absolute estimation error of 1 %
//! queries as a function of the query position, uniform data, untreated
//! kernel estimator — errors explode near the domain boundaries.

use selest_core::SelectivityEstimator;
use selest_data::{positional_sweep, PaperFile};
use selest_kernel::BoundaryPolicy;

use crate::context::FileContext;
use crate::harness::{ExperimentReport, Scale, Series};
use crate::methods;

/// Run the Figure 3 sweep.
pub fn run(scale: &Scale) -> ExperimentReport {
    let ctx = FileContext::build(PaperFile::Uniform { p: 20 }, scale);
    let est = methods::kernel_ns(&ctx, BoundaryPolicy::NoTreatment);
    let n = ctx.exact.total();
    let sweep = positional_sweep(&ctx.data.domain(), 0.01, scale.sweep_points);
    let width = ctx.data.domain().width();
    let points: Vec<(f64, f64)> = sweep
        .iter()
        .map(|(center, q)| {
            let truth = ctx.exact.count(q) as f64;
            let err = est.estimate_count(q, n) - truth; // signed, as in the paper
            (center / width, err)
        })
        .collect();
    let mut report = ExperimentReport::new(
        "fig03",
        "Signed absolute error of 1% queries vs. position (uniform data, untreated kernel)",
        "position (fraction of domain)",
        "signed absolute error (records)",
    );
    report.series.push(Series {
        label: "no boundary treatment".into(),
        points,
    });
    report.notes.push(format!(
        "N = {n}, n = {}, h = {:.0} (normal scale rule)",
        ctx.sample.len(),
        est.bandwidth()
    ));
    report.notes.push(
        "the paper reports errors up to ~500 records at the boundary vs. near zero in the center"
            .into(),
    );
    report
}

/// Shape statistics used by the assertions: mean |error| in the two
/// boundary strips vs. the central half.
pub fn boundary_vs_center(report: &ExperimentReport) -> (f64, f64) {
    let s = &report.series[0];
    let (mut b_sum, mut b_n, mut c_sum, mut c_n) = (0.0, 0usize, 0.0, 0usize);
    for &(pos, err) in &s.points {
        if !(0.03..=0.97).contains(&pos) {
            b_sum += err.abs();
            b_n += 1;
        } else if (0.25..=0.75).contains(&pos) {
            c_sum += err.abs();
            c_n += 1;
        }
    }
    (b_sum / b_n.max(1) as f64, c_sum / c_n.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_error_dwarfs_center_error() {
        let r = run(&Scale::quick());
        let (boundary, center) = boundary_vs_center(&r);
        assert!(
            boundary > 3.0 * center,
            "boundary mean |err| {boundary} vs center {center}"
        );
    }

    #[test]
    fn errors_at_the_two_boundaries_are_negative() {
        // Mass leaks outward: the estimator underestimates at the edges.
        let r = run(&Scale::quick());
        let s = &r.series[0];
        let first = s.points.first().unwrap().1;
        let last = s.points.last().unwrap().1;
        assert!(first < 0.0, "left-edge error {first} should be negative");
        assert!(last < 0.0, "right-edge error {last} should be negative");
    }
}
