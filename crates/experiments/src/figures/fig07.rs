//! Figure 7: the impact of the query size — MRE of the equi-width
//! histogram (normal-scale bins) for the 1 %, 2 %, 5 % and 10 % query
//! files over several data files. Error falls as queries grow.

use selest_data::PaperFile;

use crate::context::FileContext;
use crate::harness::{evaluate, ExperimentReport, Scale};
use crate::methods;

/// Run over the headline files.
pub fn run(scale: &Scale) -> ExperimentReport {
    run_with_files(scale, &PaperFile::headline())
}

/// Run over an explicit file set.
pub fn run_with_files(scale: &Scale, files: &[PaperFile]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig07",
        "EWH (h-NS) MRE for 1/2/5/10% query files",
        "file",
        "MRE",
    );
    for file in files {
        let ctx = FileContext::build(*file, scale);
        let est = methods::ewh_ns(&ctx);
        for qf in &ctx.queries {
            let mre = evaluate(&est, qf.queries(), &ctx.exact).mean_relative_error();
            report.bars.push((
                ctx.data.name().to_owned(),
                format!("{:.0}%", qf.size_fraction() * 100.0),
                mre,
            ));
        }
    }
    report
        .notes
        .push("paper (arap2): 17.5% MRE for 1% queries vs. 4.5% for 10% queries".into());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_falls_as_query_size_grows() {
        let r = run_with_files(
            &Scale::quick(),
            &[PaperFile::Normal { p: 20 }, PaperFile::Uniform { p: 20 }],
        );
        for file in ["n(20)", "u(20)"] {
            let small = r.bar(file, "1%").unwrap();
            let large = r.bar(file, "10%").unwrap();
            assert!(
                large < small,
                "{file}: 10% queries ({large}) should be easier than 1% ({small})"
            );
        }
    }
}
