//! Extension experiment 5: streaming vs. batch ANALYZE.
//!
//! A production ANALYZE cannot always hold a sample: the Greenwald–Khanna
//! sketch builds equi-depth boundaries in one pass with bounded memory.
//! This experiment compares three equi-depth variants on the paper's
//! files: boundaries from the 2 000-record sample (the paper's setting),
//! boundaries from a GK sketch over the *entire* file (streaming, no
//! sample), and boundaries from exact full-file quantiles (the ideal).

use selest_data::{GkSketch, PaperFile};
use selest_histogram::{equi_depth, equi_depth_from_boundaries, BinRule, NormalScaleBins};

use crate::context::FileContext;
use crate::harness::{evaluate, ExperimentReport, Scale};

/// Run over a compact representative file set.
pub fn run(scale: &Scale) -> ExperimentReport {
    run_with_files(
        scale,
        &[
            PaperFile::Normal { p: 20 },
            PaperFile::Exponential { p: 20 },
            PaperFile::Arapahoe1,
        ],
    )
}

/// Run over an explicit file set.
pub fn run_with_files(scale: &Scale, files: &[PaperFile]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "ext05",
        "Equi-depth ANALYZE: sample vs. streaming GK sketch vs. exact quantiles (1% queries)",
        "file",
        "MRE",
    );
    for file in files {
        let ctx = FileContext::build(*file, scale);
        let queries = ctx.query_file(0.01).queries();
        let group = ctx.data.name().to_owned();
        let domain = ctx.data.domain();
        let k = NormalScaleBins.bins(&ctx.sample, &domain);

        // 1. The paper's setting: quantiles of the 2 000-record sample.
        let sample_edh = equi_depth(&ctx.sample, domain, k);
        report.bars.push((
            group.clone(),
            "sample".into(),
            evaluate(&sample_edh, queries, &ctx.exact).mean_relative_error(),
        ));

        // 2. Streaming: one GK pass over the whole file, epsilon chosen so
        //    the rank error is well below a bin's depth.
        let epsilon = (0.1 / k as f64).clamp(1e-4, 0.01);
        let mut sketch = GkSketch::new(epsilon);
        for &v in ctx.data.values() {
            sketch.insert(v);
        }
        let boundaries = sketch.equi_depth_boundaries(k, domain.lo(), domain.hi());
        // The one shared sketch→histogram path (also the catalog's
        // incremental ANALYZE route).
        let gk_edh = equi_depth_from_boundaries(boundaries, ctx.data.len() as u64, domain);
        report.bars.push((
            group.clone(),
            "GK stream".into(),
            evaluate(&gk_edh, queries, &ctx.exact).mean_relative_error(),
        ));
        report.notes.push(format!(
            "{group}: sketch held {} entries for {} rows (eps = {epsilon})",
            sketch.entries(),
            ctx.data.len()
        ));

        // 3. The ideal: exact full-file quantiles.
        let exact_edh = equi_depth(ctx.data.values(), domain, k);
        report.bars.push((
            group.clone(),
            "exact".into(),
            evaluate(&exact_edh, queries, &ctx.exact).mean_relative_error(),
        ));
    }
    report.notes.push(
        "streaming boundaries should land between the sampled and the exact variants, at a \
         fraction of the memory of either"
            .into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_analyze_beats_the_sampled_one() {
        let r = run_with_files(&Scale::quick(), &[PaperFile::Normal { p: 20 }]);
        let sample = r.bar("n(20)", "sample").unwrap();
        let gk = r.bar("n(20)", "GK stream").unwrap();
        let exact = r.bar("n(20)", "exact").unwrap();
        // Full-stream boundaries remove the sampling noise: GK should be at
        // least as good as the sample-based histogram and close to exact.
        assert!(gk <= sample * 1.1, "GK {gk} vs sample {sample}");
        assert!(gk <= exact * 2.0 + 0.02, "GK {gk} vs exact {exact}");
    }
}
