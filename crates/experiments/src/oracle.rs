//! Oracle smoothing-parameter searches (`h-opt` in Figures 9 and 11).
//!
//! "The first technique computes the bandwidth with the lowest MRE. This is
//! not a practical method because it requires that the queries and the
//! sizes of their response sets are known in advance. This method only
//! serves to judge the quality of the other techniques." — Section 5.2.5.

use selest_core::RangeQuery;
use selest_kernel::BoundaryPolicy;
use selest_math::golden_section_min;

use crate::context::FileContext;
use crate::harness::evaluate;
use crate::methods;

/// Search the bin count minimizing the MRE over the given queries:
/// a coarse logarithmic sweep followed by a local refinement. Returns
/// `(best_k, best_mre)`.
pub fn oracle_bins(ctx: &FileContext, queries: &[RangeQuery], max_bins: usize) -> (usize, f64) {
    assert!(max_bins >= 2, "oracle_bins needs max_bins >= 2");
    let mre_at = |k: usize| {
        evaluate(&methods::ewh(ctx, k), queries, &ctx.exact).mean_relative_error()
    };
    // Coarse: ~24 log-spaced bin counts in [2, max_bins].
    let mut best = (2usize, mre_at(2));
    let steps = 24;
    let mut tried = vec![2usize];
    for i in 1..=steps {
        let k = (2.0 * (max_bins as f64 / 2.0).powf(i as f64 / steps as f64)).round() as usize;
        let k = k.clamp(2, max_bins);
        if tried.contains(&k) {
            continue;
        }
        tried.push(k);
        let m = mre_at(k);
        if m < best.1 {
            best = (k, m);
        }
    }
    // Refine: every integer within ±30% of the coarse winner (capped).
    let lo = ((best.0 as f64 * 0.7) as usize).max(2);
    let hi = ((best.0 as f64 * 1.3).ceil() as usize).min(max_bins);
    for k in lo..=hi {
        if tried.contains(&k) {
            continue;
        }
        let m = mre_at(k);
        if m < best.1 {
            best = (k, m);
        }
    }
    best
}

/// Search the kernel bandwidth minimizing the MRE over the given queries:
/// golden-section on `ln h` between `width/5000` and `width/4`.
/// Returns `(best_h, best_mre)`.
pub fn oracle_bandwidth(
    ctx: &FileContext,
    queries: &[RangeQuery],
    boundary: BoundaryPolicy,
) -> (f64, f64) {
    let width = ctx.data.domain().width();
    let lo = (width / 5_000.0).ln();
    let hi = (width / 4.0).ln();
    let res = golden_section_min(
        |lh| {
            let est = methods::kernel(ctx, boundary, lh.exp());
            evaluate(&est, queries, &ctx.exact).mean_relative_error()
        },
        lo,
        hi,
        1e-3,
    );
    (res.x.exp(), res.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::harness::Scale;
    use selest_data::PaperFile;
    use selest_kernel::{BandwidthSelector, KernelFn, NormalScale};

    fn ctx() -> FileContext {
        FileContext::build(PaperFile::Normal { p: 15 }, &Scale::quick())
    }

    #[test]
    fn oracle_bins_beats_fixed_extremes() {
        let ctx = ctx();
        let qf = ctx.query_file(0.01);
        let (k, best) = oracle_bins(&ctx, qf.queries(), 500);
        assert!((2..=500).contains(&k));
        let tiny = evaluate(&methods::ewh(&ctx, 2), qf.queries(), &ctx.exact)
            .mean_relative_error();
        let huge = evaluate(&methods::ewh(&ctx, 500), qf.queries(), &ctx.exact)
            .mean_relative_error();
        assert!(best <= tiny && best <= huge, "oracle {best} vs tiny {tiny}, huge {huge}");
    }

    #[test]
    fn oracle_bandwidth_is_no_worse_than_normal_scale() {
        let ctx = ctx();
        let qf = ctx.query_file(0.01);
        let (h, best) = oracle_bandwidth(&ctx, qf.queries(), BoundaryPolicy::Reflection);
        assert!(h > 0.0);
        let h_ns = NormalScale.bandwidth(&ctx.sample, KernelFn::Epanechnikov);
        let ns = evaluate(
            &methods::kernel(&ctx, BoundaryPolicy::Reflection, h_ns),
            qf.queries(),
            &ctx.exact,
        )
        .mean_relative_error();
        assert!(
            best <= ns * 1.02,
            "oracle ({best} at h={h}) should not lose to normal scale ({ns} at h={h_ns})"
        );
    }
}
