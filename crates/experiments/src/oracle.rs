//! Oracle smoothing-parameter searches (`h-opt` in Figures 9 and 11).
//!
//! "The first technique computes the bandwidth with the lowest MRE. This is
//! not a practical method because it requires that the queries and the
//! sizes of their response sets are known in advance. This method only
//! serves to judge the quality of the other techniques." — Section 5.2.5.

use std::collections::BTreeSet;

use selest_core::{ErrorStats, RangeQuery, SelectivityEstimator};
use selest_kernel::BoundaryPolicy;
use selest_math::golden_section_min;

use crate::context::FileContext;
use crate::harness::evaluate;
use crate::methods;

/// Search the bin count minimizing the MRE over the given queries:
/// a coarse logarithmic sweep followed by a local refinement. Returns
/// `(best_k, best_mre)`.
///
/// The search probes dozens of bin counts against the same query file, so
/// every per-`k` invariant is hoisted out of the rebuild loop: the
/// ground-truth counts (binary searches over the full data file) and the
/// record count are computed once, and each candidate histogram answers
/// the whole file through `selectivity_batch`. The EWH build itself has no
/// sort to hoist — it is a single O(n) counting pass — which leaves the
/// truth lookups as the dominant rebuild-loop invariant.
pub fn oracle_bins(ctx: &FileContext, queries: &[RangeQuery], max_bins: usize) -> (usize, f64) {
    assert!(max_bins >= 2, "oracle_bins needs max_bins >= 2");
    let truths: Vec<f64> = queries.iter().map(|q| ctx.exact.count(q) as f64).collect();
    let n_records = ctx.exact.total();
    let mre_at = |k: usize| {
        let sels = methods::ewh(ctx, k).selectivity_batch(queries);
        let mut stats = ErrorStats::new();
        for (&truth, sel) in truths.iter().zip(sels) {
            stats.record(truth, sel * n_records as f64);
        }
        stats.mean_relative_error()
    };
    // Coarse: ~24 log-spaced bin counts in [2, max_bins]. `tried` is an
    // ordered set — the old `Vec::contains` dedup scanned linearly per
    // candidate.
    let mut best = (2usize, mre_at(2));
    let steps = 24;
    let mut tried = BTreeSet::from([2usize]);
    for i in 1..=steps {
        let k = (2.0 * (max_bins as f64 / 2.0).powf(i as f64 / steps as f64)).round() as usize;
        let k = k.clamp(2, max_bins);
        if !tried.insert(k) {
            continue;
        }
        let m = mre_at(k);
        if m < best.1 {
            best = (k, m);
        }
    }
    let coarse = best;
    // Refine: every integer within ±30% of the coarse winner (capped).
    let lo = ((best.0 as f64 * 0.7) as usize).max(2);
    let hi = ((best.0 as f64 * 1.3).ceil() as usize).min(max_bins);
    for k in lo..=hi {
        if !tried.insert(k) {
            continue;
        }
        let m = mre_at(k);
        if m < best.1 {
            best = (k, m);
        }
    }
    assert!(
        best.1 <= coarse.1,
        "refinement lost to the coarse winner: {} at k={} vs {} at k={}",
        best.1,
        best.0,
        coarse.1,
        coarse.0
    );
    best
}

/// Search the kernel bandwidth minimizing the MRE over the given queries:
/// golden-section on `ln h` between `width/5000` and `width/4`.
/// Returns `(best_h, best_mre)`.
pub fn oracle_bandwidth(
    ctx: &FileContext,
    queries: &[RangeQuery],
    boundary: BoundaryPolicy,
) -> (f64, f64) {
    let width = ctx.data.domain().width();
    let lo = (width / 5_000.0).ln();
    let hi = (width / 4.0).ln();
    let res = golden_section_min(
        |lh| {
            let est = methods::kernel(ctx, boundary, lh.exp());
            evaluate(&est, queries, &ctx.exact).mean_relative_error()
        },
        lo,
        hi,
        1e-3,
    );
    (res.x.exp(), res.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::harness::Scale;
    use selest_data::PaperFile;
    use selest_kernel::{BandwidthSelector, KernelFn, NormalScale};

    fn ctx() -> FileContext {
        FileContext::build(PaperFile::Normal { p: 15 }, &Scale::quick())
    }

    #[test]
    fn oracle_bins_beats_fixed_extremes() {
        let ctx = ctx();
        let qf = ctx.query_file(0.01);
        let (k, best) = oracle_bins(&ctx, qf.queries(), 500);
        assert!((2..=500).contains(&k));
        let tiny = evaluate(&methods::ewh(&ctx, 2), qf.queries(), &ctx.exact).mean_relative_error();
        let huge =
            evaluate(&methods::ewh(&ctx, 500), qf.queries(), &ctx.exact).mean_relative_error();
        assert!(
            best <= tiny && best <= huge,
            "oracle {best} vs tiny {tiny}, huge {huge}"
        );
    }

    #[test]
    fn hoisted_truths_match_direct_evaluation() {
        // The oracle's internal batched scoring must agree bit-for-bit
        // with scoring the winner through the public evaluate path.
        let ctx = ctx();
        let qf = ctx.query_file(0.01);
        let (k, best) = oracle_bins(&ctx, qf.queries(), 64);
        let direct =
            evaluate(&methods::ewh(&ctx, k), qf.queries(), &ctx.exact).mean_relative_error();
        assert_eq!(best.to_bits(), direct.to_bits());
    }

    #[test]
    fn oracle_bandwidth_is_no_worse_than_normal_scale() {
        let ctx = ctx();
        let qf = ctx.query_file(0.01);
        let (h, best) = oracle_bandwidth(&ctx, qf.queries(), BoundaryPolicy::Reflection);
        assert!(h > 0.0);
        let h_ns = NormalScale.bandwidth(&ctx.sample, KernelFn::Epanechnikov);
        let ns = evaluate(
            &methods::kernel(&ctx, BoundaryPolicy::Reflection, h_ns),
            qf.queries(),
            &ctx.exact,
        )
        .mean_relative_error();
        assert!(
            best <= ns * 1.02,
            "oracle ({best} at h={h}) should not lose to normal scale ({ns} at h={h_ns})"
        );
    }
}
