//! Shared experiment machinery: scaling, evaluation, and report rendering.

use std::cell::RefCell;

use selest_core::{BatchScratch, ErrorStats, ExactSelectivity, RangeQuery, SelectivityEstimator};

/// How large to run an experiment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Divide Table 2 record counts by this (1 = the paper's full size).
    pub record_divisor: usize,
    /// Queries per query file (the paper uses 1 000).
    pub queries_per_file: usize,
    /// Sample size for building estimators (the paper uses 2 000).
    pub sample_size: usize,
    /// Points in positional sweeps (Figures 3 and 10).
    pub sweep_points: usize,
}

impl Scale {
    /// The paper's full experimental scale.
    pub fn paper() -> Self {
        Scale {
            record_divisor: 1,
            queries_per_file: 1_000,
            sample_size: 2_000,
            sweep_points: 201,
        }
    }

    /// A reduced scale for tests and smoke runs (~10x smaller data,
    /// 5x fewer queries).
    pub fn quick() -> Self {
        Scale {
            record_divisor: 10,
            queries_per_file: 200,
            sample_size: 1_000,
            sweep_points: 81,
        }
    }
}

/// Queries per work unit of the chunked evaluation engine. Fixed — chunk
/// boundaries must depend only on the query file, never on the worker
/// count, so every `--jobs` setting reproduces the same `ErrorStats`
/// bit-for-bit.
const EVAL_CHUNK: usize = 64;

/// Evaluate an estimator's MRE (and friends) over a query file against the
/// exact instance counts.
///
/// Runs on the batch-estimation engine: the query file is split into
/// fixed-size chunks, each chunk is answered with
/// [`SelectivityEstimator::selectivity_batch`] (the kernel estimator's
/// sorted merge scan, a plain loop elsewhere) on one of
/// [`selest_par::configured_jobs`] workers, and the per-chunk accumulators
/// are merged in chunk order. The result is bit-identical to the
/// single-threaded per-query loop for every worker count.
pub fn evaluate<E: SelectivityEstimator + Sync + ?Sized>(
    estimator: &E,
    queries: &[RangeQuery],
    exact: &ExactSelectivity,
) -> ErrorStats {
    evaluate_jobs(estimator, queries, exact, selest_par::configured_jobs())
}

thread_local! {
    /// Per-worker batch scratch and output buffer: each evaluation worker
    /// reuses its buffers across chunks, so a warm harness run performs no
    /// per-chunk heap allocation on the estimation path.
    static EVAL_SCRATCH: RefCell<(BatchScratch, Vec<f64>)> =
        const { RefCell::new((BatchScratch::new(), Vec::new())) };
}

/// [`evaluate`] with an explicit worker count (primarily for determinism
/// tests and the bench harness).
pub fn evaluate_jobs<E: SelectivityEstimator + Sync + ?Sized>(
    estimator: &E,
    queries: &[RangeQuery],
    exact: &ExactSelectivity,
    jobs: usize,
) -> ErrorStats {
    let n = exact.total();
    let chunks = selest_par::parallel_chunks_jobs(queries, EVAL_CHUNK, jobs, |chunk| {
        EVAL_SCRATCH.with(|cell| {
            let (scratch, sels) = &mut *cell.borrow_mut();
            sels.clear();
            sels.resize(chunk.len(), 0.0);
            estimator.selectivity_batch_into(chunk, scratch, sels);
            let mut stats = ErrorStats::new();
            for (q, &sel) in chunk.iter().zip(sels.iter()) {
                let truth = exact.count(q) as f64;
                stats.record(truth, sel * n as f64);
            }
            stats
        })
    });
    ErrorStats::from_ordered_chunks(chunks)
}

/// One labelled line of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Minimum y value (panics on an empty series).
    pub fn y_min(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.1)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum y value.
    pub fn y_max(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.1)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// x of the minimal y.
    pub fn argmin(&self) -> f64 {
        self.points
            .iter()
            .fold((f64::NAN, f64::INFINITY), |acc, &(x, y)| {
                if y < acc.1 {
                    (x, y)
                } else {
                    acc
                }
            })
            .0
    }
}

/// The result of one experiment: series (line plots) and/or grouped bars,
/// plus free-form notes, renderable as aligned text and CSV.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id (`"fig04"`, `"tab02"`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Name of the x axis when series are present.
    pub x_label: String,
    /// Name of the y axis / bar value.
    pub y_label: String,
    /// Line series (empty for bar-only experiments).
    pub series: Vec<Series>,
    /// Grouped bars: `(group, method, value)` (empty for line experiments).
    pub bars: Vec<(String, String, f64)>,
    /// Commentary: what the paper reports, what to look for.
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// New empty report.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        ExperimentReport {
            id: id.to_owned(),
            title: title.to_owned(),
            x_label: x_label.to_owned(),
            y_label: y_label.to_owned(),
            series: Vec::new(),
            bars: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Bar value for `(group, method)`, if present.
    pub fn bar(&self, group: &str, method: &str) -> Option<f64> {
        self.bars
            .iter()
            .find(|(g, m, _)| g == group && m == method)
            .map(|&(_, _, v)| v)
    }

    /// Series by label, if present.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as CSV: series as `label,x,y` rows, bars as
    /// `group,method,value` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        if !self.series.is_empty() {
            out.push_str(&format!("series,{},{}\n", self.x_label, self.y_label));
            for s in &self.series {
                for &(x, y) in &s.points {
                    out.push_str(&format!("{},{x},{y}\n", s.label));
                }
            }
        }
        if !self.bars.is_empty() {
            out.push_str(&format!("group,method,{}\n", self.y_label));
            for (g, m, v) in &self.bars {
                out.push_str(&format!("{g},{m},{v}\n"));
            }
        }
        out
    }
}

impl core::fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        if !self.series.is_empty() {
            // Tabulate series side by side on the union of x values.
            let mut xs: Vec<f64> = self
                .series
                .iter()
                .flat_map(|s| s.points.iter().map(|p| p.0))
                .collect();
            xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
            xs.dedup();
            write!(f, "{:>14}", self.x_label)?;
            for s in &self.series {
                write!(f, " {:>16}", truncate(&s.label, 16))?;
            }
            writeln!(f)?;
            for &x in &xs {
                write!(f, "{x:>14.4}")?;
                for s in &self.series {
                    match s.points.iter().find(|p| p.0 == x) {
                        Some(&(_, y)) => write!(f, " {y:>16.5}")?,
                        None => write!(f, " {:>16}", "-")?,
                    }
                }
                writeln!(f)?;
            }
        }
        if !self.bars.is_empty() {
            // Group rows, method columns.
            let mut groups: Vec<&String> = self.bars.iter().map(|b| &b.0).collect();
            groups.dedup();
            let mut methods: Vec<&String> = Vec::new();
            for (_, m, _) in &self.bars {
                if !methods.contains(&m) {
                    methods.push(m);
                }
            }
            write!(f, "{:>10}", "file")?;
            for m in &methods {
                write!(f, " {:>12}", truncate(m, 12))?;
            }
            writeln!(f)?;
            for g in groups {
                write!(f, "{:>10}", truncate(g, 10))?;
                for m in &methods {
                    match self.bar(g, m) {
                        Some(v) => write!(f, " {v:>12.5}")?,
                        None => write!(f, " {:>12}", "-")?,
                    }
                }
                writeln!(f)?;
            }
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// First `n` characters of `s`. Cutting on a `char_indices` boundary, not
/// a byte offset — a byte slice at `n` panics mid-codepoint on non-ASCII
/// labels like `"Kernel(σ-DPI2)"`.
fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selest_core::{Domain, UniformEstimator};

    #[test]
    fn evaluate_scores_the_uniform_estimator() {
        let values: Vec<f64> = (0..1_000).map(|i| i as f64 / 10.0).collect(); // uniform [0,100)
        let exact = ExactSelectivity::new(&values, Domain::new(0.0, 100.0));
        let est = UniformEstimator::new(Domain::new(0.0, 100.0));
        let queries: Vec<RangeQuery> = (0..10)
            .map(|i| RangeQuery::new(5.0 * i as f64, 5.0 * i as f64 + 10.0))
            .collect();
        let stats = evaluate(&est, &queries, &exact);
        assert_eq!(stats.count(), 10);
        // Uniform data + uniform estimator: near-zero error.
        assert!(stats.mean_relative_error() < 0.01);
    }

    #[test]
    fn evaluate_is_bit_identical_across_worker_counts() {
        let values: Vec<f64> = (0..5_000).map(|i| ((i * i) % 997) as f64 / 10.0).collect();
        let exact = ExactSelectivity::new(&values, Domain::new(0.0, 100.0));
        let est = UniformEstimator::new(Domain::new(0.0, 100.0));
        let queries: Vec<RangeQuery> = (0..333)
            .map(|i| {
                let a = (i as f64 * 7.3) % 90.0;
                RangeQuery::new(a, a + 1.0 + (i % 5) as f64)
            })
            .collect();
        let base = evaluate_jobs(&est, &queries, &exact, 1);
        for jobs in [2, 3, 8] {
            let par = evaluate_jobs(&est, &queries, &exact, jobs);
            assert_eq!(par.count(), base.count(), "jobs={jobs}");
            assert_eq!(
                par.mean_relative_error().to_bits(),
                base.mean_relative_error().to_bits(),
                "jobs={jobs}"
            );
            assert_eq!(
                par.mean_absolute_error().to_bits(),
                base.mean_absolute_error().to_bits()
            );
            assert_eq!(
                par.relative_error_quantile(0.99).to_bits(),
                base.relative_error_quantile(0.99).to_bits()
            );
        }
    }

    #[test]
    fn truncate_respects_multibyte_labels() {
        // Byte-slicing "Kérnel…" at 2 would split the é and panic.
        assert_eq!(truncate("Kérnel", 2), "Ké");
        assert_eq!(truncate("Kérnel", 100), "Kérnel");
        assert_eq!(truncate("σπλήνας", 3), "σπλ");
        assert_eq!(truncate("ascii", 3), "asc");
        assert_eq!(truncate("", 4), "");
    }

    #[test]
    fn report_with_non_ascii_labels_renders() {
        // Regression: Display used a byte-sliced truncate that panicked on
        // labels longer than the column width containing non-ASCII.
        let mut r = ExperimentReport::new("figY", "démo", "n", "MRE");
        // 15 ASCII chars then 'é': byte 16 falls mid-codepoint, so the old
        // `&label[..16]` slice panicked when tabulating this series.
        r.series.push(Series {
            label: "aaaaaaaaaaaaaaaé-boundary".into(),
            points: vec![(1.0, 0.5)],
        });
        r.bars
            .push(("aaaaaaaaañ-edge".into(), "aaaaaaaaaaaσ-ed".into(), 0.07));
        let text = r.to_string();
        assert!(text.contains("figY"));
    }

    #[test]
    fn series_stats() {
        let s = Series {
            label: "x".into(),
            points: vec![(1.0, 5.0), (2.0, 3.0), (3.0, 9.0)],
        };
        assert_eq!(s.y_min(), 3.0);
        assert_eq!(s.y_max(), 9.0);
        assert_eq!(s.argmin(), 2.0);
    }

    #[test]
    fn report_rendering_and_csv() {
        let mut r = ExperimentReport::new("figX", "demo", "n", "MRE");
        r.series.push(Series {
            label: "a".into(),
            points: vec![(1.0, 0.5), (2.0, 0.25)],
        });
        r.bars.push(("u(20)".into(), "EWH".into(), 0.07));
        r.notes.push("check the shape".into());
        let text = r.to_string();
        assert!(text.contains("figX"));
        assert!(text.contains("EWH"));
        let csv = r.to_csv();
        assert!(csv.contains("a,1,0.5"));
        assert!(csv.contains("u(20),EWH,0.07"));
        assert_eq!(r.bar("u(20)", "EWH"), Some(0.07));
        assert!(r.bar("u(20)", "nope").is_none());
        assert!(r.series_by_label("a").is_some());
    }
}
