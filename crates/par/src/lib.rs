//! Dependency-free execution runtime for batch workloads.
//!
//! Everything in the workspace that answers a query file — the experiment
//! harness, the oracle searches, the bench harness — funnels its fan-out
//! through this crate. The design constraint is *determinism*: a run with
//! eight workers must produce bit-identical results to a run with one.
//! Two rules enforce that:
//!
//! 1. **Fixed chunk boundaries.** [`parallel_chunks`] splits the input at
//!    positions derived only from the input length and the requested chunk
//!    size — never from the worker count — so the per-chunk computations
//!    are the same no matter how many threads execute them.
//! 2. **Ordered merge.** Results are returned in input order (each worker
//!    writes into the slot of the item it claimed), so any subsequent
//!    order-sensitive reduction (Kahan summation, `ErrorStats` merging)
//!    sees the exact sequence a sequential run would produce.
//!
//! Worker count resolution (highest priority first): an explicit
//! `*_jobs` argument, a process-wide [`set_jobs`] override (the `--jobs N`
//! CLI flag), the `SELEST_JOBS` environment variable, and finally
//! [`std::thread::available_parallelism`]. Workers are plain
//! [`std::thread::scope`] threads: no pools persist between calls and no
//! dependencies are pulled in.
//!
//! # Fault tolerance
//!
//! The engine has two faces over one core:
//!
//! * the **infallible** API ([`parallel_map`], [`parallel_chunks`]) keeps
//!   its historical contract — a panicking task eventually panics the
//!   caller — and is a thin wrapper over the fallible core;
//! * the **fallible** API ([`try_map_chunks`], [`try_for_chunks`],
//!   [`try_parallel_map`]) isolates every task behind `catch_unwind` and
//!   returns one `Result<T, TaskError>` per slot. A panic poisons *its
//!   slot*, never the batch: every other slot still carries the value a
//!   fault-free run would have produced, bit for bit, because chunk
//!   boundaries and merge order never depend on which tasks failed.
//!
//! Failed tasks can be retried in place ([`RetryPolicy`]; bounded
//! attempts, no wall-clock backoff, so a rerun of the same inputs is
//! reproducible) and the whole batch can run under a cooperative
//! [`Deadline`]: workers check the shared budget between tasks and
//! attempts, and on expiry the engine returns the finished slots plus a
//! typed [`TaskFault::Deadline`] error per unfinished slot instead of
//! hanging.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

/// Process-wide worker-count override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of hardware threads the host offers (at least 1).
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Install a process-wide worker-count override (the `--jobs N` flag).
/// `set_jobs(0)` clears the override.
pub fn set_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// The worker count batch operations use when no explicit count is given:
/// the [`set_jobs`] override if installed, else the `SELEST_JOBS`
/// environment variable if it parses to a positive integer, else
/// [`available_workers`].
pub fn configured_jobs() -> usize {
    let overridden = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if overridden > 0 {
        return overridden;
    }
    if let Ok(v) = std::env::var("SELEST_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    available_workers()
}

// ---------------------------------------------------------------------------
// Task error taxonomy
// ---------------------------------------------------------------------------

/// What went wrong with one task of a fallible batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskFault {
    /// The task panicked on its last permitted attempt; the captured
    /// payload (and source location when the panic hook saw one) is the
    /// bug report.
    Panicked {
        /// Panic payload, best effort (`&str` / `String` payloads are
        /// captured verbatim).
        message: String,
    },
    /// The shared [`Deadline`] expired before the task could run (or
    /// finish retrying); the batch returns partial results instead of
    /// hanging.
    Deadline,
    /// Engine invariant breach: the ordered reduction found a slot no
    /// worker claimed. Unreachable by construction — surfaced as a typed
    /// error (not a panic) so even a broken engine degrades instead of
    /// aborting the serving process.
    SlotNeverFilled,
}

/// A typed failure of one task slot in a fallible batch run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// What happened.
    pub fault: TaskFault,
    /// Index of the task (= output slot) that failed.
    pub task: usize,
    /// Item bounds `[lo, hi)` of the chunk the task covered, when the
    /// batch was chunked (`None` for per-item maps).
    pub bounds: Option<(usize, usize)>,
    /// Execution attempts consumed (0 when the deadline expired before
    /// the first attempt started).
    pub attempts: usize,
    /// Wall time spent inside the task across all attempts.
    pub elapsed: Duration,
}

impl core::fmt::Display for TaskError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "task {}", self.task)?;
        if let Some((lo, hi)) = self.bounds {
            write!(f, " [items {lo}..{hi}]")?;
        }
        match &self.fault {
            TaskFault::Panicked { message } => write!(
                f,
                " panicked after {} attempt(s) in {:.1}ms: {message}",
                self.attempts,
                self.elapsed.as_secs_f64() * 1e3
            ),
            TaskFault::Deadline => write!(
                f,
                " hit the deadline after {} attempt(s) in {:.1}ms",
                self.attempts,
                self.elapsed.as_secs_f64() * 1e3
            ),
            TaskFault::SlotNeverFilled => {
                write!(f, " was never filled (engine invariant breach)")
            }
        }
    }
}

impl std::error::Error for TaskError {}

/// Bounded in-place retry for fallible batches. Retries re-run the task
/// immediately on the same worker — no wall-clock backoff — so a rerun of
/// the same inputs and seeds reproduces the same attempt sequence. The
/// `seed` does not perturb scheduling (chunk boundaries and merge order
/// are fixed regardless); it tags the run and is meant to be threaded
/// from the chaos harness so a failing report carries its repro seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per task (>= 1); 1 means "no retry".
    pub max_attempts: usize,
    /// Seed identifying the (chaos) schedule this run belongs to.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: one attempt per task.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            seed: 0,
        }
    }

    /// Up to `max_attempts` total attempts per task.
    pub fn attempts(max_attempts: usize) -> Self {
        assert!(max_attempts >= 1, "a task needs at least one attempt");
        RetryPolicy {
            max_attempts,
            seed: 0,
        }
    }

    /// Tag the policy with a chaos seed (recorded for reproducibility;
    /// scheduling is deterministic with or without it).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// A cooperative execution budget shared by every worker of a batch.
///
/// Workers poll it between tasks and between retry attempts; long-running
/// task closures may poll it themselves via [`Deadline::expired`]. Expiry
/// never interrupts a running attempt — tasks are never killed mid-write —
/// it only stops *new* work, so the batch drains quickly and returns
/// partial results.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    at: Option<Instant>,
    tripped: Arc<AtomicBool>,
}

impl Deadline {
    /// No budget: the batch runs to completion.
    pub fn never() -> Self {
        Deadline::default()
    }

    /// Expire `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Some(Instant::now() + budget),
            ..Deadline::default()
        }
    }

    /// A deadline only [`Deadline::expire`] trips — the deterministic
    /// variant chaos tests use to cut a batch at an exact task.
    pub fn manual() -> Self {
        Deadline::default()
    }

    /// A deadline that is already expired (no task will start).
    pub fn already_expired() -> Self {
        let d = Deadline::default();
        d.expire();
        d
    }

    /// Trip the deadline now; every worker observes it before claiming
    /// its next task or attempt.
    pub fn expire(&self) {
        self.tripped.store(true, Ordering::Release);
    }

    /// Whether the budget is spent.
    pub fn expired(&self) -> bool {
        self.tripped.load(Ordering::Acquire) || self.at.is_some_and(|at| Instant::now() >= at)
    }
}

/// Configuration of a fallible batch run.
#[derive(Debug, Clone, Default)]
pub struct TryConfig {
    /// Worker count; 0 means [`configured_jobs`].
    pub jobs: usize,
    /// Per-task retry policy.
    pub retry: RetryPolicy,
    /// Shared execution budget.
    pub deadline: Deadline,
}

impl TryConfig {
    /// Defaults with an explicit worker count.
    pub fn jobs(jobs: usize) -> Self {
        TryConfig {
            jobs,
            ..TryConfig::default()
        }
    }

    /// Replace the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replace the deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }
}

/// The outcome of a fallible batch: one `Result` per task, in input
/// order. Successful slots are bit-identical to the values an infallible
/// (or single-worker) run would have produced — failures never perturb
/// their neighbours.
#[derive(Debug)]
pub struct TryOutcome<U> {
    /// Per-task results, in input order.
    pub slots: Vec<Result<U, TaskError>>,
    /// Whether any slot was abandoned because the [`Deadline`] expired.
    pub deadline_hit: bool,
}

impl<U> TryOutcome<U> {
    /// Whether every task produced a value.
    pub fn is_complete(&self) -> bool {
        self.slots.iter().all(|s| s.is_ok())
    }

    /// Number of successful slots.
    pub fn ok_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_ok()).count()
    }

    /// Number of failed slots.
    pub fn err_count(&self) -> usize {
        self.slots.len() - self.ok_count()
    }

    /// The failed slots' errors, in task order.
    pub fn errors(&self) -> impl Iterator<Item = &TaskError> {
        self.slots.iter().filter_map(|s| s.as_ref().err())
    }

    /// All values if the batch completed, else the first error.
    pub fn into_complete(self) -> Result<Vec<U>, TaskError> {
        self.slots.into_iter().collect()
    }
}

// ---------------------------------------------------------------------------
// Panic capture
// ---------------------------------------------------------------------------

thread_local! {
    /// Whether the current thread is inside a fault-isolated task (its
    /// panics are captured, not printed).
    static IN_ISOLATED_TASK: Cell<bool> = const { Cell::new(false) };
    /// Source location of the last captured panic on this thread.
    static LAST_PANIC_LOCATION: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Install (once, process-wide) a panic hook that captures — instead of
/// printing — panics raised inside fault-isolated tasks, recording their
/// source location for the [`TaskError`]. Panics anywhere else still go
/// to the previously installed hook, backtraces and all.
fn install_capture_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_ISOLATED_TASK.with(Cell::get) {
                let location = info.location().map(|l| l.to_string());
                LAST_PANIC_LOCATION.with(|slot| *slot.borrow_mut() = location);
            } else {
                previous(info);
            }
        }));
    });
}

/// Render a caught panic payload (plus the location the hook captured)
/// into the `TaskFault::Panicked` message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    let text = if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    };
    match LAST_PANIC_LOCATION.with(|slot| slot.borrow_mut().take()) {
        Some(location) => format!("{text} (at {location})"),
        None => text,
    }
}

/// Run one attempt of a task with panics captured quietly.
fn run_isolated<U>(task: impl FnOnce() -> U) -> Result<U, String> {
    install_capture_hook();
    IN_ISOLATED_TASK.with(|flag| flag.set(true));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
    IN_ISOLATED_TASK.with(|flag| flag.set(false));
    result.map_err(panic_message)
}

// ---------------------------------------------------------------------------
// The fallible core
// ---------------------------------------------------------------------------

/// Run one task to completion under the retry policy and deadline.
/// Returns `None` only when the deadline expired before the first attempt.
fn drive_task<U>(
    i: usize,
    cfg: &TryConfig,
    bounds: Option<(usize, usize)>,
    task: &(impl Fn(usize) -> U + Sync),
) -> Result<U, TaskError> {
    let started = Instant::now();
    let mut attempts = 0usize;
    loop {
        if cfg.deadline.expired() {
            return Err(TaskError {
                fault: TaskFault::Deadline,
                task: i,
                bounds,
                attempts,
                elapsed: started.elapsed(),
            });
        }
        attempts += 1;
        match run_isolated(|| task(i)) {
            Ok(v) => return Ok(v),
            Err(message) => {
                if attempts >= cfg.retry.max_attempts.max(1) {
                    return Err(TaskError {
                        fault: TaskFault::Panicked { message },
                        task: i,
                        bounds,
                        attempts,
                        elapsed: started.elapsed(),
                    });
                }
                // Retry immediately: no wall-clock backoff, so reruns of
                // the same inputs walk the same attempt sequence.
            }
        }
    }
}

/// Shared fallible engine: evaluate `task(0..n)` with work-stealing over
/// an atomic cursor, panic isolation, retries, and a cooperative
/// deadline; scatter results back into input order. Slots the deadline
/// prevented from running carry [`TaskFault::Deadline`]; the (by
/// construction unreachable) unclaimed-slot case carries
/// [`TaskFault::SlotNeverFilled`] instead of panicking.
fn try_run_indexed<U, F>(
    n: usize,
    cfg: &TryConfig,
    bounds_of: impl Fn(usize) -> Option<(usize, usize)> + Sync,
    task: F,
) -> TryOutcome<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let jobs = if cfg.jobs == 0 {
        configured_jobs()
    } else {
        cfg.jobs
    };
    let workers = jobs.max(1).min(n);
    let mut slots: Vec<Option<Result<U, TaskError>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    if workers <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(drive_task(i, cfg, bounds_of(i), &task));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let collected: Vec<Vec<(usize, Result<U, TaskError>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, drive_task(i, cfg, bounds_of(i), &task)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("selest-par worker thread died"))
                .collect()
        });
        for (i, r) in collected.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "slot {i} filled twice");
            slots[i] = Some(r);
        }
    }
    let mut deadline_hit = false;
    let slots: Vec<Result<U, TaskError>> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let r = slot.unwrap_or(Err(TaskError {
                fault: TaskFault::SlotNeverFilled,
                task: i,
                bounds: bounds_of(i),
                attempts: 0,
                elapsed: Duration::ZERO,
            }));
            if matches!(
                r,
                Err(TaskError {
                    fault: TaskFault::Deadline,
                    ..
                })
            ) {
                deadline_hit = true;
            }
            r
        })
        .collect();
    TryOutcome {
        slots,
        deadline_hit,
    }
}

/// Fixed chunk bounds `[lo, hi)` of chunk `c` for the given input length.
fn chunk_bounds(len: usize, chunk_size: usize, c: usize) -> (usize, usize) {
    let lo = c * chunk_size;
    ((lo).min(len), (lo + chunk_size).min(len))
}

/// Fallible sibling of [`parallel_chunks`]: split `items` into fixed
/// `chunk_size` chunks, apply `f` to each chunk on the worker pool with
/// panic isolation, and return one `Result` per chunk in chunk order.
/// Chunk boundaries depend only on `items.len()` and `chunk_size`, so the
/// surviving slots are bit-identical to a fault-free run for any worker
/// count.
pub fn try_map_chunks<T, U, F>(
    items: &[T],
    chunk_size: usize,
    cfg: &TryConfig,
    f: F,
) -> TryOutcome<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    assert!(chunk_size > 0, "try_map_chunks needs a positive chunk size");
    let n_chunks = items.len().div_ceil(chunk_size);
    try_run_indexed(
        n_chunks,
        cfg,
        |c| Some(chunk_bounds(items.len(), chunk_size, c)),
        |c| {
            let (lo, hi) = chunk_bounds(items.len(), chunk_size, c);
            f(&items[lo..hi])
        },
    )
}

/// Side-effecting sibling of [`try_map_chunks`]: run `f` over each fixed
/// chunk for its effects, reporting per-chunk success/failure. Useful
/// when the chunk writes its results somewhere else (a catalog, a file)
/// and the caller only needs the fault map.
pub fn try_for_chunks<T, F>(items: &[T], chunk_size: usize, cfg: &TryConfig, f: F) -> TryOutcome<()>
where
    T: Sync,
    F: Fn(&[T]) + Sync,
{
    try_map_chunks(items, chunk_size, cfg, |chunk| f(chunk))
}

/// Fallible sibling of [`parallel_map`]: apply `f` to every item with
/// panic isolation, one `Result` per item in input order.
pub fn try_parallel_map<T, U, F>(items: &[T], cfg: &TryConfig, f: F) -> TryOutcome<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    try_run_indexed(items.len(), cfg, |_| None, |i| f(&items[i]))
}

// ---------------------------------------------------------------------------
// The infallible API: thin wrappers over the fallible core
// ---------------------------------------------------------------------------

/// Apply `f` to every item, returning results in input order, using
/// [`configured_jobs`] workers.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_jobs(items, configured_jobs(), f)
}

/// Apply `f` to every item with an explicit worker count, returning results
/// in input order. `jobs <= 1` (or a single item) runs inline on the
/// calling thread.
pub fn parallel_map_jobs<T, U, F>(items: &[T], jobs: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    run_indexed(items.len(), jobs, |i| f(&items[i]))
}

/// Split `items` into consecutive chunks of `chunk_size` (the last may be
/// shorter), apply `f` to each chunk, and return one result per chunk in
/// chunk order, using [`configured_jobs`] workers.
///
/// Chunk boundaries depend only on `items.len()` and `chunk_size`, so the
/// result is identical for every worker count.
pub fn parallel_chunks<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    parallel_chunks_jobs(items, chunk_size, configured_jobs(), f)
}

/// [`parallel_chunks`] with an explicit worker count.
pub fn parallel_chunks_jobs<T, U, F>(items: &[T], chunk_size: usize, jobs: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    assert!(
        chunk_size > 0,
        "parallel_chunks needs a positive chunk size"
    );
    let n_chunks = items.len().div_ceil(chunk_size);
    run_indexed(n_chunks, jobs, |c| {
        let (lo, hi) = chunk_bounds(items.len(), chunk_size, c);
        f(&items[lo..hi])
    })
}

/// Infallible engine: one attempt per task, no deadline, and any task
/// failure — captured panic or engine invariant breach — re-raised on the
/// caller with the typed error's report as the payload.
fn run_indexed<U, F>(n: usize, jobs: usize, task: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let cfg = TryConfig {
        jobs: jobs.max(1),
        retry: RetryPolicy::none(),
        deadline: Deadline::never(),
    };
    try_run_indexed(n, &cfg, |_| None, task)
        .slots
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|e| panic!("selest-par worker panicked: {e}")))
        .collect()
}

// ---------------------------------------------------------------------------
// Shard pool: fixed long-lived workers with deterministic ownership
// ---------------------------------------------------------------------------

/// FNV-1a over `bytes` — the workspace's deterministic, dependency-free
/// byte hash (shard assignment, cache-slot placement). Stable across
/// runs, platforms, and Rust versions, unlike `DefaultHasher`.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard that owns a `(relation, column)` key in a pool of `shards`
/// workers. Pure function of the names and the shard count: every
/// process, thread, and run agrees on the owner, so per-shard state
/// (admission counters, health, build ownership) never needs a
/// coordination step. The `\u{1f}` separator keeps `("ab","c")` and
/// `("a","bc")` distinct.
pub fn shard_for(relation: &str, column: &str, shards: usize) -> usize {
    assert!(shards > 0, "shard_for needs at least one shard");
    let mut h = fnv1a_64(relation.as_bytes());
    h ^= 0x1f;
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    for &b in column.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

enum PoolJob {
    Run(Box<dyn FnOnce() + Send + 'static>),
    Stop,
}

struct PoolWorker {
    tx: std::sync::mpsc::Sender<PoolJob>,
    handle: Option<std::thread::JoinHandle<()>>,
    executed: Arc<AtomicUsize>,
    panicked: Arc<AtomicUsize>,
}

/// A fixed set of long-lived worker threads, one per shard.
///
/// Where the batch engine above spins up scoped threads per call, a
/// serving process wants *standing* workers with stable ownership:
/// shard `s` of the pool executes every job submitted for shard `s`, in
/// submission order, for the lifetime of the pool. That gives three
/// properties the scoped engine cannot:
///
/// * **Deterministic placement** — a column's rebuild always runs on the
///   worker [`shard_for`] names, so per-shard health counters attribute
///   faults to a stable owner.
/// * **Bulkheading** — a panicking job is captured on its worker (counted
///   in [`ShardPool::panics`]) and the worker survives to run the next
///   job; one shard's fault never stalls its siblings.
/// * **Ordered execution within a shard** — jobs on one shard never
///   reorder, so a shard's builds apply in submission order.
///
/// Jobs are `'static`: callers share input via `Arc` (the catalog's
/// column samples and prepared substrates already are).
pub struct ShardPool {
    workers: Vec<PoolWorker>,
}

impl ShardPool {
    /// A pool with one standing worker per shard (`shards >= 1`).
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "ShardPool needs at least one shard");
        let workers = (0..shards)
            .map(|s| {
                let (tx, rx) = std::sync::mpsc::channel::<PoolJob>();
                let executed = Arc::new(AtomicUsize::new(0));
                let panicked = Arc::new(AtomicUsize::new(0));
                let (exec, panics) = (Arc::clone(&executed), Arc::clone(&panicked));
                let handle = std::thread::Builder::new()
                    .name(format!("selest-shard-{s}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            match job {
                                PoolJob::Stop => break,
                                PoolJob::Run(f) => {
                                    // Counted at pick-up, not completion: a
                                    // job may hand its result to a waiting
                                    // caller from inside `f`, and the
                                    // counter must already cover any job
                                    // whose result somebody observed.
                                    exec.fetch_add(1, Ordering::Relaxed);
                                    if run_isolated(f).is_err() {
                                        panics.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                    })
                    .expect("spawn shard worker");
                PoolWorker {
                    tx,
                    handle: Some(handle),
                    executed,
                    panicked,
                }
            })
            .collect();
        ShardPool { workers }
    }

    /// Number of shards (= standing workers).
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Jobs worker `shard` has picked up (including panicked ones). The
    /// count covers every job whose result a caller has already received:
    /// it is incremented before the job body runs, so it can never lag a
    /// completed [`ShardPool::run_sharded`].
    pub fn executed(&self, shard: usize) -> usize {
        self.workers[shard].executed.load(Ordering::Relaxed)
    }

    /// Jobs worker `shard` captured a panic from.
    pub fn panics(&self, shard: usize) -> usize {
        self.workers[shard].panicked.load(Ordering::Relaxed)
    }

    /// Fire-and-forget: run `job` on worker `shard % shards`, after every
    /// job already queued there. A panic inside `job` is captured and
    /// counted; the worker survives.
    pub fn submit(&self, shard: usize, job: impl FnOnce() + Send + 'static) {
        let w = &self.workers[shard % self.workers.len()];
        w.tx.send(PoolJob::Run(Box::new(job)))
            .expect("shard worker alive while pool alive");
    }

    /// Run `task(i, item)` for every item on the worker that owns it
    /// (`shard_of(i, &item) % shards`), returning results in input order.
    ///
    /// Items sharing a shard execute sequentially in input order on that
    /// shard's worker; distinct shards run concurrently. Each item is
    /// panic-isolated: a captured panic fills its slot with a
    /// [`TaskFault::Panicked`] error and its siblings complete untouched,
    /// mirroring the fallible batch engine's contract. The blocking wait
    /// collects exactly one result per item, so the call returns when the
    /// last owner finishes.
    pub fn run_sharded<T, R>(
        &self,
        items: Vec<T>,
        shard_of: impl Fn(usize, &T) -> usize,
        task: impl Fn(usize, T) -> R + Send + Sync + 'static,
    ) -> Vec<Result<R, TaskError>>
    where
        T: Send + 'static,
        R: Send + 'static,
    {
        let n = items.len();
        let task = Arc::new(task);
        let (out_tx, out_rx) = std::sync::mpsc::channel::<(usize, Duration, Result<R, String>)>();
        for (i, item) in items.into_iter().enumerate() {
            let shard = shard_of(i, &item);
            let task = Arc::clone(&task);
            let out_tx = out_tx.clone();
            // The job captures its own panic (so the error reaches the
            // caller's slot with its message); charge the owning worker's
            // panic counter by hand since its outer capture never trips.
            let panicked = Arc::clone(&self.workers[shard % self.workers.len()].panicked);
            self.submit(shard, move || {
                let started = Instant::now();
                let result = run_isolated(|| task(i, item));
                if result.is_err() {
                    panicked.fetch_add(1, Ordering::Relaxed);
                }
                // A dropped receiver just discards the result; the pool
                // must not fault because a caller gave up waiting.
                let _ = out_tx.send((i, started.elapsed(), result));
            });
        }
        drop(out_tx);
        let mut slots: Vec<Option<Result<R, TaskError>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let Ok((i, elapsed, result)) = out_rx.recv() else {
                break;
            };
            slots[i] = Some(result.map_err(|message| TaskError {
                fault: TaskFault::Panicked { message },
                task: i,
                bounds: None,
                attempts: 1,
                elapsed,
            }));
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or(Err(TaskError {
                    fault: TaskFault::SlotNeverFilled,
                    task: i,
                    bounds: None,
                    attempts: 0,
                    elapsed: Duration::ZERO,
                }))
            })
            .collect()
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        for w in &self.workers {
            // The worker may already be gone if its thread was killed with
            // the process; a failed send is not worth propagating in Drop.
            let _ = w.tx.send(PoolJob::Stop);
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for jobs in [1, 2, 3, 8] {
            let out = parallel_map_jobs(&items, jobs, |&x| x * 2);
            assert_eq!(
                out,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn chunks_have_fixed_boundaries() {
        let items: Vec<usize> = (0..103).collect();
        let expect: Vec<Vec<usize>> = items.chunks(10).map(|c| c.to_vec()).collect();
        for jobs in [1, 2, 8] {
            let out = parallel_chunks_jobs(&items, 10, jobs, |c| c.to_vec());
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn chunk_reduction_is_bit_identical_across_worker_counts() {
        // An order-sensitive float reduction: naive left-to-right sums per
        // chunk, then a left-to-right merge. Identical for 1/2/8 workers.
        let items: Vec<f64> = (0..10_000).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let reduce = |jobs| {
            let partials = parallel_chunks_jobs(&items, 64, jobs, |c| c.iter().sum::<f64>());
            partials.into_iter().fold(0.0f64, |a, b| a + b)
        };
        let s1 = reduce(1);
        assert_eq!(s1.to_bits(), reduce(2).to_bits());
        assert_eq!(s1.to_bits(), reduce(8).to_bits());
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        let empty: [u32; 0] = [];
        assert!(parallel_map_jobs(&empty, 4, |&x| x).is_empty());
        assert!(parallel_chunks_jobs(&empty, 5, 4, <[u32]>::len).is_empty());
        assert_eq!(parallel_map_jobs(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn jobs_override_takes_priority() {
        set_jobs(3);
        assert_eq!(configured_jobs(), 3);
        set_jobs(0);
        assert!(configured_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "positive chunk size")]
    fn zero_chunk_size_panics() {
        let _ = parallel_chunks_jobs(&[1, 2, 3], 0, 2, <[i32]>::len);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        let _ = parallel_map_jobs(&items, 2, |&x| {
            assert!(x != 63, "boom");
            x
        });
    }

    #[test]
    fn infallible_panic_report_carries_the_payload() {
        let items: Vec<usize> = (0..8).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map_jobs(&items, 1, |&x| {
                assert!(x != 5, "original payload {x}");
                x
            })
        }));
        let payload = caught.expect_err("must propagate");
        let text = payload
            .downcast_ref::<String>()
            .expect("string payload")
            .clone();
        assert!(text.contains("selest-par worker panicked"), "{text}");
        assert!(text.contains("original payload 5"), "{text}");
        assert!(text.contains("task 5"), "{text}");
    }

    #[test]
    fn try_map_chunks_isolates_panics_per_chunk() {
        let items: Vec<usize> = (0..100).collect();
        let fault_free = parallel_chunks_jobs(&items, 16, 1, |c| c.iter().sum::<usize>());
        for jobs in [1, 2, 8] {
            let out = try_map_chunks(&items, 16, &TryConfig::jobs(jobs), |c| {
                assert!(c[0] != 32, "chunk bomb");
                c.iter().sum::<usize>()
            });
            assert_eq!(out.slots.len(), 7);
            assert_eq!(out.err_count(), 1, "jobs={jobs}");
            assert!(!out.deadline_hit);
            for (i, slot) in out.slots.iter().enumerate() {
                if i == 2 {
                    let e = slot.as_ref().expect_err("chunk 2 panics");
                    assert_eq!(e.task, 2);
                    assert_eq!(e.bounds, Some((32, 48)));
                    assert_eq!(e.attempts, 1);
                    match &e.fault {
                        TaskFault::Panicked { message } => {
                            assert!(message.contains("chunk bomb"), "{message}");
                            assert!(message.contains("lib.rs"), "location captured: {message}");
                        }
                        other => panic!("expected Panicked, got {other:?}"),
                    }
                } else {
                    assert_eq!(*slot.as_ref().expect("survivor"), fault_free[i]);
                }
            }
        }
    }

    #[test]
    fn try_for_chunks_reports_side_effect_faults() {
        let items: Vec<usize> = (0..40).collect();
        let hits = AtomicUsize::new(0);
        let out = try_for_chunks(&items, 10, &TryConfig::jobs(2), |c| {
            assert!(c[0] != 20, "no third chunk");
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.ok_count(), 3);
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        assert_eq!(out.errors().next().expect("one error").task, 2);
    }

    #[test]
    fn retry_policy_recovers_transient_faults() {
        let items: Vec<usize> = (0..32).collect();
        let failures = AtomicUsize::new(0);
        let cfg = TryConfig::jobs(2).with_retry(RetryPolicy::attempts(3).with_seed(42));
        let out = try_map_chunks(&items, 8, &cfg, |c| {
            // Chunk 1 fails twice, then succeeds.
            if c[0] == 8 && failures.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("transient");
            }
            c.len()
        });
        assert!(out.is_complete(), "{:?}", out.slots);
        assert_eq!(
            failures.load(Ordering::Relaxed),
            3,
            "2 failures + 1 success"
        );
        assert_eq!(out.slots[1].as_ref().unwrap(), &8);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let items: Vec<usize> = (0..8).collect();
        let calls = AtomicUsize::new(0);
        let cfg = TryConfig::jobs(1).with_retry(RetryPolicy::attempts(3));
        let out = try_map_chunks(&items, 8, &cfg, |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            panic!("always")
        });
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        let e = out.slots[0].as_ref().expect_err("always fails");
        assert_eq!(e.attempts, 3);
    }

    #[test]
    fn expired_deadline_abandons_everything() {
        let items: Vec<usize> = (0..64).collect();
        let cfg = TryConfig::jobs(4).with_deadline(Deadline::already_expired());
        let ran = AtomicUsize::new(0);
        let out = try_map_chunks(&items, 8, &cfg, |c| {
            ran.fetch_add(1, Ordering::Relaxed);
            c.len()
        });
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no task starts");
        assert!(out.deadline_hit);
        assert_eq!(out.err_count(), 8);
        for e in out.errors() {
            assert_eq!(e.fault, TaskFault::Deadline);
            assert_eq!(e.attempts, 0);
        }
    }

    #[test]
    fn manual_deadline_returns_partial_results() {
        let items: Vec<usize> = (0..80).collect();
        let deadline = Deadline::manual();
        let trip = deadline.clone();
        let cfg = TryConfig::jobs(1).with_deadline(deadline);
        let out = try_map_chunks(&items, 10, &cfg, |c| {
            if c[0] == 30 {
                trip.expire();
            }
            c.iter().sum::<usize>()
        });
        assert!(out.deadline_hit);
        // Single worker: chunks 0..=3 ran (the tripping chunk finishes —
        // cooperative expiry never kills a running task), 4.. abandoned.
        let fault_free = parallel_chunks_jobs(&items, 10, 1, |c| c.iter().sum::<usize>());
        for (i, expected) in fault_free.iter().enumerate().take(4) {
            assert_eq!(out.slots[i].as_ref().expect("ran"), expected);
        }
        for slot in &out.slots[4..8] {
            assert_eq!(
                slot.as_ref().expect_err("abandoned").fault,
                TaskFault::Deadline
            );
        }
    }

    #[test]
    fn try_parallel_map_maps_items() {
        let items: Vec<i64> = (0..20).collect();
        let out = try_parallel_map(&items, &TryConfig::jobs(3), |&x| {
            assert!(x % 7 != 3, "bad residue");
            x * x
        });
        assert_eq!(out.err_count(), 3, "items 3, 10, 17");
        for (i, slot) in out.slots.iter().enumerate() {
            match slot {
                Ok(v) => assert_eq!(*v, (i * i) as i64),
                Err(e) => {
                    assert_eq!(e.task, i);
                    assert_eq!(e.bounds, None);
                    assert_eq!(i % 7, 3);
                }
            }
        }
    }

    #[test]
    fn task_error_displays_usefully() {
        let e = TaskError {
            fault: TaskFault::Panicked {
                message: "boom".into(),
            },
            task: 3,
            bounds: Some((30, 40)),
            attempts: 2,
            elapsed: Duration::from_millis(5),
        };
        let text = e.to_string();
        assert!(text.contains("task 3"), "{text}");
        assert!(text.contains("items 30..40"), "{text}");
        assert!(text.contains("2 attempt(s)"), "{text}");
        assert!(text.contains("boom"), "{text}");
        let d = TaskError {
            fault: TaskFault::Deadline,
            task: 0,
            bounds: None,
            attempts: 0,
            elapsed: Duration::ZERO,
        };
        assert!(d.to_string().contains("deadline"), "{d}");
        let s = TaskError {
            fault: TaskFault::SlotNeverFilled,
            task: 9,
            bounds: None,
            attempts: 0,
            elapsed: Duration::ZERO,
        };
        assert!(s.to_string().contains("never filled"), "{s}");
    }

    #[test]
    fn into_complete_collects_or_fails() {
        let items: Vec<usize> = (0..10).collect();
        let ok = try_map_chunks(&items, 5, &TryConfig::jobs(2), |c| c.len());
        assert_eq!(ok.into_complete().expect("complete"), vec![5, 5]);
        let bad = try_map_chunks(&items, 5, &TryConfig::jobs(2), |c| {
            assert!(c[0] != 5, "late bomb");
            c.len()
        });
        assert_eq!(bad.into_complete().expect_err("chunk 1 fails").task, 1);
    }

    #[test]
    fn shard_for_is_deterministic_and_separator_safe() {
        for shards in [1, 2, 4, 7] {
            for (r, c) in [("t", "a"), ("orders", "amount"), ("ab", "c")] {
                let s = shard_for(r, c, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(r, c, shards), "pure function");
            }
        }
        // Concatenation ambiguity must not alias keys.
        assert_ne!(
            fnv1a_64(b"abc"),
            {
                let _ = shard_for("ab", "c", 2);
                fnv1a_64(b"ab\x1fc")
            },
            "separator keeps split points distinct"
        );
        assert_ne!(shard_for("ab", "c", 1 << 16), shard_for("a", "bc", 1 << 16));
    }

    #[test]
    fn shard_pool_orders_within_a_shard_and_returns_input_order() {
        let pool = ShardPool::new(3);
        let items: Vec<usize> = (0..50).collect();
        let log: Arc<std::sync::Mutex<Vec<usize>>> = Arc::default();
        let log2 = Arc::clone(&log);
        let out = pool.run_sharded(
            items,
            |_, &x| x % 3,
            move |_, x| {
                if x % 3 == 1 {
                    log2.lock().unwrap().push(x);
                }
                x * 10
            },
        );
        let values: Vec<usize> = out.into_iter().map(|r| r.expect("no faults")).collect();
        assert_eq!(values, (0..50).map(|x| x * 10).collect::<Vec<_>>());
        // Shard 1 saw its items in submission order.
        let seen = log.lock().unwrap().clone();
        assert_eq!(seen, (0..50).filter(|x| x % 3 == 1).collect::<Vec<_>>());
        assert_eq!((0..3).map(|s| pool.executed(s)).sum::<usize>(), 50);
        assert_eq!((0..3).map(|s| pool.panics(s)).sum::<usize>(), 0);
    }

    #[test]
    fn shard_pool_isolates_panics_and_workers_survive() {
        let pool = ShardPool::new(2);
        let out = pool.run_sharded(
            (0..10).collect::<Vec<usize>>(),
            |_, &x| x % 2,
            |_, x| {
                assert!(x != 3, "bomb on item 3");
                x + 1
            },
        );
        for (i, slot) in out.iter().enumerate() {
            if i == 3 {
                let err = slot.as_ref().expect_err("item 3 panicked");
                assert_eq!(err.task, 3);
                match &err.fault {
                    TaskFault::Panicked { message } => {
                        assert!(message.contains("bomb on item 3"), "{message}")
                    }
                    other => panic!("expected panic fault, got {other:?}"),
                }
            } else {
                assert_eq!(*slot.as_ref().expect("healthy item"), i + 1);
            }
        }
        assert_eq!(pool.panics(0) + pool.panics(1), 1);
        // The owning worker survived its panic: the same pool keeps serving.
        let again = pool.run_sharded((0..4).collect::<Vec<usize>>(), |_, &x| x, |_, x| x);
        assert!(again.into_iter().all(|r| r.is_ok()));
    }

    #[test]
    fn shard_pool_submit_runs_after_queued_jobs() {
        let pool = ShardPool::new(1);
        let (tx, rx) = std::sync::mpsc::channel::<usize>();
        for i in 0..5 {
            let tx = tx.clone();
            pool.submit(0, move || {
                let _ = tx.send(i);
            });
        }
        let order: Vec<usize> = (0..5).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
