//! Dependency-free execution runtime for batch workloads.
//!
//! Everything in the workspace that answers a query file — the experiment
//! harness, the oracle searches, the bench harness — funnels its fan-out
//! through this crate. The design constraint is *determinism*: a run with
//! eight workers must produce bit-identical results to a run with one.
//! Two rules enforce that:
//!
//! 1. **Fixed chunk boundaries.** [`parallel_chunks`] splits the input at
//!    positions derived only from the input length and the requested chunk
//!    size — never from the worker count — so the per-chunk computations
//!    are the same no matter how many threads execute them.
//! 2. **Ordered merge.** Results are returned in input order (each worker
//!    writes into the slot of the item it claimed), so any subsequent
//!    order-sensitive reduction (Kahan summation, `ErrorStats` merging)
//!    sees the exact sequence a sequential run would produce.
//!
//! Worker count resolution (highest priority first): an explicit
//! `*_jobs` argument, a process-wide [`set_jobs`] override (the `--jobs N`
//! CLI flag), the `SELEST_JOBS` environment variable, and finally
//! [`std::thread::available_parallelism`]. Workers are plain
//! [`std::thread::scope`] threads: no pools persist between calls, no
//! dependencies are pulled in, and panics inside a task propagate to the
//! caller exactly as they would sequentially.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker-count override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of hardware threads the host offers (at least 1).
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Install a process-wide worker-count override (the `--jobs N` flag).
/// `set_jobs(0)` clears the override.
pub fn set_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// The worker count batch operations use when no explicit count is given:
/// the [`set_jobs`] override if installed, else the `SELEST_JOBS`
/// environment variable if it parses to a positive integer, else
/// [`available_workers`].
pub fn configured_jobs() -> usize {
    let overridden = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if overridden > 0 {
        return overridden;
    }
    if let Ok(v) = std::env::var("SELEST_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    available_workers()
}

/// Apply `f` to every item, returning results in input order, using
/// [`configured_jobs`] workers.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_jobs(items, configured_jobs(), f)
}

/// Apply `f` to every item with an explicit worker count, returning results
/// in input order. `jobs <= 1` (or a single item) runs inline on the
/// calling thread.
pub fn parallel_map_jobs<T, U, F>(items: &[T], jobs: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    run_indexed(items.len(), jobs, |i| f(&items[i]))
}

/// Split `items` into consecutive chunks of `chunk_size` (the last may be
/// shorter), apply `f` to each chunk, and return one result per chunk in
/// chunk order, using [`configured_jobs`] workers.
///
/// Chunk boundaries depend only on `items.len()` and `chunk_size`, so the
/// result is identical for every worker count.
pub fn parallel_chunks<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    parallel_chunks_jobs(items, chunk_size, configured_jobs(), f)
}

/// [`parallel_chunks`] with an explicit worker count.
pub fn parallel_chunks_jobs<T, U, F>(items: &[T], chunk_size: usize, jobs: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    assert!(
        chunk_size > 0,
        "parallel_chunks needs a positive chunk size"
    );
    let n_chunks = items.len().div_ceil(chunk_size);
    run_indexed(n_chunks, jobs, |c| {
        let lo = c * chunk_size;
        let hi = (lo + chunk_size).min(items.len());
        f(&items[lo..hi])
    })
}

/// Shared engine: evaluate `task(0..n)` with work-stealing over an atomic
/// cursor and scatter the results back into input order.
fn run_indexed<U, F>(n: usize, jobs: usize, task: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(task).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let collected: Vec<Vec<(usize, U)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, task(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("selest-par worker panicked"))
            .collect()
    });
    for (i, u) in collected.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "slot {i} filled twice");
        slots[i] = Some(u);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, u)| u.unwrap_or_else(|| panic!("slot {i} never filled")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for jobs in [1, 2, 3, 8] {
            let out = parallel_map_jobs(&items, jobs, |&x| x * 2);
            assert_eq!(
                out,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn chunks_have_fixed_boundaries() {
        let items: Vec<usize> = (0..103).collect();
        let expect: Vec<Vec<usize>> = items.chunks(10).map(|c| c.to_vec()).collect();
        for jobs in [1, 2, 8] {
            let out = parallel_chunks_jobs(&items, 10, jobs, |c| c.to_vec());
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn chunk_reduction_is_bit_identical_across_worker_counts() {
        // An order-sensitive float reduction: naive left-to-right sums per
        // chunk, then a left-to-right merge. Identical for 1/2/8 workers.
        let items: Vec<f64> = (0..10_000).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let reduce = |jobs| {
            let partials = parallel_chunks_jobs(&items, 64, jobs, |c| c.iter().sum::<f64>());
            partials.into_iter().fold(0.0f64, |a, b| a + b)
        };
        let s1 = reduce(1);
        assert_eq!(s1.to_bits(), reduce(2).to_bits());
        assert_eq!(s1.to_bits(), reduce(8).to_bits());
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        let empty: [u32; 0] = [];
        assert!(parallel_map_jobs(&empty, 4, |&x| x).is_empty());
        assert!(parallel_chunks_jobs(&empty, 5, 4, <[u32]>::len).is_empty());
        assert_eq!(parallel_map_jobs(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn jobs_override_takes_priority() {
        set_jobs(3);
        assert_eq!(configured_jobs(), 3);
        set_jobs(0);
        assert!(configured_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "positive chunk size")]
    fn zero_chunk_size_panics() {
        let _ = parallel_chunks_jobs(&[1, 2, 3], 0, 2, <[i32]>::len);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        let _ = parallel_map_jobs(&items, 2, |&x| {
            assert!(x != 63, "boom");
            x
        });
    }
}
