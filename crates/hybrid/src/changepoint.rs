//! Change-point detection (Section 3.3).
//!
//! The hybrid estimator partitions the domain at *change points* — points
//! where the true PDF changes considerably. The paper detects them from the
//! second derivative of an estimated density: "the first change point
//! corresponds to the point where the maximum of the second derivative
//! occurs. Further change points can be computed similarly in a recursive
//! fashion", and explicitly leaves other detectors to future work, which
//! the [`ChangePointDetector`] trait accommodates ([`CusumDetector`] is one
//! such alternative).

use selest_core::Domain;
use selest_math::{normal_density_derivative, robust_scale_sorted};

/// A strategy for locating change points of the underlying density from a
/// sorted sample.
pub trait ChangePointDetector {
    /// Return the detected change points, strictly inside the domain,
    /// in ascending order.
    fn change_points(&self, sorted_samples: &[f64], domain: &Domain) -> Vec<f64>;

    /// Display name for experiment output.
    fn name(&self) -> String;
}

/// The paper's detector: recursive maxima of `|f_hat''|`, estimated by a
/// Gaussian-derivative kernel on an evaluation grid.
#[derive(Debug, Clone, Copy)]
pub struct SecondDerivativeDetector {
    /// Maximum number of change points to emit.
    pub max_points: usize,
    /// Evaluation grid resolution over the whole domain.
    pub grid: usize,
    /// Stop splitting a segment when its peak `|f''|` falls below this
    /// fraction of the global peak — segments that flat are already well
    /// served by a single kernel estimator.
    pub relative_threshold: f64,
    /// Multiplier on the normal-scale pilot bandwidth. The NS pilot is
    /// calibrated for unimodal densities; multimodal data (the regime the
    /// hybrid exists for) needs a fraction of it or the features blur into
    /// one.
    pub pilot_factor: f64,
}

impl Default for SecondDerivativeDetector {
    fn default() -> Self {
        SecondDerivativeDetector {
            max_points: 15,
            grid: 512,
            relative_threshold: 0.02,
            pilot_factor: 0.25,
        }
    }
}

impl SecondDerivativeDetector {
    /// `f_hat''` on an even grid, by the Gaussian-derivative estimator
    /// `(1/(n g^3)) * sum_i phi''((x - X_i)/g)` with the `n^(-1/7)`-rate
    /// pilot bandwidth appropriate for second-derivative estimation.
    ///
    /// Samples are reflected at both domain boundaries: without reflection
    /// the density cliff at the edge of the data produces the largest
    /// `|f''|` of the whole domain and every "change point" lands on a
    /// boundary artifact instead of a feature of `f`.
    ///
    /// Grid points are independent of each other, so they are evaluated in
    /// fixed-boundary chunks on the `selest-par` pool: results are
    /// bit-identical for every worker count.
    ///
    /// For large samples the exact sum — every sample within kernel reach
    /// of every grid point — is by far the dominant cost of hybrid
    /// construction, so past `BINNED_MIN_N` samples the curve is
    /// evaluated over fine-grained bin counts instead (one kernel
    /// evaluation per occupied bin rather than per sample), the same
    /// binning strategy the plug-in functionals use (DESIGN.md §9). The
    /// bin width is held below `g / 8`, far inside the pilot bandwidth, so
    /// the argmax structure the detector reads is unchanged; if the domain
    /// would need more than `MAX_BINS` bins for that, the exact path
    /// runs instead. Small samples always take the exact path, so every
    /// sample-size regime the paper's experiments use is bit-identical to
    /// the historical detector.
    fn second_derivative_grid(&self, sorted: &[f64], domain: &Domain) -> Vec<(f64, f64)> {
        let n = sorted.len();
        let scale = robust_scale_sorted(sorted, sorted);
        let g = if scale > 0.0 {
            self.pilot_factor * scale * (n as f64).powf(-1.0 / 7.0)
        } else {
            domain.width() / self.grid as f64
        }
        // Never drop below the grid resolution, or the curve aliases.
        .max(2.0 * domain.width() / self.grid as f64);
        let reach = 8.5 * g;
        let nf = n as f64;
        let (l, r) = (domain.lo(), domain.hi());

        /// Exact evaluation below this sample count.
        const BINNED_MIN_N: usize = 20_000;
        /// Bin-count cap for the binned path; a spikier-than-this pilot
        /// bandwidth falls back to the exact sum.
        const MAX_BINS: usize = 32_768;
        let wanted_bins = (8.0 * domain.width() / g).ceil() as usize;
        let bins = if n >= BINNED_MIN_N && wanted_bins <= MAX_BINS && domain.width() > 0.0 {
            let b = wanted_bins.max(self.grid);
            let delta = domain.width() / b as f64;
            let mut counts = vec![0.0f64; b];
            for &v in sorted {
                let j = (((v - l) / delta) as usize).min(b - 1);
                counts[j] += 1.0;
            }
            Some((counts, delta))
        } else {
            None
        };

        let at = |i: usize| {
            let x = l + domain.width() * (i as f64 + 0.5) / self.grid as f64;
            let mut sum = 0.0;
            // Direct contributions plus mirror images at each boundary
            // within kernel reach.
            for center in [x, 2.0 * l - x, 2.0 * r - x] {
                match &bins {
                    Some((counts, delta)) => {
                        let j0 = (((center - reach - l) / delta).floor().max(0.0)) as usize;
                        let j1 = ((center + reach - l) / delta).ceil().max(0.0) as usize;
                        for (j, &c) in counts
                            .iter()
                            .enumerate()
                            .take(j1.min(counts.len()))
                            .skip(j0.min(counts.len()))
                        {
                            if c > 0.0 {
                                let xj = l + (j as f64 + 0.5) * delta;
                                sum += c * normal_density_derivative(2, (center - xj) / g);
                            }
                        }
                    }
                    None => {
                        let lo = sorted.partition_point(|&v| v < center - reach);
                        let hi = sorted.partition_point(|&v| v <= center + reach);
                        sum += sorted[lo..hi]
                            .iter()
                            .map(|&v| normal_density_derivative(2, (center - v) / g))
                            .sum::<f64>();
                    }
                }
            }
            (x, sum / (nf * g * g * g))
        };
        let indices: Vec<usize> = (0..self.grid).collect();
        let jobs = if n < 2_048 {
            1
        } else {
            selest_par::configured_jobs()
        };
        selest_par::parallel_chunks_jobs(&indices, 32, jobs, |chunk| {
            chunk.iter().map(|&i| at(i)).collect::<Vec<(f64, f64)>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl ChangePointDetector for SecondDerivativeDetector {
    fn change_points(&self, sorted_samples: &[f64], domain: &Domain) -> Vec<f64> {
        assert!(!sorted_samples.is_empty(), "change_points on empty sample");
        if self.max_points == 0 || sorted_samples.len() < 4 {
            return Vec::new();
        }
        let curve = self.second_derivative_grid(sorted_samples, domain);
        let global_peak = curve.iter().map(|&(_, d)| d.abs()).fold(0.0, f64::max);
        if global_peak <= 0.0 {
            return Vec::new();
        }
        let threshold = self.relative_threshold * global_peak;

        // Recursive splitting on grid-index segments; a plain worklist keeps
        // it iterative. Each split takes the |f''| argmax over the segment
        // *interior* (a small margin keeps the flank of an already chosen
        // peak from being re-detected at a segment edge), and the pushed
        // sub-segments exclude a window around the new point.
        const MARGIN: usize = 3;
        let mut points: Vec<f64> = Vec::new();
        let mut worklist: Vec<(usize, usize)> = vec![(0, curve.len())];
        while let Some((lo, hi)) = worklist.pop() {
            if points.len() >= self.max_points || hi - lo < 2 * MARGIN + 2 {
                continue;
            }
            let (ilo, ihi) = (lo + MARGIN, hi - MARGIN);
            let (arg, peak) = curve[ilo..ihi]
                .iter()
                .enumerate()
                .map(|(i, &(_, d))| (ilo + i, d.abs()))
                .fold((ilo, 0.0), |acc, cur| if cur.1 > acc.1 { cur } else { acc });
            if peak < threshold {
                continue;
            }
            points.push(curve[arg].0);
            worklist.push((lo, arg.saturating_sub(MARGIN)));
            worklist.push(((arg + MARGIN).min(hi), hi));
        }
        points.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        points
    }

    fn name(&self) -> String {
        "f''-maxima".into()
    }
}

/// A distribution-free alternative detector (the future-work direction the
/// paper names): recursive binary segmentation with a Kolmogorov–Smirnov
/// statistic against the uniform-within-segment hypothesis. Splits where
/// the sample's empirical CDF deviates most from linearity, as long as the
/// deviation is significant at roughly the given level.
#[derive(Debug, Clone, Copy)]
pub struct CusumDetector {
    /// Maximum number of change points to emit.
    pub max_points: usize,
    /// KS significance threshold: split when
    /// `sqrt(m) * D_m > threshold` (1.63 ~ the 1% KS critical value).
    pub threshold: f64,
}

impl Default for CusumDetector {
    fn default() -> Self {
        CusumDetector {
            max_points: 7,
            threshold: 1.63,
        }
    }
}

impl ChangePointDetector for CusumDetector {
    fn change_points(&self, sorted_samples: &[f64], domain: &Domain) -> Vec<f64> {
        assert!(!sorted_samples.is_empty(), "change_points on empty sample");
        let mut points = Vec::new();
        // Worklist of (sample range, value range) segments.
        let mut worklist = vec![(0usize, sorted_samples.len(), domain.lo(), domain.hi())];
        while let Some((i0, i1, lo, hi)) = worklist.pop() {
            if points.len() >= self.max_points {
                break;
            }
            let m = i1 - i0;
            if m < 16 || hi - lo <= 0.0 {
                continue;
            }
            // KS distance of the segment's samples from Uniform(lo, hi).
            let mf = m as f64;
            let mut best_d = 0.0f64;
            let mut best_idx = i0;
            for (j, &x) in sorted_samples[i0..i1].iter().enumerate() {
                let u = (x - lo) / (hi - lo);
                let d_hi = ((j + 1) as f64 / mf - u).abs();
                let d_lo = (u - j as f64 / mf).abs();
                let d = d_hi.max(d_lo);
                if d > best_d {
                    best_d = d;
                    best_idx = i0 + j;
                }
            }
            if mf.sqrt() * best_d <= self.threshold {
                continue;
            }
            let cut = sorted_samples[best_idx];
            if cut <= lo || cut >= hi {
                continue;
            }
            points.push(cut);
            let split = sorted_samples.partition_point(|&v| v <= cut);
            worklist.push((i0, split.min(i1), lo, cut));
            worklist.push((split.min(i1), i1, cut, hi));
        }
        points.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        points.dedup();
        points
    }

    fn name(&self) -> String {
        "CUSUM-KS".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Piecewise-uniform sample: dense on [0, 50), sparse on [50, 100).
    fn step_sample() -> Vec<f64> {
        let mut v: Vec<f64> = (0..900).map(|i| 50.0 * (i as f64 + 0.5) / 900.0).collect();
        v.extend((0..100).map(|i| 50.0 + 50.0 * (i as f64 + 0.5) / 100.0));
        v
    }

    #[test]
    fn second_derivative_detector_finds_the_step() {
        let d = Domain::new(0.0, 100.0);
        let det = SecondDerivativeDetector {
            max_points: 3,
            ..Default::default()
        };
        let cps = det.change_points(&step_sample(), &d);
        assert!(!cps.is_empty(), "no change points found");
        assert!(
            cps.iter().any(|&c| (c - 50.0).abs() < 8.0),
            "no change point near the density step: {cps:?}"
        );
    }

    #[test]
    fn cusum_detector_finds_the_step() {
        let d = Domain::new(0.0, 100.0);
        let det = CusumDetector::default();
        let cps = det.change_points(&step_sample(), &d);
        assert!(!cps.is_empty(), "no change points found");
        assert!(
            cps.iter().any(|&c| (c - 50.0).abs() < 5.0),
            "no change point near the density step: {cps:?}"
        );
    }

    #[test]
    fn uniform_data_yields_few_or_no_points() {
        let d = Domain::new(0.0, 100.0);
        let flat: Vec<f64> = (0..1_000)
            .map(|i| 100.0 * (i as f64 + 0.5) / 1_000.0)
            .collect();
        let cps = CusumDetector::default().change_points(&flat, &d);
        assert!(
            cps.is_empty(),
            "CUSUM found spurious change points: {cps:?}"
        );
    }

    #[test]
    fn detectors_respect_max_points() {
        let d = Domain::new(0.0, 100.0);
        // Very jagged data: alternating dense/sparse decades.
        let mut v = Vec::new();
        for dec in 0..10 {
            let count = if dec % 2 == 0 { 500 } else { 20 };
            for i in 0..count {
                v.push(dec as f64 * 10.0 + 10.0 * (i as f64 + 0.5) / count as f64);
            }
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for det in [
            Box::new(SecondDerivativeDetector {
                max_points: 3,
                ..Default::default()
            }) as Box<dyn ChangePointDetector>,
            Box::new(CusumDetector {
                max_points: 3,
                ..Default::default()
            }),
        ] {
            let cps = det.change_points(&v, &d);
            assert!(cps.len() <= 3, "{}: {} points", det.name(), cps.len());
        }
    }

    #[test]
    fn points_are_sorted_and_interior() {
        let d = Domain::new(0.0, 100.0);
        let cps = CusumDetector {
            max_points: 10,
            threshold: 1.0,
        }
        .change_points(&step_sample(), &d);
        for w in cps.windows(2) {
            assert!(w[0] < w[1], "unsorted change points");
        }
        for &c in &cps {
            assert!(c > 0.0 && c < 100.0, "change point {c} on the boundary");
        }
    }
}
