//! The hybrid histogram/kernel estimator (Section 3.3).
//!
//! Change points partition the domain into histogram-style bins; adjacent
//! bins whose sample count is too small are merged; inside each bin an
//! independent kernel estimator runs with its *own* bandwidth chosen from
//! the bin's samples. The histogram layer absorbs the discontinuities that
//! break the smoothness assumption of kernel estimation, and the kernel
//! layer removes the uniform-within-bin assumption that limits histograms —
//! the combination wins on the spiky real data files (Figure 12).

use selest_core::{DensityEstimator, Domain, RangeQuery, SelectivityEstimator};
use selest_kernel::{BandwidthSelector, BoundaryPolicy, DirectPlugIn, KernelEstimator, KernelFn};
use selest_math::robust_scale;

use crate::changepoint::{ChangePointDetector, SecondDerivativeDetector};

/// Within one hybrid bin: how the bin's probability mass is spread.
#[derive(Debug, Clone)]
enum BinModel {
    /// A full kernel estimator over the bin's sub-domain.
    Kernel(KernelEstimator),
    /// Too few samples for kernel estimation: uniform within the bin.
    Uniform,
    /// All samples share one value: a point mass there.
    PointMass(f64),
}

#[derive(Debug, Clone)]
struct HybridBin {
    lo: f64,
    hi: f64,
    /// Fraction of all samples falling in this bin.
    weight: f64,
    model: BinModel,
}

/// Configuration of the hybrid estimator.
pub struct HybridConfig {
    /// Change-point detector; defaults to the paper's second-derivative
    /// maxima.
    pub detector: Box<dyn ChangePointDetector>,
    /// Bins holding fewer than this fraction of the samples are merged into
    /// a neighbor ("adjacent bins are merged into one if the corresponding
    /// number of records is not sufficiently large").
    pub min_bin_fraction: f64,
    /// Boundary treatment at every bin edge.
    pub boundary: BoundaryPolicy,
    /// Per-bin bandwidth rule.
    pub bandwidth: Box<dyn BandwidthSelector>,
    /// Kernel for the per-bin estimators.
    pub kernel: KernelFn,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            detector: Box::new(SecondDerivativeDetector::default()),
            min_bin_fraction: 0.02,
            boundary: BoundaryPolicy::BoundaryKernel,
            // Per-bin plug-in bandwidths: within a bin the density is still
            // far from normal on the spiky files the hybrid targets, so the
            // curvature-estimating rule clearly beats the normal scale rule
            // (mirroring the paper's Figure 11 finding at the bin level).
            bandwidth: Box::new(DirectPlugIn::two_stage()),
            kernel: KernelFn::Epanechnikov,
        }
    }
}

/// The hybrid histogram/kernel selectivity estimator.
///
/// # Examples
///
/// ```
/// use selest_core::{Domain, RangeQuery, SelectivityEstimator};
/// use selest_hybrid::HybridEstimator;
///
/// // A density with a sharp change point at 50: dense left, sparse right.
/// let mut sample: Vec<f64> = (0..900).map(|i| 50.0 * (i as f64 + 0.5) / 900.0).collect();
/// sample.extend((0..100).map(|i| 50.0 + 50.0 * (i as f64 + 0.5) / 100.0));
///
/// let est = HybridEstimator::new(&sample, Domain::new(0.0, 100.0));
/// // 90% of the mass sits left of the change point.
/// let left = est.selectivity(&RangeQuery::new(0.0, 50.0));
/// assert!((left - 0.9).abs() < 0.05);
/// ```
#[derive(Debug)]
pub struct HybridEstimator {
    bins: Vec<HybridBin>,
    domain: Domain,
    n_samples: usize,
}

impl HybridEstimator {
    /// Build with the default configuration (second-derivative change
    /// points, boundary kernels, per-bin normal scale bandwidths).
    pub fn new(samples: &[f64], domain: Domain) -> Self {
        Self::with_config(samples, domain, &HybridConfig::default())
    }

    /// Build with an explicit configuration.
    pub fn with_config(samples: &[f64], domain: Domain, config: &HybridConfig) -> Self {
        assert!(!samples.is_empty(), "HybridEstimator needs samples");
        assert!(
            (0.0..0.5).contains(&config.min_bin_fraction),
            "min_bin_fraction out of [0, 0.5): {}",
            config.min_bin_fraction
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample set"));
        Self::from_sorted(&sorted, domain, config)
    }

    /// [`HybridEstimator::new`] over a prepared column: change-point
    /// detection, bin counting, and per-bin fits all read the column's
    /// shared sorted slice — no copy, no re-sort. Bit-identical to the
    /// unsorted entry points.
    pub fn from_prepared(col: &selest_core::PreparedColumn) -> Self {
        Self::from_prepared_with_config(col, &HybridConfig::default())
    }

    /// [`HybridEstimator::with_config`] over a prepared column.
    pub fn from_prepared_with_config(
        col: &selest_core::PreparedColumn,
        config: &HybridConfig,
    ) -> Self {
        assert!(!col.is_empty(), "HybridEstimator needs samples");
        assert!(
            (0.0..0.5).contains(&config.min_bin_fraction),
            "min_bin_fraction out of [0, 0.5): {}",
            config.min_bin_fraction
        );
        Self::from_sorted(col.sorted(), col.domain(), config)
    }

    /// Change-point partition, bin merge, and per-bin fits over an
    /// already-sorted sample.
    fn from_sorted(sorted: &[f64], domain: Domain, config: &HybridConfig) -> Self {
        assert!(
            domain.contains(sorted[0]) && domain.contains(*sorted.last().expect("nonempty")),
            "samples outside domain {domain}"
        );
        let n = sorted.len();

        // 1. Candidate boundaries from the change points.
        let mut boundaries = vec![domain.lo()];
        boundaries.extend(
            config
                .detector
                .change_points(sorted, &domain)
                .into_iter()
                .filter(|&c| c > domain.lo() && c < domain.hi()),
        );
        boundaries.push(domain.hi());

        // 2. Merge under-populated bins into their left neighbor (the first
        // bin merges right), repeating until every bin is large enough.
        let min_count = ((config.min_bin_fraction * n as f64).ceil() as usize).max(1);
        let count_in = |lo: f64, hi: f64, first: bool| {
            let i0 = if first {
                0
            } else {
                sorted.partition_point(|&v| v <= lo)
            };
            let i1 = sorted.partition_point(|&v| v <= hi);
            (i0, i1)
        };
        loop {
            if boundaries.len() <= 2 {
                break;
            }
            let mut merged = false;
            for i in 0..boundaries.len() - 1 {
                let (i0, i1) = count_in(boundaries[i], boundaries[i + 1], i == 0);
                if i1 - i0 < min_count {
                    // Drop the boundary shared with a neighbor: the last
                    // bin merges left, others merge right.
                    let drop_idx = if i + 2 == boundaries.len() { i } else { i + 1 };
                    boundaries.remove(drop_idx);
                    merged = true;
                    break;
                }
            }
            if !merged {
                break;
            }
        }

        // 3. Fit one model per bin.
        let mut bins = Vec::with_capacity(boundaries.len() - 1);
        for i in 0..boundaries.len() - 1 {
            let (lo, hi) = (boundaries[i], boundaries[i + 1]);
            let (i0, i1) = count_in(lo, hi, i == 0);
            let bin_samples = &sorted[i0..i1];
            let weight = bin_samples.len() as f64 / n as f64;
            let model = Self::fit_bin(bin_samples, lo, hi, config);
            bins.push(HybridBin {
                lo,
                hi,
                weight,
                model,
            });
        }
        HybridEstimator {
            bins,
            domain,
            n_samples: n,
        }
    }

    fn fit_bin(bin_samples: &[f64], lo: f64, hi: f64, config: &HybridConfig) -> BinModel {
        if bin_samples.len() < 8 {
            return BinModel::Uniform;
        }
        let scale = robust_scale(bin_samples);
        if scale <= 0.0 {
            return BinModel::PointMass(bin_samples[0]);
        }
        let bin_domain = Domain::new(lo, hi);
        let mut h = config.bandwidth.bandwidth(bin_samples, config.kernel);
        // Respect the per-bin sub-domain: boundary kernels need
        // h <= width/2, and any larger h oversmooths a bin this narrow.
        let cap = 0.5 * bin_domain.width();
        if h > cap {
            h = cap;
        }
        if h <= 0.0 {
            return BinModel::Uniform;
        }
        BinModel::Kernel(KernelEstimator::new(
            bin_samples,
            bin_domain,
            config.kernel,
            h,
            config.boundary,
        ))
    }

    /// Number of (merged) bins.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// The bin boundaries, `n_bins() + 1` values.
    pub fn boundaries(&self) -> Vec<f64> {
        let mut b: Vec<f64> = self.bins.iter().map(|bin| bin.lo).collect();
        b.push(self.domain.hi());
        b
    }

    /// Number of samples.
    pub fn sample_size(&self) -> usize {
        self.n_samples
    }
}

impl SelectivityEstimator for HybridEstimator {
    fn selectivity(&self, q: &RangeQuery) -> f64 {
        let a = q.a().max(self.domain.lo());
        let b = q.b().min(self.domain.hi());
        if b < a {
            return 0.0;
        }
        let mut total = 0.0;
        for bin in &self.bins {
            if bin.hi < a || bin.lo > b || bin.weight == 0.0 {
                continue;
            }
            let (qa, qb) = (a.max(bin.lo), b.min(bin.hi));
            let inner = match &bin.model {
                BinModel::Kernel(est) => est.selectivity(&RangeQuery::new(qa, qb)),
                BinModel::Uniform => (qb - qa) / (bin.hi - bin.lo),
                BinModel::PointMass(v) => {
                    if qa <= *v && *v <= qb {
                        1.0
                    } else {
                        0.0
                    }
                }
            };
            total += bin.weight * inner;
        }
        total.clamp(0.0, 1.0)
    }

    fn domain(&self) -> Domain {
        self.domain
    }

    fn name(&self) -> String {
        "Hybrid".into()
    }
}

impl DensityEstimator for HybridEstimator {
    fn density(&self, x: f64) -> f64 {
        if !self.domain.contains(x) {
            return 0.0;
        }
        // x belongs to the bin with lo < x <= hi (first bin closed at lo).
        for (i, bin) in self.bins.iter().enumerate() {
            let inside = if i == 0 {
                x >= bin.lo && x <= bin.hi
            } else {
                x > bin.lo && x <= bin.hi
            };
            if !inside {
                continue;
            }
            return match &bin.model {
                BinModel::Kernel(est) => bin.weight * est.density(x),
                BinModel::Uniform => bin.weight / (bin.hi - bin.lo),
                BinModel::PointMass(v) => {
                    if x == *v {
                        f64::INFINITY
                    } else {
                        0.0
                    }
                }
            };
        }
        0.0
    }

    fn domain(&self) -> Domain {
        self.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selest_core::ErrorStats;
    use selest_kernel::NormalScale;

    /// Dense uniform on [0, 50), sparse uniform on [50, 100): a density
    /// with one sharp change point.
    fn step_sample(n_dense: usize, n_sparse: usize) -> Vec<f64> {
        let mut v: Vec<f64> = (0..n_dense)
            .map(|i| 50.0 * (i as f64 + 0.5) / n_dense as f64)
            .collect();
        v.extend((0..n_sparse).map(|i| 50.0 + 50.0 * (i as f64 + 0.5) / n_sparse as f64));
        v
    }

    fn dom() -> Domain {
        Domain::new(0.0, 100.0)
    }

    #[test]
    fn full_domain_mass_is_one() {
        let est = HybridEstimator::new(&step_sample(900, 100), dom());
        let s = est.selectivity(&RangeQuery::new(0.0, 100.0));
        assert!((s - 1.0).abs() < 0.02, "mass {s}");
    }

    #[test]
    fn partitions_at_the_density_step() {
        let est = HybridEstimator::new(&step_sample(900, 100), dom());
        assert!(est.n_bins() >= 2, "no partitioning happened");
        let b = est.boundaries();
        assert!(
            b.iter().any(|&c| (c - 50.0).abs() < 8.0),
            "no bin boundary near the step: {b:?}"
        );
    }

    #[test]
    fn hybrid_beats_plain_kernel_at_the_change_point() {
        // Queries straddling the density step are exactly where a global
        // bandwidth fails (the paper's motivation for the hybrid).
        let samples = step_sample(1800, 200);
        let truth = |a: f64, b: f64| {
            // 90% mass uniform on [0,50), 10% on [50,100).
            let dense = ((b.min(50.0) - a.min(50.0)).max(0.0)) / 50.0 * 0.9;
            let sparse = ((b.max(50.0) - a.max(50.0)).max(0.0)) / 50.0 * 0.1;
            dense + sparse
        };
        let hybrid = HybridEstimator::new(&samples, dom());
        let plain = KernelEstimator::new(
            &samples,
            dom(),
            KernelFn::Epanechnikov,
            NormalScale.bandwidth(&samples, KernelFn::Epanechnikov),
            BoundaryPolicy::BoundaryKernel,
        );
        let mut hybrid_err = ErrorStats::new();
        let mut plain_err = ErrorStats::new();
        for i in 0..40 {
            let c = 44.0 + 12.0 * i as f64 / 40.0; // straddles 50
            let q = RangeQuery::new(c - 2.0, c + 2.0);
            let t = truth(q.a(), q.b()) * 2_000.0;
            hybrid_err.record(t, hybrid.selectivity(&q) * 2_000.0);
            plain_err.record(t, plain.selectivity(&q) * 2_000.0);
        }
        assert!(
            hybrid_err.mean_relative_error() < plain_err.mean_relative_error(),
            "hybrid {} should beat plain kernel {} at the change point",
            hybrid_err.mean_relative_error(),
            plain_err.mean_relative_error()
        );
    }

    #[test]
    fn small_bins_are_merged() {
        // A detector that splinters the domain: merging must keep every
        // bin at >= 10% of the samples.
        struct Splinter;
        impl ChangePointDetector for Splinter {
            fn change_points(&self, _s: &[f64], d: &Domain) -> Vec<f64> {
                (1..20)
                    .map(|i| d.lo() + d.width() * i as f64 / 20.0)
                    .collect()
            }
            fn name(&self) -> String {
                "splinter".into()
            }
        }
        let samples = step_sample(450, 50);
        let cfg = HybridConfig {
            detector: Box::new(Splinter),
            min_bin_fraction: 0.10,
            ..Default::default()
        };
        let est = HybridEstimator::with_config(&samples, dom(), &cfg);
        let min_count = (0.10 * samples.len() as f64).ceil();
        for bin in &est.bins {
            assert!(
                bin.weight * samples.len() as f64 >= min_count - 0.5,
                "bin [{}, {}] holds only {} samples",
                bin.lo,
                bin.hi,
                bin.weight * samples.len() as f64
            );
        }
    }

    #[test]
    fn point_mass_bins_handle_constant_regions() {
        // 60% of the data is the single value 25 (an iw-style stratum),
        // the rest uniform on [50, 100).
        let mut samples = vec![25.0; 600];
        samples.extend((0..400).map(|i| 50.0 + 50.0 * (i as f64 + 0.5) / 400.0));
        let cfg = HybridConfig {
            detector: Box::new(crate::changepoint::CusumDetector::default()),
            ..Default::default()
        };
        let est = HybridEstimator::with_config(&samples, dom(), &cfg);
        let hit = est.selectivity(&RangeQuery::new(24.0, 26.0));
        let miss = est.selectivity(&RangeQuery::new(30.0, 45.0));
        assert!(hit > 0.5, "point mass missed: {hit}");
        assert!(miss < 0.05, "phantom mass in empty region: {miss}");
    }

    #[test]
    fn density_matches_selectivity_by_quadrature() {
        let samples = step_sample(900, 100);
        let est = HybridEstimator::new(&samples, dom());
        for (a, b) in [(10.0, 30.0), (45.0, 55.0), (60.0, 95.0)] {
            let sel = est.selectivity(&RangeQuery::new(a, b));
            let num = selest_math::simpson(|x| est.density(x), a, b, 20_000);
            assert!(
                (sel - num).abs() < 5e-3,
                "[{a},{b}]: selectivity {sel} vs quadrature {num}"
            );
        }
    }

    #[test]
    fn uniform_data_stays_close_to_truth() {
        // No change points to find: the hybrid degenerates to (roughly) a
        // single kernel estimator and must stay accurate.
        let samples: Vec<f64> = (0..1_000)
            .map(|i| 100.0 * (i as f64 + 0.5) / 1_000.0)
            .collect();
        let est = HybridEstimator::new(&samples, dom());
        for (a, b, truth) in [(10.0, 20.0, 0.1), (0.0, 50.0, 0.5), (90.0, 100.0, 0.1)] {
            let s = est.selectivity(&RangeQuery::new(a, b));
            assert!((s - truth).abs() < 0.02, "[{a},{b}]: {s} vs {truth}");
        }
    }
}
