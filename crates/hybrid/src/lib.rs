//! The hybrid histogram/kernel selectivity estimator of Section 3.3 of
//! Blohsfeld, Korus & Seeger (SIGMOD 1999).
//!
//! Change points of the underlying density — detected from the maxima of an
//! estimated second derivative ([`SecondDerivativeDetector`]) or by a
//! CUSUM/KS segmentation ([`CusumDetector`], the paper's future-work
//! direction) — partition the domain into bins; under-populated bins are
//! merged; each surviving bin runs its own kernel estimator with a locally
//! chosen bandwidth. See [`HybridEstimator`].

pub mod changepoint;
pub mod estimator;

pub use changepoint::{ChangePointDetector, CusumDetector, SecondDerivativeDetector};
pub use estimator::{HybridConfig, HybridEstimator};
