//! Sampling without replacement (Section 5.1.1: "From each of these data
//! sets we have drawn sample sets of 2,000 records by selecting the records
//! from the file in a random fashion without replacement").
//!
//! Two algorithms are provided: a partial Fisher–Yates shuffle for the
//! common case where the data fits in memory, and reservoir sampling
//! (Vitter's algorithm R) for single-pass streaming contexts such as the
//! store's `ANALYZE`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Draw `n` values from `values` uniformly without replacement, by a partial
/// Fisher–Yates shuffle of an index array. Deterministic per seed.
///
/// Panics if `n > values.len()` — callers must cap the sample size.
pub fn sample_without_replacement(values: &[f64], n: usize, seed: u64) -> Vec<f64> {
    assert!(
        n <= values.len(),
        "cannot draw {n} samples from {} values without replacement",
        values.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<u32> = (0..values.len() as u32).collect();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let j = rng.random_range(i..values.len());
        idx.swap(i, j);
        out.push(values[idx[i] as usize]);
    }
    out
}

/// Reservoir sampling (algorithm R): draw `n` values from a stream of
/// unknown length, uniformly without replacement. Returns fewer than `n`
/// values only if the stream is shorter than `n`.
pub fn reservoir_sample<I: IntoIterator<Item = f64>>(stream: I, n: usize, seed: u64) -> Vec<f64> {
    assert!(n > 0, "reservoir_sample needs n > 0");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir: Vec<f64> = Vec::with_capacity(n);
    for (i, v) in stream.into_iter().enumerate() {
        if i < n {
            reservoir.push(v);
        } else {
            let j = rng.random_range(0..=i);
            if j < n {
                reservoir[j] = v;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fisher_yates_draws_distinct_positions() {
        // With all-distinct values, "without replacement" means the output
        // has no duplicates.
        let values: Vec<f64> = (0..1_000).map(|i| i as f64).collect();
        let sample = sample_without_replacement(&values, 200, 9);
        assert_eq!(sample.len(), 200);
        let mut sorted = sample.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        assert_eq!(sorted.len(), 200, "sample has duplicate positions");
    }

    #[test]
    fn fisher_yates_full_draw_is_a_permutation() {
        let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut sample = sample_without_replacement(&values, 50, 4);
        sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sample, values);
    }

    #[test]
    fn fisher_yates_is_deterministic_and_seed_sensitive() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(
            sample_without_replacement(&values, 10, 1),
            sample_without_replacement(&values, 10, 1)
        );
        assert_ne!(
            sample_without_replacement(&values, 10, 1),
            sample_without_replacement(&values, 10, 2)
        );
    }

    #[test]
    fn fisher_yates_is_roughly_uniform() {
        // Each of 10 values should be drawn ~equally often across seeds.
        let values: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut counts = [0usize; 10];
        for seed in 0..2_000 {
            for v in sample_without_replacement(&values, 3, seed) {
                counts[v as usize] += 1;
            }
        }
        // Expected 600 per value.
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - 600).unsigned_abs() < 100,
                "value {i} drawn {c} times"
            );
        }
    }

    #[test]
    #[should_panic(expected = "without replacement")]
    fn fisher_yates_rejects_oversized_sample() {
        let _ = sample_without_replacement(&[1.0, 2.0], 3, 0);
    }

    #[test]
    fn reservoir_short_stream_returns_everything() {
        let r = reservoir_sample(vec![1.0, 2.0, 3.0], 10, 0);
        assert_eq!(r, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn reservoir_long_stream_keeps_n() {
        let r = reservoir_sample((0..10_000).map(|i| i as f64), 100, 5);
        assert_eq!(r.len(), 100);
        let mut sorted = r.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "reservoir repeated a position");
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Probability any element survives should be n/N = 0.1.
        let n_trials = 600;
        let mut first_half = 0usize;
        for seed in 0..n_trials {
            for v in reservoir_sample((0..1_000).map(|i| i as f64), 100, seed) {
                if v < 500.0 {
                    first_half += 1;
                }
            }
        }
        let frac = first_half as f64 / (n_trials as usize * 100) as f64;
        assert!((frac - 0.5).abs() < 0.02, "first-half fraction {frac}");
    }
}
