//! Greenwald–Khanna ε-approximate quantile sketch — the mergeable half of
//! the incremental statistics substrate (DESIGN.md §15).
//!
//! Reservoir sampling (the paper's setting) retains whole records; a GK
//! sketch summarizes a stream in `O((1/ε) log(εn))` entries while
//! guaranteeing every quantile query a rank error of at most `εn` — the
//! structure a production `ANALYZE` uses to build equi-depth histograms in
//! one pass without remembering any sample. Since PR 9 the sketch is a
//! production structure rather than a figure-only extension:
//!
//! * [`GkSketch::merge`] combines two summaries with the standard
//!   delta-inflation rule, so partitions sketch independently and combine
//!   — the merged summary answers rank queries within
//!   `εa·na + εb·nb ≤ ε·(na+nb)` for `ε = max(εa, εb)` (callers assert
//!   the conservative `2ε` bound).
//! * Deletes are **tombstone-compensated**: [`GkSketch::note_delete`]
//!   counts them without touching the summary (GK entries cannot be
//!   unwound), [`GkSketch::live_n`] reports the live cardinality, and the
//!   store's staleness policy caps [`GkSketch::tombstone_fraction`]
//!   before the insert-only quantiles drift too far from the live data.
//! * [`GkSketch::rank_error_bound`] exposes the *realized* bound
//!   `ceil(max(g+δ)/2)` so callers can assert the `≤ εn` guarantee
//!   instead of trusting the clamp; the `_with_bound` query variants
//!   return it alongside their answers.
//! * [`GkSketch::to_parts`] / [`GkSketch::from_parts`] serialize the
//!   summary for the durable journal, with restore-side validation that
//!   rejects state no live sketch could have reached.
//!
//! `GkSketch::equi_depth_boundaries` feeds directly into
//! `selest_histogram::equi_depth_from_boundaries` — the one shared
//! sketch→`BinnedHistogram` path used by both the catalog's incremental
//! ANALYZE and the `ext05` streaming figure.

use selest_core::EstimateError;

/// One summary tuple: the value, the minimum-rank gap `g` to the previous
/// tuple, and the rank uncertainty `delta`.
#[derive(Debug, Clone, Copy)]
struct Entry {
    v: f64,
    g: u64,
    delta: u64,
}

/// Serializable state of a [`GkSketch`] (see [`GkSketch::to_parts`]); the
/// durable store journals this.
#[derive(Debug, Clone, PartialEq)]
pub struct GkParts {
    /// Rank-error parameter.
    pub epsilon: f64,
    /// Stream values consumed.
    pub n: u64,
    /// Tombstoned deletes.
    pub tombstones: u64,
    /// Summary tuples `(v, g, delta)` in ascending `v` order.
    pub entries: Vec<(f64, u64, u64)>,
}

/// Greenwald–Khanna streaming quantile summary with error parameter `ε`.
/// # Examples
///
/// ```
/// use selest_data::GkSketch;
///
/// let mut left = GkSketch::new(0.01);
/// let mut right = GkSketch::new(0.01);
/// for i in 0..10_000 {
///     let v = ((i * 37) % 1_000) as f64;
///     if i % 2 == 0 { left.insert(v) } else { right.insert(v) }
/// }
/// left.merge(&right); // partitions sketch independently and combine
/// let (median, bound) = left.quantile_with_bound(0.5);
/// assert!((median - 500.0).abs() < 30.0);
/// assert!(bound <= (2.0 * 0.01 * 10_000.0) as u64); // realized ≤ 2εn
/// assert!(left.entries() < 500); // bounded memory
/// ```
#[derive(Debug, Clone)]
pub struct GkSketch {
    epsilon: f64,
    entries: Vec<Entry>,
    n: u64,
    tombstones: u64,
    since_compress: u64,
}

impl GkSketch {
    /// New sketch with rank-error parameter `epsilon` in `(0, 0.5)`; a
    /// quantile query at fraction `q` returns a value whose true rank is
    /// within `epsilon * n` of `q * n`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 0.5,
            "GkSketch epsilon out of (0, 0.5): {epsilon}"
        );
        GkSketch {
            epsilon,
            entries: Vec::new(),
            n: 0,
            tombstones: 0,
            since_compress: 0,
        }
    }

    /// The rank-error parameter `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of stream values consumed (inserts only; deletes are
    /// tombstoned, see [`GkSketch::live_n`]).
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the sketch has seen no values.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current number of summary tuples (the sketch's memory footprint).
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Tombstoned deletes.
    pub fn tombstones(&self) -> u64 {
        self.tombstones
    }

    /// Live cardinality: inserts minus tombstoned deletes.
    pub fn live_n(&self) -> u64 {
        self.n - self.tombstones.min(self.n)
    }

    /// Tombstone debt as a fraction of the insert stream. Quantiles keep
    /// describing the insert-only stream; the staleness policy forces a
    /// rebuild before this bias can grow unbounded.
    pub fn tombstone_fraction(&self) -> f64 {
        self.tombstones as f64 / self.n.max(1) as f64
    }

    /// Record a delete. GK summary tuples cannot be unwound, so the
    /// delete is *compensated*, not applied: the tombstone count feeds
    /// [`GkSketch::live_n`] and the staleness policy, while quantiles
    /// continue to describe the insert stream.
    pub fn note_delete(&mut self) {
        self.tombstones += 1;
    }

    /// Consume one stream value.
    pub fn insert(&mut self, v: f64) {
        assert!(v.is_finite(), "GkSketch cannot ingest {v}");
        self.n += 1;
        let pos = self.entries.partition_point(|e| e.v < v);
        let delta = if pos == 0 || pos == self.entries.len() {
            0
        } else {
            let cap = (2.0 * self.epsilon * self.n as f64).floor() as u64;
            cap.saturating_sub(1)
        };
        self.entries.insert(pos, Entry { v, g: 1, delta });
        self.since_compress += 1;
        if self.since_compress as f64 >= 1.0 / (2.0 * self.epsilon) {
            self.compress();
            self.since_compress = 0;
        }
    }

    /// [`GkSketch::insert`] with a typed error instead of a panic: the
    /// incremental update path absorbs values without a sanitize pass, so
    /// a NaN reaching the sketch surfaces as
    /// [`EstimateError::NonFiniteUpdate`] upstream.
    pub fn try_insert(&mut self, v: f64) -> Result<(), EstimateError> {
        if !v.is_finite() {
            return Err(EstimateError::NonFiniteUpdate { value: v });
        }
        self.insert(v);
        Ok(())
    }

    /// Merge tuples whose combined uncertainty stays within the bound.
    fn compress(&mut self) {
        if self.entries.len() < 3 {
            return;
        }
        let cap = (2.0 * self.epsilon * self.n as f64).floor() as u64;
        let mut out: Vec<Entry> = Vec::with_capacity(self.entries.len());
        // Keep the first entry; try to merge each entry into its successor
        // scanning right-to-left (the classical formulation); equivalently
        // scan left-to-right merging the current into the next.
        let mut iter = self.entries.iter().copied();
        let mut cur = iter.next().expect("nonempty");
        for next in iter {
            let merged_g = cur.g + next.g;
            // Never merge away the first/last tuple (exact extremes).
            let is_first = out.is_empty();
            if !is_first && merged_g + next.delta <= cap {
                cur = Entry {
                    v: next.v,
                    g: merged_g,
                    delta: next.delta,
                };
            } else {
                out.push(cur);
                cur = next;
            }
        }
        out.push(cur);
        self.entries = out;
    }

    /// Absorb another summary (the other sketch is unchanged). The merged
    /// summary covers both streams: entry lists merge-sort by value, and
    /// each entry's uncertainty inflates by the rank slack of the other
    /// summary around it (`g' + δ' − 1` of the other side's successor) —
    /// so `max(g+δ) ≤ 2εa·na + 2εb·nb`, and rank queries on the result
    /// stay within `ε·n` of the truth for `ε = max(εa, εb)`,
    /// `n = na + nb`. Repeated/unbalanced merges are associative in the
    /// bound (each stream's slack is counted once), so partition trees of
    /// any shape stay within the same guarantee; callers assert the
    /// conservative `2ε` rank bound. Tombstones add.
    pub fn merge(&mut self, other: &GkSketch) {
        self.epsilon = self.epsilon.max(other.epsilon);
        self.tombstones += other.tombstones;
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            self.entries = other.entries.clone();
            self.n = other.n;
            self.since_compress = 0;
            return;
        }
        let a = &self.entries;
        let b = &other.entries;
        let mut merged: Vec<Entry> = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            // Ties take self's entry first; either order satisfies the
            // bound, this one makes merge deterministic.
            let take_a = j >= b.len() || (i < a.len() && a[i].v <= b[j].v);
            let mut e = if take_a {
                let mut e = a[i];
                i += 1;
                // The other summary's not-yet-consumed successor brackets
                // this value: its rank there is uncertain by g' + δ' − 1.
                if j < b.len() {
                    e.delta += (b[j].g + b[j].delta).saturating_sub(1);
                }
                e
            } else {
                let mut e = b[j];
                j += 1;
                if i < a.len() {
                    e.delta += (a[i].g + a[i].delta).saturating_sub(1);
                }
                e
            };
            // The global extremes are exact in the merged stream.
            if merged.is_empty() || (i >= a.len() && j >= b.len()) {
                e.delta = 0;
            }
            merged.push(e);
        }
        self.entries = merged;
        self.n += other.n;
        self.since_compress = 0;
        self.compress();
    }

    /// The *realized* rank-error bound of this summary: every rank query
    /// is answered within `ceil(max(g+δ)/2)` ranks. The GK invariant
    /// keeps this at `≤ εn` for a single-stream sketch and `≤ 2εn` after
    /// merges — callers assert against it instead of trusting the clamp.
    pub fn rank_error_bound(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.g + e.delta)
            .max()
            .unwrap_or(0)
            .div_ceil(2)
    }

    /// The ε-approximate `q`-quantile (`q` in `[0, 1]`). Panics on an empty
    /// sketch.
    pub fn quantile(&self, q: f64) -> f64 {
        self.quantile_with_bound(q).0
    }

    /// [`GkSketch::quantile`] plus the realized rank-error bound the
    /// answer carries: the returned value's true rank is within `bound`
    /// of `ceil(q·n)`.
    pub fn quantile_with_bound(&self, q: f64) -> (f64, u64) {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile fraction out of [0,1]: {q}"
        );
        assert!(self.n > 0, "quantile of an empty sketch");
        let bound = self.rank_error_bound();
        let target = (q * self.n as f64).ceil() as u64;
        let slack = (self.epsilon * self.n as f64) as u64;
        let mut r_min = 0u64;
        for (i, e) in self.entries.iter().enumerate() {
            r_min += e.g;
            // First entry whose max rank exceeds target + slack: the
            // previous entry is a valid answer.
            if r_min + e.delta > target + slack {
                return (self.entries[i.saturating_sub(1)].v, bound);
            }
        }
        (self.entries.last().expect("nonempty").v, bound)
    }

    /// Equi-depth boundaries for `k` bins over `[lo, hi]`: the interior
    /// `j/k` quantiles framed by the given domain bounds — drop-in input
    /// for `selest_histogram::equi_depth_from_boundaries`.
    pub fn equi_depth_boundaries(&self, k: usize, lo: f64, hi: f64) -> Vec<f64> {
        self.equi_depth_boundaries_with_bound(k, lo, hi).0
    }

    /// [`GkSketch::equi_depth_boundaries`] plus the realized rank-error
    /// bound: every interior boundary sits within `bound` ranks of its
    /// exact `j/k` depth slice edge, so callers can assert the `≤ εn`
    /// guarantee rather than trusting the silent clamp.
    pub fn equi_depth_boundaries_with_bound(&self, k: usize, lo: f64, hi: f64) -> (Vec<f64>, u64) {
        assert!(k >= 1, "need at least one bin");
        assert!(lo <= hi, "lo must not exceed hi");
        let mut b = Vec::with_capacity(k + 1);
        b.push(lo);
        for j in 1..k {
            b.push(self.quantile(j as f64 / k as f64).clamp(lo, hi));
        }
        b.push(hi);
        // Enforce monotonicity exactly (approximation noise can reorder
        // adjacent quantiles by up to 2 eps n ranks).
        for i in 1..b.len() {
            if b[i] < b[i - 1] {
                b[i] = b[i - 1];
            }
        }
        (b, self.rank_error_bound())
    }

    /// Serialize into plain parts (for the durable journal).
    pub fn to_parts(&self) -> GkParts {
        GkParts {
            epsilon: self.epsilon,
            n: self.n,
            tombstones: self.tombstones,
            entries: self.entries.iter().map(|e| (e.v, e.g, e.delta)).collect(),
        }
    }

    /// Rebuild from serialized parts, validating every GK invariant a
    /// live sketch maintains: ε in range, values finite and ascending
    /// (`total_cmp` — a NaN surfaces as a typed error, never a panic),
    /// gaps positive and summing to `n`, the first entry exact, and every
    /// `g + δ` within the (post-merge) uncertainty cap.
    pub fn from_parts(parts: GkParts) -> Result<Self, EstimateError> {
        let corrupt = |message: String| EstimateError::CorruptEntry {
            path: None,
            line: 1,
            offset: 0,
            message,
        };
        if !(parts.epsilon > 0.0 && parts.epsilon < 0.5) {
            return Err(corrupt(format!(
                "sketch epsilon out of (0, 0.5): {}",
                parts.epsilon
            )));
        }
        if (parts.n == 0) != parts.entries.is_empty() {
            return Err(corrupt(format!(
                "sketch holds {} entries for n={}",
                parts.entries.len(),
                parts.n
            )));
        }
        let mut entries = Vec::with_capacity(parts.entries.len());
        let mut total_g = 0u64;
        // Merged summaries carry up to 2εa·na + 2εb·nb ≤ 2εn uncertainty;
        // +2 absorbs the floor/ceil slack at tiny n.
        let cap = (2.0 * parts.epsilon * parts.n as f64).floor() as u64 + 2;
        for (i, &(v, g, delta)) in parts.entries.iter().enumerate() {
            if !v.is_finite() {
                return Err(EstimateError::NonFiniteUpdate { value: v });
            }
            if i > 0 && parts.entries[i - 1].0.total_cmp(&v) == std::cmp::Ordering::Greater {
                return Err(corrupt(format!("sketch entries out of order at {i}")));
            }
            if g == 0 {
                return Err(corrupt(format!("sketch entry {i} has zero gap")));
            }
            if i == 0 && delta != 0 {
                return Err(corrupt("sketch first entry is not exact".to_owned()));
            }
            if g + delta > cap.max(g) {
                return Err(corrupt(format!(
                    "sketch entry {i} uncertainty {} exceeds cap {cap}",
                    g + delta
                )));
            }
            total_g += g;
            entries.push(Entry { v, g, delta });
        }
        if total_g != parts.n {
            return Err(corrupt(format!(
                "sketch gaps sum to {total_g}, n is {}",
                parts.n
            )));
        }
        Ok(GkSketch {
            epsilon: parts.epsilon,
            entries,
            n: parts.n,
            tombstones: parts.tombstones,
            since_compress: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance from the target rank to the rank *interval* a value
    /// occupies (duplicated values cover a whole range of ranks).
    fn rank_distance(sorted: &[f64], v: f64, target: f64) -> f64 {
        let lo = sorted.partition_point(|&x| x < v) as f64;
        let hi = sorted.partition_point(|&x| x <= v) as f64;
        if target < lo {
            lo - target
        } else if target > hi {
            target - hi
        } else {
            0.0
        }
    }

    fn check_rank_errors(stream: &[f64], epsilon: f64) {
        let mut sk = GkSketch::new(epsilon);
        for &v in stream {
            sk.insert(v);
        }
        check_sketch_rank_errors(&sk, stream, epsilon);
    }

    fn check_sketch_rank_errors(sk: &GkSketch, stream: &[f64], epsilon: f64) {
        let mut sorted = stream.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = stream.len() as f64;
        assert!(
            sk.rank_error_bound() as f64 <= 2.0 * epsilon * n + 1.0,
            "realized bound {} exceeds 2εn = {}",
            sk.rank_error_bound(),
            2.0 * epsilon * n
        );
        for i in 1..20 {
            let q = i as f64 / 20.0;
            let (v, bound) = sk.quantile_with_bound(q);
            let err = rank_distance(&sorted, v, q * n);
            assert!(
                err <= 2.0 * epsilon * n + 1.0,
                "q={q}: value {v} misses the target rank {} by {err}",
                q * n
            );
            assert!(
                err <= bound as f64 + epsilon * n + 1.0,
                "q={q}: error {err} exceeds advertised bound {bound} + εn"
            );
        }
    }

    #[test]
    fn rank_error_bound_on_sorted_stream() {
        let stream: Vec<f64> = (0..20_000).map(|i| i as f64).collect();
        check_rank_errors(&stream, 0.01);
    }

    #[test]
    fn rank_error_bound_on_adversarial_orders() {
        // Reverse order and an interleaved order.
        let rev: Vec<f64> = (0..20_000).rev().map(|i| i as f64).collect();
        check_rank_errors(&rev, 0.01);
        let interleaved: Vec<f64> = (0..20_000).map(|i| ((i * 7_919) % 20_000) as f64).collect();
        check_rank_errors(&interleaved, 0.01);
    }

    #[test]
    fn handles_heavy_duplicates() {
        let mut stream = vec![42.0; 15_000];
        stream.extend((0..5_000).map(|i| i as f64 / 10.0));
        check_rank_errors(&stream, 0.02);
        let mut sk = GkSketch::new(0.02);
        for &v in &stream {
            sk.insert(v);
        }
        // The median of this stream is 42.
        assert_eq!(sk.quantile(0.5), 42.0);
    }

    #[test]
    fn memory_stays_sublinear() {
        let mut sk = GkSketch::new(0.01);
        for i in 0..100_000 {
            sk.insert(((i * 7_919) % 100_000) as f64);
        }
        // Exact storage would be 100 000 entries; GK should be ~O((1/eps)
        // log(eps n)) ~ a few hundred.
        assert!(
            sk.entries() < 2_000,
            "sketch holds {} entries for 100k stream values",
            sk.entries()
        );
    }

    #[test]
    fn merged_partitions_stay_within_twice_epsilon() {
        let stream: Vec<f64> = (0..30_000).map(|i| ((i * 7_919) % 30_000) as f64).collect();
        for parts in [2usize, 4, 7] {
            let chunk = stream.len().div_ceil(parts);
            let mut merged: Option<GkSketch> = None;
            for piece in stream.chunks(chunk) {
                let mut sk = GkSketch::new(0.005);
                for &v in piece {
                    sk.insert(v);
                }
                match merged.as_mut() {
                    Some(m) => m.merge(&sk),
                    None => merged = Some(sk),
                }
            }
            let merged = merged.unwrap();
            assert_eq!(merged.len(), stream.len() as u64);
            check_sketch_rank_errors(&merged, &stream, 0.005);
            // Merged memory stays summary-sized.
            assert!(merged.entries() < 4_000, "{} entries", merged.entries());
        }
    }

    #[test]
    fn merge_handles_empty_sides() {
        let mut a = GkSketch::new(0.01);
        let mut b = GkSketch::new(0.02);
        for i in 0..1_000 {
            b.insert(i as f64);
        }
        a.merge(&b); // empty ← full adopts the stream
        assert_eq!(a.len(), 1_000);
        assert_eq!(a.epsilon(), 0.02);
        let before = a.len();
        a.merge(&GkSketch::new(0.01)); // full ← empty is a no-op
        assert_eq!(a.len(), before);
        assert!((a.quantile(0.5) - 500.0).abs() < 50.0);
    }

    #[test]
    fn tombstones_compensate_deletes() {
        let mut sk = GkSketch::new(0.01);
        for i in 0..1_000 {
            sk.insert(i as f64);
        }
        for _ in 0..250 {
            sk.note_delete();
        }
        assert_eq!(sk.len(), 1_000);
        assert_eq!(sk.live_n(), 750);
        assert_eq!(sk.tombstones(), 250);
        assert!((sk.tombstone_fraction() - 0.25).abs() < 1e-12);
        // Tombstones survive merges additively.
        let mut other = GkSketch::new(0.01);
        other.insert(1.0);
        other.note_delete();
        sk.merge(&other);
        assert_eq!(sk.tombstones(), 251);
        assert_eq!(sk.live_n(), 1_001 - 251);
    }

    #[test]
    fn try_insert_rejects_non_finite_with_typed_error() {
        let mut sk = GkSketch::new(0.01);
        assert!(matches!(
            sk.try_insert(f64::NAN),
            Err(EstimateError::NonFiniteUpdate { value }) if value.is_nan()
        ));
        assert!(matches!(
            sk.try_insert(f64::NEG_INFINITY),
            Err(EstimateError::NonFiniteUpdate { .. })
        ));
        assert!(sk.is_empty(), "rejected values must not count");
        sk.try_insert(3.5).unwrap();
        assert_eq!(sk.len(), 1);
    }

    #[test]
    fn parts_round_trip_and_reject_corruption() {
        let mut sk = GkSketch::new(0.01);
        for i in 0..5_000 {
            sk.insert(((i * 37) % 500) as f64);
        }
        sk.note_delete();
        let parts = sk.to_parts();
        let back = GkSketch::from_parts(parts.clone()).expect("valid parts");
        assert_eq!(back.to_parts(), parts);
        assert_eq!(back.quantile(0.5), sk.quantile(0.5));
        assert_eq!(back.tombstones(), 1);

        // Reordered entries are rejected.
        let mut bad = parts.clone();
        bad.entries.swap(0, 1);
        assert!(GkSketch::from_parts(bad).is_err());
        // A gap-sum mismatch is rejected.
        let mut bad = parts.clone();
        bad.n += 7;
        assert!(GkSketch::from_parts(bad).is_err());
        // A NaN value surfaces as the typed non-finite error, not a panic.
        let mut bad = parts.clone();
        bad.entries[2].0 = f64::NAN;
        assert!(matches!(
            GkSketch::from_parts(bad),
            Err(EstimateError::NonFiniteUpdate { .. })
        ));
        // Epsilon out of range is rejected.
        let mut bad = parts;
        bad.epsilon = 0.7;
        assert!(GkSketch::from_parts(bad).is_err());
    }

    #[test]
    fn equi_depth_boundaries_are_monotone_and_framed() {
        let mut sk = GkSketch::new(0.01);
        for i in 0..10_000 {
            sk.insert(((i * 37) % 1_000) as f64);
        }
        let (b, bound) = sk.equi_depth_boundaries_with_bound(16, 0.0, 1_000.0);
        assert_eq!(b.len(), 17);
        assert_eq!(b[0], 0.0);
        assert_eq!(b[16], 1_000.0);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
        assert!(
            bound <= (2.0 * 0.01 * 10_000.0) as u64 + 1,
            "realized bound {bound}"
        );
        // Interior boundaries near the true 1/16-quantiles of Uniform[0,1000).
        for (j, &v) in b.iter().enumerate().skip(1).take(15) {
            let truth = 1_000.0 * j as f64 / 16.0;
            assert!((v - truth).abs() < 40.0, "boundary {j}: {v} vs {truth}");
        }
    }

    #[test]
    fn sketch_feeds_an_equi_depth_histogram() {
        use selest_core::{Domain, RangeQuery, SelectivityEstimator};
        // Skewed stream: 80% below 100.
        let mut stream: Vec<f64> = (0..8_000).map(|i| (i % 100) as f64).collect();
        stream.extend((0..2_000).map(|i| 100.0 + (i % 900) as f64));
        let mut sk = GkSketch::new(0.005);
        for &v in &stream {
            sk.insert(v);
        }
        let domain = Domain::new(0.0, 1_000.0);
        let boundaries = sk.equi_depth_boundaries(20, domain.lo(), domain.hi());
        // The one shared sketch→histogram path (satellite of PR 9): depth
        // counts come from the same rank-difference rule the sample-sorted
        // equi-depth uses.
        let hist = selest_histogram::equi_depth_from_boundaries(boundaries, sk.len(), domain);
        let s = hist.selectivity(&RangeQuery::new(0.0, 99.5));
        assert!((s - 0.8).abs() < 0.05, "dense-region mass {s}");
    }

    #[test]
    #[should_panic(expected = "quantile of an empty sketch")]
    fn empty_sketch_panics_on_query() {
        let _ = GkSketch::new(0.1).quantile(0.5);
    }
}
