//! Greenwald–Khanna ε-approximate quantile sketch.
//!
//! Reservoir sampling (the paper's setting) retains whole records; a GK
//! sketch summarizes a stream in `O((1/ε) log(εn))` entries while
//! guaranteeing every quantile query a rank error of at most `εn` — the
//! structure a production `ANALYZE` uses to build equi-depth histograms in
//! one pass without remembering any sample. Provided as a substrate
//! extension; `GkSketch::equi_depth_boundaries` feeds directly into
//! `selest_histogram::BinnedHistogram`.

/// One summary tuple: the value, the minimum-rank gap `g` to the previous
/// tuple, and the rank uncertainty `delta`.
#[derive(Debug, Clone, Copy)]
struct Entry {
    v: f64,
    g: u64,
    delta: u64,
}

/// Greenwald–Khanna streaming quantile summary with error parameter `ε`.
/// # Examples
///
/// ```
/// use selest_data::GkSketch;
///
/// let mut sketch = GkSketch::new(0.01);
/// for i in 0..10_000 {
///     sketch.insert(((i * 37) % 1_000) as f64); // any order works
/// }
/// let median = sketch.quantile(0.5);
/// assert!((median - 500.0).abs() < 30.0);
/// assert!(sketch.entries() < 500); // bounded memory
/// ```
#[derive(Debug, Clone)]
pub struct GkSketch {
    epsilon: f64,
    entries: Vec<Entry>,
    n: u64,
    since_compress: u64,
}

impl GkSketch {
    /// New sketch with rank-error parameter `epsilon` in `(0, 0.5)`; a
    /// quantile query at fraction `q` returns a value whose true rank is
    /// within `epsilon * n` of `q * n`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 0.5,
            "GkSketch epsilon out of (0, 0.5): {epsilon}"
        );
        GkSketch {
            epsilon,
            entries: Vec::new(),
            n: 0,
            since_compress: 0,
        }
    }

    /// Number of stream values consumed.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the sketch has seen no values.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current number of summary tuples (the sketch's memory footprint).
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Consume one stream value.
    pub fn insert(&mut self, v: f64) {
        assert!(v.is_finite(), "GkSketch cannot ingest {v}");
        self.n += 1;
        let pos = self.entries.partition_point(|e| e.v < v);
        let delta = if pos == 0 || pos == self.entries.len() {
            0
        } else {
            let cap = (2.0 * self.epsilon * self.n as f64).floor() as u64;
            cap.saturating_sub(1)
        };
        self.entries.insert(pos, Entry { v, g: 1, delta });
        self.since_compress += 1;
        if self.since_compress as f64 >= 1.0 / (2.0 * self.epsilon) {
            self.compress();
            self.since_compress = 0;
        }
    }

    /// Merge tuples whose combined uncertainty stays within the bound.
    fn compress(&mut self) {
        if self.entries.len() < 3 {
            return;
        }
        let cap = (2.0 * self.epsilon * self.n as f64).floor() as u64;
        let mut out: Vec<Entry> = Vec::with_capacity(self.entries.len());
        // Keep the first entry; try to merge each entry into its successor
        // scanning right-to-left (the classical formulation); equivalently
        // scan left-to-right merging the current into the next.
        let mut iter = self.entries.iter().copied();
        let mut cur = iter.next().expect("nonempty");
        for next in iter {
            let merged_g = cur.g + next.g;
            // Never merge away the first/last tuple (exact extremes).
            let is_first = out.is_empty();
            if !is_first && merged_g + next.delta <= cap {
                cur = Entry {
                    v: next.v,
                    g: merged_g,
                    delta: next.delta,
                };
            } else {
                out.push(cur);
                cur = next;
            }
        }
        out.push(cur);
        self.entries = out;
    }

    /// The ε-approximate `q`-quantile (`q` in `[0, 1]`). Panics on an empty
    /// sketch.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile fraction out of [0,1]: {q}"
        );
        assert!(self.n > 0, "quantile of an empty sketch");
        let target = (q * self.n as f64).ceil() as u64;
        let bound = (self.epsilon * self.n as f64) as u64;
        let mut r_min = 0u64;
        for (i, e) in self.entries.iter().enumerate() {
            r_min += e.g;
            // First entry whose max rank exceeds target + bound: the
            // previous entry is a valid answer.
            if r_min + e.delta > target + bound {
                return self.entries[i.saturating_sub(1)].v;
            }
        }
        self.entries.last().expect("nonempty").v
    }

    /// Equi-depth boundaries for `k` bins over `[lo, hi]`: the interior
    /// `j/k` quantiles framed by the given domain bounds — drop-in input
    /// for an equi-depth `BinnedHistogram`.
    pub fn equi_depth_boundaries(&self, k: usize, lo: f64, hi: f64) -> Vec<f64> {
        assert!(k >= 1, "need at least one bin");
        assert!(lo <= hi, "lo must not exceed hi");
        let mut b = Vec::with_capacity(k + 1);
        b.push(lo);
        for j in 1..k {
            b.push(self.quantile(j as f64 / k as f64).clamp(lo, hi));
        }
        b.push(hi);
        // Enforce monotonicity exactly (approximation noise can reorder
        // adjacent quantiles by up to 2 eps n ranks).
        for i in 1..b.len() {
            if b[i] < b[i - 1] {
                b[i] = b[i - 1];
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance from the target rank to the rank *interval* a value
    /// occupies (duplicated values cover a whole range of ranks).
    fn rank_distance(sorted: &[f64], v: f64, target: f64) -> f64 {
        let lo = sorted.partition_point(|&x| x < v) as f64;
        let hi = sorted.partition_point(|&x| x <= v) as f64;
        if target < lo {
            lo - target
        } else if target > hi {
            target - hi
        } else {
            0.0
        }
    }

    fn check_rank_errors(stream: &[f64], epsilon: f64) {
        let mut sk = GkSketch::new(epsilon);
        for &v in stream {
            sk.insert(v);
        }
        let mut sorted = stream.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = stream.len() as f64;
        for i in 1..20 {
            let q = i as f64 / 20.0;
            let v = sk.quantile(q);
            let err = rank_distance(&sorted, v, q * n);
            assert!(
                err <= 2.0 * epsilon * n + 1.0,
                "q={q}: value {v} misses the target rank {} by {err}",
                q * n
            );
        }
    }

    #[test]
    fn rank_error_bound_on_sorted_stream() {
        let stream: Vec<f64> = (0..20_000).map(|i| i as f64).collect();
        check_rank_errors(&stream, 0.01);
    }

    #[test]
    fn rank_error_bound_on_adversarial_orders() {
        // Reverse order and an interleaved order.
        let rev: Vec<f64> = (0..20_000).rev().map(|i| i as f64).collect();
        check_rank_errors(&rev, 0.01);
        let interleaved: Vec<f64> = (0..20_000).map(|i| ((i * 7_919) % 20_000) as f64).collect();
        check_rank_errors(&interleaved, 0.01);
    }

    #[test]
    fn handles_heavy_duplicates() {
        let mut stream = vec![42.0; 15_000];
        stream.extend((0..5_000).map(|i| i as f64 / 10.0));
        check_rank_errors(&stream, 0.02);
        let mut sk = GkSketch::new(0.02);
        for &v in &stream {
            sk.insert(v);
        }
        // The median of this stream is 42.
        assert_eq!(sk.quantile(0.5), 42.0);
    }

    #[test]
    fn memory_stays_sublinear() {
        let mut sk = GkSketch::new(0.01);
        for i in 0..100_000 {
            sk.insert(((i * 7_919) % 100_000) as f64);
        }
        // Exact storage would be 100 000 entries; GK should be ~O((1/eps)
        // log(eps n)) ~ a few hundred.
        assert!(
            sk.entries() < 2_000,
            "sketch holds {} entries for 100k stream values",
            sk.entries()
        );
    }

    #[test]
    fn equi_depth_boundaries_are_monotone_and_framed() {
        let mut sk = GkSketch::new(0.01);
        for i in 0..10_000 {
            sk.insert(((i * 37) % 1_000) as f64);
        }
        let b = sk.equi_depth_boundaries(16, 0.0, 1_000.0);
        assert_eq!(b.len(), 17);
        assert_eq!(b[0], 0.0);
        assert_eq!(b[16], 1_000.0);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
        // Interior boundaries near the true 1/16-quantiles of Uniform[0,1000).
        for (j, &v) in b.iter().enumerate().skip(1).take(15) {
            let truth = 1_000.0 * j as f64 / 16.0;
            assert!((v - truth).abs() < 40.0, "boundary {j}: {v} vs {truth}");
        }
    }

    #[test]
    fn sketch_feeds_an_equi_depth_histogram() {
        use selest_core::{Domain, RangeQuery, SelectivityEstimator};
        // Skewed stream: 80% below 100.
        let mut stream: Vec<f64> = (0..8_000).map(|i| (i % 100) as f64).collect();
        stream.extend((0..2_000).map(|i| 100.0 + (i % 900) as f64));
        let mut sk = GkSketch::new(0.005);
        for &v in &stream {
            sk.insert(v);
        }
        let k = 20;
        let boundaries = sk.equi_depth_boundaries(k, 0.0, 1_000.0);
        // Rank-difference depth counts, as in selest-histogram's equi-depth.
        let n = stream.len();
        let counts: Vec<u32> = (1..=k)
            .map(|j| {
                let hi = (j * n).div_ceil(k);
                let lo = ((j - 1) * n).div_ceil(k);
                (hi - lo) as u32
            })
            .collect();
        let hist = selest_histogram::BinnedHistogram::new(
            boundaries,
            counts,
            Domain::new(0.0, 1_000.0),
            "EDH-GK",
        );
        let s = hist.selectivity(&RangeQuery::new(0.0, 99.5));
        assert!((s - 0.8).abs() < 0.05, "dense-region mass {s}");
    }

    #[test]
    #[should_panic(expected = "quantile of an empty sketch")]
    fn empty_sketch_panics_on_query() {
        let _ = GkSketch::new(0.1).quantile(0.5);
    }
}
