//! Size-separated query workloads (Section 5.1.2 of the paper).
//!
//! Each query file `F_D(s)` holds 1 000 range queries of the *same* size `s`
//! (1 %, 2 %, 5 % or 10 % of the domain width), positioned according to the
//! data distribution of `D` — the center of each query is a randomly drawn
//! record. "Query positions which are too close to the boundary of the
//! domain are not accepted": draws whose query would stick out of the domain
//! are rejected and redrawn.
//!
//! [`positional_sweep`] builds the deterministic position sweeps of
//! Figures 3 and 10 (error as a function of the query position).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use selest_core::{Domain, RangeQuery};

use crate::dataset::DataFile;

/// The standard query sizes of the paper's workloads.
pub const PAPER_QUERY_SIZES: [f64; 4] = [0.01, 0.02, 0.05, 0.10];

/// Number of queries per file in the paper's workloads.
pub const PAPER_QUERIES_PER_FILE: usize = 1_000;

/// A query file `F_D(s)`: fixed-size range queries positioned by the data
/// distribution.
#[derive(Debug, Clone)]
pub struct QueryFile {
    data_name: String,
    size_fraction: f64,
    queries: Vec<RangeQuery>,
}

impl QueryFile {
    /// Generate `n_queries` queries of width `size_fraction * domain width`
    /// over `data`, centers drawn uniformly from the records, positions that
    /// would exceed the domain rejected and redrawn. Deterministic per seed.
    ///
    /// Panics if after `1000 * n_queries` draws not enough interior
    /// positions were found (only possible when nearly all records hug the
    /// boundary and the query size is large).
    pub fn generate(data: &DataFile, size_fraction: f64, n_queries: usize, seed: u64) -> Self {
        assert!(n_queries > 0, "QueryFile needs at least one query");
        assert!(
            size_fraction > 0.0 && size_fraction < 1.0,
            "size fraction must be in (0,1), got {size_fraction}"
        );
        let domain = data.domain();
        let half = 0.5 * size_fraction * domain.width();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut queries = Vec::with_capacity(n_queries);
        let max_draws = n_queries.saturating_mul(1000);
        let mut draws = 0usize;
        while queries.len() < n_queries {
            draws += 1;
            assert!(
                draws <= max_draws,
                "QueryFile::generate({}, {size_fraction}): rejection rate too high",
                data.name()
            );
            let center = data.values()[rng.random_range(0..data.len())];
            // Integer-domain continuity correction: the records are
            // integers, so a range predicate selects whole grid cells
            // [v - 1/2, v + 1/2]. Snapping the endpoints to half-integers
            // makes the continuous estimators' integral match the discrete
            // count's support — without it, small domains (Figure 5's
            // n(10)) acquire an artificial error floor of about one cell
            // per query endpoint.
            let a = (center - half).round() - 0.5;
            let b = a + (2.0 * half).round();
            // Positions too close to the boundary are rejected, as in the
            // paper's workloads (this also keeps every selected grid cell
            // fully inside the domain).
            if a >= domain.lo() && b <= domain.hi() {
                queries.push(RangeQuery::new(a, b));
            }
        }
        QueryFile {
            data_name: data.name().to_owned(),
            size_fraction,
            queries,
        }
    }

    /// Name of the data file this workload targets.
    pub fn data_name(&self) -> &str {
        &self.data_name
    }

    /// The fixed query size `s` as a fraction of the domain width.
    pub fn size_fraction(&self) -> f64 {
        self.size_fraction
    }

    /// The queries.
    pub fn queries(&self) -> &[RangeQuery] {
        &self.queries
    }

    /// Number of queries in the file.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the file is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Deterministic sweep of `n` same-size queries whose centers move evenly
/// from the leftmost to the rightmost admissible position — the x-axis of
/// Figures 3 and 10. Returns `(center, query)` pairs.
pub fn positional_sweep(domain: &Domain, size_fraction: f64, n: usize) -> Vec<(f64, RangeQuery)> {
    assert!(n >= 2, "positional_sweep needs at least two positions");
    assert!(
        size_fraction > 0.0 && size_fraction < 1.0,
        "size fraction must be in (0,1), got {size_fraction}"
    );
    let half = 0.5 * size_fraction * domain.width();
    let lo = domain.lo() + half;
    let hi = domain.hi() - half;
    (0..n)
        .map(|i| {
            let c = lo + (hi - lo) * i as f64 / (n - 1) as f64;
            (c, RangeQuery::new(c - half, c + half))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Normal, Uniform};

    fn uniform_file() -> DataFile {
        DataFile::synthetic("u(12)", 12, 10_000, &Uniform::new(0.0, 4095.0), 5)
    }

    #[test]
    fn all_queries_have_fixed_size_and_stay_inside() {
        let data = uniform_file();
        let qf = QueryFile::generate(&data, 0.05, 500, 1);
        assert_eq!(qf.len(), 500);
        // Widths are snapped to a whole number of grid cells.
        let w = (0.05 * data.domain().width()).round();
        for q in qf.queries() {
            assert!((q.width() - w).abs() < 1e-9, "width {}", q.width());
            assert!(q.a() >= data.domain().lo());
            assert!(q.b() <= data.domain().hi());
            // Endpoints sit on half-integers (cell edges).
            assert!((q.a() - q.a().floor() - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn positions_follow_the_data_distribution() {
        // Normal data: most query centers should be near the domain center.
        let domain_hi = 4095.0;
        let data = DataFile::synthetic(
            "n(12)",
            12,
            10_000,
            &Normal::new(domain_hi / 2.0, domain_hi / 8.0),
            6,
        );
        let qf = QueryFile::generate(&data, 0.01, 1_000, 2);
        let center = domain_hi / 2.0;
        let near = qf
            .queries()
            .iter()
            .filter(|q| (q.center() - center).abs() < domain_hi / 4.0)
            .count();
        // +- 2 sigma around the mean holds ~95% of the mass.
        assert!(near > 900, "only {near} of 1000 queries near the center");
    }

    #[test]
    fn generation_is_deterministic() {
        let data = uniform_file();
        let a = QueryFile::generate(&data, 0.01, 100, 9);
        let b = QueryFile::generate(&data, 0.01, 100, 9);
        assert_eq!(a.queries(), b.queries());
        let c = QueryFile::generate(&data, 0.01, 100, 10);
        assert_ne!(a.queries(), c.queries());
    }

    #[test]
    fn boundary_positions_are_rejected_not_clamped() {
        // Exponential-like data hugging the left boundary: queries must
        // still start at >= lo, and none may be degenerate-clamped (all
        // widths identical already checks this).
        let data = DataFile::synthetic(
            "e(12)",
            12,
            5_000,
            &crate::dist::Exponential::new(8.0 / 4095.0, 0.0),
            7,
        );
        let qf = QueryFile::generate(&data, 0.10, 300, 3);
        for q in qf.queries() {
            assert!(q.a() >= 0.0 && q.b() <= 4095.0);
        }
    }

    #[test]
    fn sweep_spans_admissible_positions() {
        let d = Domain::new(0.0, 100.0);
        let sweep = positional_sweep(&d, 0.1, 11);
        assert_eq!(sweep.len(), 11);
        assert_eq!(sweep[0].1.a(), 0.0);
        assert!((sweep[10].1.b() - 100.0).abs() < 1e-12);
        // Centers are evenly spaced.
        let step = sweep[1].0 - sweep[0].0;
        for w in sweep.windows(2) {
            assert!(((w[1].0 - w[0].0) - step).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_constants() {
        assert_eq!(PAPER_QUERY_SIZES, [0.01, 0.02, 0.05, 0.10]);
        assert_eq!(PAPER_QUERIES_PER_FILE, 1_000);
    }
}
