//! Simulacra of the paper's TIGER/Line data files (Section 5.1.1, Table 2).
//!
//! The paper used 1-D projections of line endpoints from the U.S. Census
//! Bureau TIGER/Line files: county Arapahoe (52 120 records, `p` = 21 for
//! the first dimension and 18 for the second) and rail-road tracks & rivers
//! around L.A. (257 942 records, `p` in {12, 22}). The 1999 download links
//! are dead, so we generate data with the same *distributional anatomy* —
//! that anatomy, not the particular county, is what drives the paper's
//! results (see DESIGN.md §4):
//!
//! * **Arapahoe** (street maps): suburban street grids produce endpoint
//!   coordinates that pile up on regularly spaced grid lines inside dense
//!   town rectangles, with abrupt density change points at town edges and a
//!   thin rural background. [`ArapahoeConfig`] generates exactly that: a
//!   mixture of towns, each a lattice of spike positions with geometric
//!   jitter, plus a uniform background.
//!
//! * **Rail roads & rivers** (long polylines): consecutive vertices of a few
//!   long correlated curves produce a *smooth but highly nonuniform*
//!   occupation density — ridges where lines linger, voids elsewhere.
//!   [`RailRiverConfig`] integrates reflected random walks with per-line
//!   drift and records every vertex.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use selest_core::Domain;
use selest_math::normal_quantile;

use crate::dataset::DataFile;

/// Configuration of the Arapahoe street-grid simulacrum.
#[derive(Debug, Clone)]
pub struct ArapahoeConfig {
    /// Domain exponent: 21 for the paper's first dimension, 18 for the second.
    pub p: u32,
    /// Total records; Table 2 lists 52 120.
    pub n_records: usize,
    /// Number of dense town grids.
    pub n_towns: usize,
    /// Fraction of records drawn from the uniform rural background.
    pub background_fraction: f64,
}

impl ArapahoeConfig {
    /// The paper's first dimension: `arap1`, `p` = 21.
    pub fn dim1() -> Self {
        ArapahoeConfig {
            p: 21,
            n_records: 52_120,
            n_towns: 11,
            background_fraction: 0.12,
        }
    }

    /// The paper's second dimension: `arap2`, `p` = 18.
    pub fn dim2() -> Self {
        ArapahoeConfig {
            p: 18,
            n_records: 52_120,
            n_towns: 9,
            background_fraction: 0.15,
        }
    }

    /// Generate the data file. Deterministic per seed.
    pub fn generate(&self, name: &str, seed: u64) -> DataFile {
        assert!(self.n_towns >= 1, "need at least one town");
        assert!(
            (0.0..1.0).contains(&self.background_fraction),
            "background fraction out of [0,1): {}",
            self.background_fraction
        );
        let domain = Domain::power_of_two(self.p);
        let mut rng = StdRng::seed_from_u64(seed);
        let width = domain.width();

        // Lay out towns: center, half-extent, grid spacing, relative weight.
        struct Town {
            lo: f64,
            hi: f64,
            spacing: f64,
            weight: f64,
        }
        let towns: Vec<Town> = (0..self.n_towns)
            .map(|_| {
                let center = domain.lo() + width * rng.random::<f64>();
                // Town extents between 0.5% and 6% of the domain.
                let half = width * (0.0025 + 0.0275 * rng.random::<f64>());
                // Street grids: 30-150 blocks across the town.
                let blocks = 30.0 + 120.0 * rng.random::<f64>();
                let spacing = (2.0 * half / blocks).max(1.0).round();
                // Town sizes follow a skewed weight so a few dominate, as
                // population does.
                let weight = rng.random::<f64>().powi(2) + 0.05;
                Town {
                    lo: (center - half).max(domain.lo()),
                    hi: (center + half).min(domain.hi()),
                    spacing,
                    weight,
                }
            })
            .collect();
        let total_weight: f64 = towns.iter().map(|t| t.weight).sum();

        let mut values = Vec::with_capacity(self.n_records);
        while values.len() < self.n_records {
            if rng.random::<f64>() < self.background_fraction {
                // Rural background: sparse uniform endpoints.
                let v = (domain.lo() + width * rng.random::<f64>()).round();
                if domain.contains(v) {
                    values.push(v);
                }
                continue;
            }
            // Pick a town by weight.
            let mut pick = rng.random::<f64>() * total_weight;
            let town = towns
                .iter()
                .find(|t| {
                    pick -= t.weight;
                    pick <= 0.0
                })
                .unwrap_or(&towns[self.n_towns - 1]);
            // Snap to a grid line of the town, with small symmetric jitter:
            // most endpoints sit exactly on the grid (shared intersections),
            // a minority are offset (mid-block addresses).
            let n_lines = ((town.hi - town.lo) / town.spacing).floor().max(1.0);
            let line = (rng.random::<f64>() * n_lines).floor();
            let base = town.lo + line * town.spacing;
            let jitter = if rng.random::<f64>() < 0.7 {
                0.0
            } else {
                // Geometric-ish jitter of a few units.
                let u = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let mag = (-u.ln() * 2.0).round();
                if rng.random::<f64>() < 0.5 {
                    -mag
                } else {
                    mag
                }
            };
            let v = (base + jitter).round();
            if domain.contains(v) {
                values.push(v);
            }
        }
        DataFile::from_values(name, self.p, values)
    }
}

/// Configuration of the rail-road & rivers simulacrum.
#[derive(Debug, Clone)]
pub struct RailRiverConfig {
    /// Domain exponent: the paper uses 12 and 22.
    pub p: u32,
    /// Total records; Table 2 lists 257 942.
    pub n_records: usize,
    /// Number of independent polylines (rivers / tracks).
    pub n_lines: usize,
}

impl RailRiverConfig {
    /// The paper's first dimension at the given domain exponent
    /// (`rr1(12)` or `rr1(22)`).
    pub fn dim1(p: u32) -> Self {
        RailRiverConfig {
            p,
            n_records: 257_942,
            n_lines: 48,
        }
    }

    /// The paper's second dimension (`rr2(12)` or `rr2(22)`); fewer,
    /// longer lines give a lumpier marginal.
    pub fn dim2(p: u32) -> Self {
        RailRiverConfig {
            p,
            n_records: 257_942,
            n_lines: 24,
        }
    }

    /// Generate the data file. Deterministic per seed.
    pub fn generate(&self, name: &str, seed: u64) -> DataFile {
        assert!(self.n_lines >= 1, "need at least one polyline");
        let domain = Domain::power_of_two(self.p);
        let mut rng = StdRng::seed_from_u64(seed);
        let width = domain.width();
        let per_line = self.n_records / self.n_lines;
        let remainder = self.n_records - per_line * self.n_lines;

        let mut values = Vec::with_capacity(self.n_records);
        for line in 0..self.n_lines {
            let n_vertices = per_line + usize::from(line < remainder);
            // Start anywhere; drift and wobble are per-line characters:
            // rivers meander slowly, tracks run straighter.
            let mut pos = domain.lo() + width * rng.random::<f64>();
            let drift = width * 2e-4 * (rng.random::<f64>() - 0.5);
            let wobble = width * (2e-5 + 3.0e-4 * rng.random::<f64>());
            for _ in 0..n_vertices {
                let u = rng.random::<f64>().clamp(1e-12, 1.0 - 1e-12);
                pos += drift + wobble * normal_quantile(u);
                // Reflect at the boundaries so lines stay on the map.
                if pos < domain.lo() {
                    pos = 2.0 * domain.lo() - pos;
                }
                if pos > domain.hi() {
                    pos = 2.0 * domain.hi() - pos;
                }
                let v = domain.clamp(pos).round();
                values.push(v);
            }
        }
        DataFile::from_values(name, self.p, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_arap() -> DataFile {
        ArapahoeConfig {
            p: 16,
            n_records: 20_000,
            n_towns: 6,
            background_fraction: 0.1,
        }
        .generate("arap-test", 11)
    }

    fn small_rr() -> DataFile {
        RailRiverConfig {
            p: 16,
            n_records: 20_000,
            n_lines: 10,
        }
        .generate("rr-test", 11)
    }

    #[test]
    fn arapahoe_has_requested_shape() {
        let f = small_arap();
        assert_eq!(f.len(), 20_000);
        assert_eq!(f.p(), 16);
        assert!(f.values().iter().all(|&v| f.domain().contains(v)));
    }

    #[test]
    fn arapahoe_is_spiky_with_duplicates() {
        let f = small_arap();
        // Grid snapping must produce many duplicates even on a 2^16 domain.
        assert!(
            f.avg_frequency() > 3.0,
            "expected heavy duplication, avg frequency {}",
            f.avg_frequency()
        );
        // And the mass must be concentrated: the busiest 5% of the domain
        // should hold far more than 5% of the records.
        let mut sorted = f.values().to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let w = f.domain().width();
        let mut best = 0usize;
        let buckets = 20;
        for i in 0..buckets {
            let lo = f.domain().lo() + w * i as f64 / buckets as f64;
            let hi = lo + w / buckets as f64;
            let cnt = sorted.partition_point(|&v| v <= hi) - sorted.partition_point(|&v| v < lo);
            best = best.max(cnt);
        }
        assert!(
            best as f64 > 0.15 * f.len() as f64,
            "no concentration: busiest 5% bucket holds {best} of {}",
            f.len()
        );
    }

    #[test]
    fn rail_river_covers_domain_smoothly() {
        let f = small_rr();
        assert_eq!(f.len(), 20_000);
        assert!(f.values().iter().all(|&v| f.domain().contains(v)));
        // Random-walk occupation is nonuniform but not spike-dominated:
        // duplicates exist (integer snapping) yet far fewer than Arapahoe.
        let arap = small_arap();
        assert!(f.distinct_count() > arap.distinct_count());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = small_arap();
        let b = ArapahoeConfig {
            p: 16,
            n_records: 20_000,
            n_towns: 6,
            background_fraction: 0.1,
        }
        .generate("arap-test", 11);
        assert_eq!(a.values(), b.values());
        let r1 = small_rr();
        let r2 = RailRiverConfig {
            p: 16,
            n_records: 20_000,
            n_lines: 10,
        }
        .generate("rr-test", 11);
        assert_eq!(r1.values(), r2.values());
    }

    #[test]
    fn paper_configs_match_table2() {
        assert_eq!(ArapahoeConfig::dim1().p, 21);
        assert_eq!(ArapahoeConfig::dim1().n_records, 52_120);
        assert_eq!(ArapahoeConfig::dim2().p, 18);
        assert_eq!(RailRiverConfig::dim1(22).n_records, 257_942);
        assert_eq!(RailRiverConfig::dim2(12).p, 12);
    }
}
