//! The catalog of Table 2: every data file of the paper's evaluation,
//! generated deterministically.
//!
//! | file | distribution | p | #records |
//! |------|--------------|----|---------|
//! | u(p) | Uniform | 15, 20 | 100 000 |
//! | n(p) | Normal | 10, 15, 20 | 100 000 |
//! | e(p) | Exponential | 15, 20 | 100 000 |
//! | arap1 / arap2 | Arapahoe endpoints, dim 1 / 2 | 21 / 18 | 52 120 |
//! | rr1(p) / rr2(p) | Rail road & rivers, dim 1 / 2 | 12, 22 | 257 942 |
//! | iw (a.k.a. `ci`) | census instance weight | 21 | 199 523 |
//!
//! Free parameters the paper leaves unstated are fixed here and documented:
//! the Normal files map the mean to the domain center with `sigma = width/8`
//! (±4σ fits the domain, duplicating the paper's "mean value is in the
//! center" mapping with negligible rejection), and the Exponential files use
//! mean `width/8` anchored at the left boundary (strong left skew, tiny
//! right-tail rejection), mirroring the paper's description of high density
//! at the left boundary.

use crate::census::InstanceWeightConfig;
use crate::dataset::DataFile;
use crate::dist::{Exponential, Normal, Uniform};
use crate::tiger::{ArapahoeConfig, RailRiverConfig};

/// Identifier of one of the paper's data files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperFile {
    /// `u(p)`: Uniform, 100 000 records.
    Uniform { p: u32 },
    /// `n(p)`: Normal centered in the domain, 100 000 records.
    Normal { p: u32 },
    /// `e(p)`: Exponential from the left boundary, 100 000 records.
    Exponential { p: u32 },
    /// `arap1`: Arapahoe endpoints, first dimension, p = 21.
    Arapahoe1,
    /// `arap2`: Arapahoe endpoints, second dimension, p = 18.
    Arapahoe2,
    /// `rr1(p)`: rail roads & rivers, first dimension.
    RailRiver1 { p: u32 },
    /// `rr2(p)`: rail roads & rivers, second dimension.
    RailRiver2 { p: u32 },
    /// `iw`: census-income instance weight, p = 21 (the `ci` of Figure 8).
    InstanceWeight,
}

impl PaperFile {
    /// The file name used throughout the paper (`"n(20)"`, `"arap1"`, ...).
    pub fn name(&self) -> String {
        match self {
            PaperFile::Uniform { p } => format!("u({p})"),
            PaperFile::Normal { p } => format!("n({p})"),
            PaperFile::Exponential { p } => format!("e({p})"),
            PaperFile::Arapahoe1 => "arap1".into(),
            PaperFile::Arapahoe2 => "arap2".into(),
            PaperFile::RailRiver1 { p } => format!("rr1({p})"),
            PaperFile::RailRiver2 { p } => format!("rr2({p})"),
            PaperFile::InstanceWeight => "iw".into(),
        }
    }

    /// Record count listed in Table 2.
    pub fn n_records(&self) -> usize {
        match self {
            PaperFile::Uniform { .. }
            | PaperFile::Normal { .. }
            | PaperFile::Exponential { .. } => 100_000,
            PaperFile::Arapahoe1 | PaperFile::Arapahoe2 => 52_120,
            PaperFile::RailRiver1 { .. } | PaperFile::RailRiver2 { .. } => 257_942,
            PaperFile::InstanceWeight => 199_523,
        }
    }

    /// Domain exponent `p` listed in Table 2.
    pub fn p(&self) -> u32 {
        match self {
            PaperFile::Uniform { p }
            | PaperFile::Normal { p }
            | PaperFile::Exponential { p }
            | PaperFile::RailRiver1 { p }
            | PaperFile::RailRiver2 { p } => *p,
            PaperFile::Arapahoe1 => 21,
            PaperFile::Arapahoe2 => 18,
            PaperFile::InstanceWeight => 21,
        }
    }

    /// Distribution family label for Table 2 output.
    pub fn distribution_label(&self) -> &'static str {
        match self {
            PaperFile::Uniform { .. } => "Uniform",
            PaperFile::Normal { .. } => "Normal",
            PaperFile::Exponential { .. } => "Exponential",
            PaperFile::Arapahoe1 => "Arapahoe, 1st dim.",
            PaperFile::Arapahoe2 => "Arapahoe, 2nd dim.",
            PaperFile::RailRiver1 { .. } => "Rail road & Rivers, 1st dim.",
            PaperFile::RailRiver2 { .. } => "Rail road & Rivers, 2nd dim.",
            PaperFile::InstanceWeight => "Instance Weight",
        }
    }

    /// Deterministic per-file seed, derived from the name so adding files
    /// never reshuffles existing ones.
    fn seed(&self) -> u64 {
        // FNV-1a over the canonical name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Generate the file at full Table 2 size.
    pub fn generate(&self) -> DataFile {
        self.generate_scaled(1)
    }

    /// Generate with the record count divided by `scale` (floored at 2 000)
    /// — used by tests and quick experiment runs. `scale = 1` is the paper's
    /// full size.
    pub fn generate_scaled(&self, scale: usize) -> DataFile {
        assert!(scale >= 1, "scale must be >= 1");
        let n = (self.n_records() / scale).max(2_000);
        let name = self.name();
        let seed = self.seed();
        let p = self.p();
        let width = (1u64 << p) as f64 - 1.0;
        match self {
            PaperFile::Uniform { .. } => {
                DataFile::synthetic(&name, p, n, &Uniform::new(0.0, width), seed)
            }
            PaperFile::Normal { .. } => {
                DataFile::synthetic(&name, p, n, &Normal::new(width / 2.0, width / 8.0), seed)
            }
            PaperFile::Exponential { .. } => {
                DataFile::synthetic(&name, p, n, &Exponential::new(8.0 / width, 0.0), seed)
            }
            PaperFile::Arapahoe1 => {
                let mut cfg = ArapahoeConfig::dim1();
                cfg.n_records = n;
                cfg.generate(&name, seed)
            }
            PaperFile::Arapahoe2 => {
                let mut cfg = ArapahoeConfig::dim2();
                cfg.n_records = n;
                cfg.generate(&name, seed)
            }
            PaperFile::RailRiver1 { p } => {
                let mut cfg = RailRiverConfig::dim1(*p);
                cfg.n_records = n;
                cfg.generate(&name, seed)
            }
            PaperFile::RailRiver2 { p } => {
                let mut cfg = RailRiverConfig::dim2(*p);
                cfg.n_records = n;
                cfg.generate(&name, seed)
            }
            PaperFile::InstanceWeight => {
                let mut cfg = InstanceWeightConfig::paper();
                cfg.n_records = n;
                cfg.generate(&name, seed)
            }
        }
    }

    /// All Table 2 files in the paper's order.
    pub fn all() -> Vec<PaperFile> {
        vec![
            PaperFile::Uniform { p: 15 },
            PaperFile::Uniform { p: 20 },
            PaperFile::Normal { p: 10 },
            PaperFile::Normal { p: 15 },
            PaperFile::Normal { p: 20 },
            PaperFile::Exponential { p: 15 },
            PaperFile::Exponential { p: 20 },
            PaperFile::Arapahoe1,
            PaperFile::Arapahoe2,
            PaperFile::RailRiver1 { p: 12 },
            PaperFile::RailRiver1 { p: 22 },
            PaperFile::RailRiver2 { p: 12 },
            PaperFile::RailRiver2 { p: 22 },
            PaperFile::InstanceWeight,
        ]
    }

    /// The files the comparison figures (8, 9, 11, 12) report on: the
    /// large-domain synthetic files plus all the real-data simulacra.
    pub fn headline() -> Vec<PaperFile> {
        vec![
            PaperFile::Uniform { p: 20 },
            PaperFile::Normal { p: 20 },
            PaperFile::Exponential { p: 20 },
            PaperFile::Arapahoe1,
            PaperFile::Arapahoe2,
            PaperFile::RailRiver1 { p: 22 },
            PaperFile::RailRiver2 { p: 22 },
            PaperFile::InstanceWeight,
        ]
    }
}

/// Generate every Table 2 file at full size. Expensive (~2M records); the
/// experiment harness caches the result.
pub fn paper_data_files() -> Vec<DataFile> {
    PaperFile::all().iter().map(|f| f.generate()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table2() {
        let all = PaperFile::all();
        assert_eq!(all.len(), 14);
        let names: Vec<String> = all.iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            vec![
                "u(15)", "u(20)", "n(10)", "n(15)", "n(20)", "e(15)", "e(20)", "arap1", "arap2",
                "rr1(12)", "rr1(22)", "rr2(12)", "rr2(22)", "iw"
            ]
        );
        assert_eq!(PaperFile::Arapahoe1.p(), 21);
        assert_eq!(PaperFile::Arapahoe2.p(), 18);
        assert_eq!(PaperFile::InstanceWeight.n_records(), 199_523);
    }

    #[test]
    fn scaled_generation_has_expected_shape() {
        // Scale down heavily so the test stays fast.
        let f = PaperFile::Normal { p: 15 }.generate_scaled(20);
        assert_eq!(f.len(), 5_000);
        assert_eq!(f.p(), 15);
        // Mean near the domain center.
        let mean: f64 = f.values().iter().sum::<f64>() / f.len() as f64;
        let center = f.domain().center();
        assert!(
            (mean - center).abs() < f.domain().width() / 50.0,
            "mean {mean} far from center {center}"
        );
    }

    #[test]
    fn exponential_files_skew_left() {
        let f = PaperFile::Exponential { p: 15 }.generate_scaled(20);
        let mid = f.domain().center();
        let left = f.values().iter().filter(|&&v| v < mid).count();
        assert!(left as f64 > 0.95 * f.len() as f64);
    }

    #[test]
    fn seeds_differ_between_files() {
        let u = PaperFile::Uniform { p: 15 }.generate_scaled(50);
        let u2 = PaperFile::Uniform { p: 20 }.generate_scaled(50);
        assert_ne!(u.values()[..50], u2.values()[..50]);
    }

    #[test]
    fn headline_is_subset_of_all() {
        let all = PaperFile::all();
        for f in PaperFile::headline() {
            assert!(all.contains(&f), "{:?} not in Table 2 catalog", f);
        }
    }
}
