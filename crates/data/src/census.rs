//! Simulacrum of the census-income *instance weight* file (`iw`, also
//! referenced as `ci` in the paper's Figure 8; Table 2: 199 523 records,
//! `p` = 21).
//!
//! Census instance weights are survey calibration factors: each stratum of
//! respondents shares (nearly) the same weight, so the value distribution is
//! a forest of heavy spikes at stratum weights spread over a lognormal-ish
//! envelope. The paper's finding for this file — "almost no difference in
//! the performance of the different methods" (Figure 12) — comes precisely
//! from that heavily duplicated, spiky shape, which this generator
//! reproduces: a lognormal mixture of strata, each stratum a tight cluster
//! of integers around its weight.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use selest_core::Domain;
use selest_math::normal_quantile;

use crate::dataset::DataFile;

/// Configuration of the instance-weight simulacrum.
#[derive(Debug, Clone)]
pub struct InstanceWeightConfig {
    /// Domain exponent; Table 2 lists 21.
    pub p: u32,
    /// Total records; Table 2 lists 199 523.
    pub n_records: usize,
    /// Number of survey strata (distinct weight clusters).
    pub n_strata: usize,
}

impl InstanceWeightConfig {
    /// The paper's `iw` file.
    pub fn paper() -> Self {
        InstanceWeightConfig {
            p: 21,
            n_records: 199_523,
            n_strata: 400,
        }
    }

    /// Generate the data file. Deterministic per seed.
    pub fn generate(&self, name: &str, seed: u64) -> DataFile {
        assert!(self.n_strata >= 1, "need at least one stratum");
        let domain = Domain::power_of_two(self.p);
        let mut rng = StdRng::seed_from_u64(seed);

        // Stratum weights: lognormal envelope scaled so the bulk of the
        // mass sits in the lower third of the domain (instance weights in
        // the real file cluster far below the maximum representable value).
        let scale = domain.width() / 12.0;
        struct Stratum {
            weight_value: f64,
            share: f64,
        }
        let strata: Vec<Stratum> = (0..self.n_strata)
            .map(|_| {
                let u = rng.random::<f64>().clamp(1e-12, 1.0 - 1e-12);
                let value = (scale * (0.35 * normal_quantile(u)).exp()).round();
                // Stratum populations are themselves skewed.
                let share = rng.random::<f64>().powi(3) + 0.02;
                Stratum {
                    weight_value: value,
                    share,
                }
            })
            .collect();
        let total_share: f64 = strata.iter().map(|s| s.share).sum();

        let mut values = Vec::with_capacity(self.n_records);
        while values.len() < self.n_records {
            let mut pick = rng.random::<f64>() * total_share;
            let stratum = strata
                .iter()
                .find(|s| {
                    pick -= s.share;
                    pick <= 0.0
                })
                .unwrap_or(&strata[self.n_strata - 1]);
            // Within a stratum, weights differ by tiny adjustments only.
            let offset = if rng.random::<f64>() < 0.8 {
                0.0
            } else {
                (rng.random::<f64>() * 7.0).floor() - 3.0
            };
            let v = (stratum.weight_value + offset).round();
            if domain.contains(v) {
                values.push(v);
            }
        }
        DataFile::from_values(name, self.p, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DataFile {
        InstanceWeightConfig {
            p: 16,
            n_records: 30_000,
            n_strata: 120,
        }
        .generate("iw-test", 3)
    }

    #[test]
    fn has_requested_count_and_domain() {
        let f = small();
        assert_eq!(f.len(), 30_000);
        assert!(f.values().iter().all(|&v| f.domain().contains(v)));
    }

    #[test]
    fn duplication_is_extreme() {
        let f = small();
        // 30k records over ~120 strata * ~8 offsets: distinct count should
        // be within a small multiple of the strata count.
        assert!(
            f.distinct_count() < 1_500,
            "expected stratum clustering, distinct = {}",
            f.distinct_count()
        );
        assert!(
            f.avg_frequency() > 20.0,
            "avg frequency {}",
            f.avg_frequency()
        );
    }

    #[test]
    fn mass_concentrates_in_lower_domain() {
        let f = small();
        let third = f.domain().lo() + f.domain().width() / 3.0;
        let below = f.values().iter().filter(|&&v| v <= third).count();
        assert!(
            below as f64 > 0.8 * f.len() as f64,
            "only {below} of {} below the first third",
            f.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = InstanceWeightConfig {
            p: 16,
            n_records: 30_000,
            n_strata: 120,
        }
        .generate("iw-test", 3);
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn paper_config_matches_table2() {
        let c = InstanceWeightConfig::paper();
        assert_eq!(c.p, 21);
        assert_eq!(c.n_records, 199_523);
    }
}
