//! Probability distributions used to drive the data generators.
//!
//! The synthetic data files of the paper follow the Uniform, standard
//! Normal, and Exponential distributions (Section 5.1.1); the paper treats
//! Exponential as a substitute for the Zipf distribution, which we also
//! implement so the substitution can be checked. [`LogNormal`] and
//! [`Mixture`] back the simulated real data files.
//!
//! All sampling is by inverse-CDF transform of `f64` uniforms drawn from a
//! seeded [`StdRng`] (mixtures draw one extra uniform to pick a component),
//! so a distribution plus a seed fully determines the generated data.

use rand::rngs::StdRng;
use rand::RngExt;
use selest_math::{normal_cdf, normal_pdf, normal_quantile, SQRT_2PI};

/// A one-dimensional continuous distribution with a known density, used both
/// to generate data and as the ground truth `f` in MISE experiments.
pub trait ContinuousDistribution {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> f64;

    /// Short display name for experiment output.
    fn label(&self) -> String;

    /// True distribution selectivity of the range `[a, b]`.
    fn selectivity(&self, a: f64, b: f64) -> f64 {
        debug_assert!(a <= b);
        self.cdf(b) - self.cdf(a)
    }
}

/// Uniform distribution on `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Uniform on `[lo, hi]`; panics unless `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "Uniform requires lo < hi, got [{lo}, {hi}]");
        Uniform { lo, hi }
    }
}

impl ContinuousDistribution for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x >= self.lo && x <= self.hi {
            1.0 / (self.hi - self.lo)
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn sample(&self, rng: &mut StdRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.random::<f64>()
    }

    fn label(&self) -> String {
        "Uniform".into()
    }
}

/// Normal distribution with mean `mu` and standard deviation `sigma`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Normal with mean `mu` and standard deviation `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "Normal requires sigma > 0, got {sigma}");
        Normal { mu, sigma }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal::new(0.0, 1.0)
    }

    /// Mean `mu`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard deviation `sigma`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl ContinuousDistribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        normal_pdf((x - self.mu) / self.sigma) / self.sigma
    }

    fn cdf(&self, x: f64) -> f64 {
        normal_cdf((x - self.mu) / self.sigma)
    }

    fn sample(&self, rng: &mut StdRng) -> f64 {
        // Inverse-CDF transform; u is in [0, 1), shift away from exact 0.
        let u = rng.random::<f64>().max(f64::MIN_POSITIVE);
        self.mu + self.sigma * normal_quantile(u)
    }

    fn label(&self) -> String {
        "Normal".into()
    }
}

/// Exponential distribution with the given `rate`, shifted to start at
/// `origin`: density `rate * exp(-rate (x - origin))` for `x >= origin`.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
    origin: f64,
}

impl Exponential {
    /// Exponential with `rate > 0` starting at `origin`.
    pub fn new(rate: f64, origin: f64) -> Self {
        assert!(rate > 0.0, "Exponential requires rate > 0, got {rate}");
        Exponential { rate, origin }
    }
}

impl ContinuousDistribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.origin {
            0.0
        } else {
            self.rate * (-self.rate * (x - self.origin)).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.origin {
            0.0
        } else {
            1.0 - (-self.rate * (x - self.origin)).exp()
        }
    }

    fn sample(&self, rng: &mut StdRng) -> f64 {
        let u = rng.random::<f64>();
        self.origin - (1.0 - u).max(f64::MIN_POSITIVE).ln() / self.rate
    }

    fn label(&self) -> String {
        "Exponential".into()
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`, used by the census
/// instance-weight simulacrum.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Log-normal whose logarithm is `N(mu, sigma)`, `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "LogNormal requires sigma > 0, got {sigma}");
        LogNormal { mu, sigma }
    }
}

impl ContinuousDistribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            let z = (x.ln() - self.mu) / self.sigma;
            (-0.5 * z * z).exp() / (x * self.sigma * SQRT_2PI)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn sample(&self, rng: &mut StdRng) -> f64 {
        let u = rng.random::<f64>().max(f64::MIN_POSITIVE);
        (self.mu + self.sigma * normal_quantile(u)).exp()
    }

    fn label(&self) -> String {
        "LogNormal".into()
    }
}

/// Finite mixture of continuous distributions with nonnegative weights.
pub struct Mixture {
    components: Vec<(f64, Box<dyn ContinuousDistribution + Send + Sync>)>,
}

impl Mixture {
    /// Build from `(weight, component)` pairs; weights are normalized and
    /// must be nonnegative with a positive sum.
    pub fn new(components: Vec<(f64, Box<dyn ContinuousDistribution + Send + Sync>)>) -> Self {
        assert!(
            !components.is_empty(),
            "Mixture needs at least one component"
        );
        assert!(
            components.iter().all(|(w, _)| *w >= 0.0),
            "Mixture weights must be nonnegative"
        );
        let total: f64 = components.iter().map(|(w, _)| w).sum();
        assert!(total > 0.0, "Mixture weights must not all be zero");
        let components = components
            .into_iter()
            .map(|(w, c)| (w / total, c))
            .collect();
        Mixture { components }
    }

    /// Number of mixture components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }
}

impl ContinuousDistribution for Mixture {
    fn pdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, c)| w * c.pdf(x)).sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, c)| w * c.cdf(x)).sum()
    }

    fn sample(&self, rng: &mut StdRng) -> f64 {
        let mut u = rng.random::<f64>();
        for (w, c) in &self.components {
            if u < *w {
                return c.sample(rng);
            }
            u -= w;
        }
        // Floating-point slack: fall through to the last component.
        self.components
            .last()
            .expect("nonempty by construction")
            .1
            .sample(rng)
    }

    fn label(&self) -> String {
        format!("Mixture({})", self.components.len())
    }
}

/// Zipf distribution over ranks `1..=n_items` with exponent `theta`, mapped
/// onto evenly spaced positions of a value range. The paper replaces Zipf
/// with Exponential in its experiments; we provide Zipf so the substitution
/// can be validated (`tests/` compares their estimator rankings).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities of ranks, ascending to 1.0.
    cumulative: Vec<f64>,
    lo: f64,
    hi: f64,
}

impl Zipf {
    /// Zipf with `n_items >= 1` ranks and exponent `theta >= 0`, ranks
    /// mapped to evenly spaced values in `[lo, hi]` (rank 1 at `lo`).
    pub fn new(n_items: usize, theta: f64, lo: f64, hi: f64) -> Self {
        assert!(n_items >= 1, "Zipf needs at least one item");
        assert!(theta >= 0.0, "Zipf exponent must be nonnegative");
        assert!(lo < hi, "Zipf requires lo < hi");
        let weights: Vec<f64> = (1..=n_items).map(|k| (k as f64).powf(-theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(n_items);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cumulative.push(acc);
        }
        *cumulative.last_mut().expect("nonempty") = 1.0;
        Zipf { cumulative, lo, hi }
    }

    /// Number of distinct ranks.
    pub fn n_items(&self) -> usize {
        self.cumulative.len()
    }

    /// Value the given zero-based rank maps to.
    pub fn value_of_rank(&self, rank: usize) -> f64 {
        let n = self.cumulative.len();
        if n == 1 {
            return self.lo;
        }
        self.lo + (self.hi - self.lo) * rank as f64 / (n - 1) as f64
    }

    /// Draw one value.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        let u = rng.random::<f64>();
        let rank = self.cumulative.partition_point(|&c| c < u);
        self.value_of_rank(rank.min(self.cumulative.len() - 1))
    }

    /// Probability mass of the given zero-based rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        let prev = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        self.cumulative[rank] - prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use selest_math::simpson;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x005e_1e57)
    }

    fn check_density_integrates_to_one<D: ContinuousDistribution>(d: &D, lo: f64, hi: f64) {
        let mass = simpson(|x| d.pdf(x), lo, hi, 4000);
        assert!((mass - 1.0).abs() < 1e-6, "{} mass {mass}", d.label());
    }

    fn check_cdf_matches_pdf<D: ContinuousDistribution>(d: &D, lo: f64, x: f64) {
        let integral = simpson(|t| d.pdf(t), lo, x, 4000);
        let cdf = d.cdf(x) - d.cdf(lo);
        assert!(
            (integral - cdf).abs() < 1e-6,
            "{}: int {integral} vs cdf {cdf}",
            d.label()
        );
    }

    fn sample_mean<D: ContinuousDistribution>(d: &D, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn uniform_pdf_cdf_sample() {
        let d = Uniform::new(2.0, 6.0);
        // Integrate over the exact support: the density is discontinuous at
        // its edges, where Simpson on a wider interval only converges O(h).
        check_density_integrates_to_one(&d, 2.0, 6.0);
        check_cdf_matches_pdf(&d, 2.0, 5.0);
        assert_eq!(d.cdf(2.0), 0.0);
        assert_eq!(d.cdf(6.0), 1.0);
        let m = sample_mean(&d, 20_000);
        assert!((m - 4.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn normal_pdf_cdf_sample() {
        let d = Normal::new(10.0, 2.0);
        check_density_integrates_to_one(&d, -10.0, 30.0);
        check_cdf_matches_pdf(&d, -10.0, 11.5);
        let m = sample_mean(&d, 20_000);
        assert!((m - 10.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn exponential_pdf_cdf_sample() {
        let d = Exponential::new(0.5, 1.0);
        check_density_integrates_to_one(&d, 1.0, 60.0);
        check_cdf_matches_pdf(&d, 1.0, 4.0);
        assert_eq!(d.pdf(0.5), 0.0);
        // Mean = origin + 1/rate = 3.
        let m = sample_mean(&d, 20_000);
        assert!((m - 3.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn lognormal_pdf_cdf_sample() {
        let d = LogNormal::new(0.0, 0.5);
        check_density_integrates_to_one(&d, 0.0, 30.0);
        check_cdf_matches_pdf(&d, 0.001, 2.0);
        // Median of lognormal is exp(mu) = 1.
        let mut r = rng();
        let mut xs: Vec<f64> = (0..20_001).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[10_000];
        assert!((med - 1.0).abs() < 0.05, "median {med}");
    }

    #[test]
    fn mixture_weights_normalize_and_mass_sums() {
        let m = Mixture::new(vec![
            (2.0, Box::new(Normal::new(0.0, 1.0)) as _),
            (6.0, Box::new(Normal::new(10.0, 1.0)) as _),
        ]);
        check_density_integrates_to_one(&m, -8.0, 18.0);
        // 75% of the mass sits near 10.
        assert!((m.cdf(5.0) - 0.25).abs() < 1e-6);
        let mean = sample_mean(&m, 40_000);
        assert!((mean - 7.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn mixture_selectivity_is_cdf_difference() {
        let m = Mixture::new(vec![
            (1.0, Box::new(Uniform::new(0.0, 1.0)) as _),
            (1.0, Box::new(Uniform::new(2.0, 3.0)) as _),
        ]);
        assert!((m.selectivity(0.0, 1.0) - 0.5).abs() < 1e-12);
        assert!((m.selectivity(1.0, 2.0) - 0.0).abs() < 1e-12);
        assert!((m.selectivity(0.0, 3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_pmf_is_normalized_and_skewed() {
        let z = Zipf::new(100, 1.0, 0.0, 99.0);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
        // Rank 0 has mass 1/H_100 ~ 0.1928.
        assert!((z.pmf(0) - 0.192_776).abs() < 1e-4, "pmf(0)={}", z.pmf(0));
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let z = Zipf::new(10, 1.0, 0.0, 9.0);
        let mut r = rng();
        let n = 50_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            let v = z.sample(&mut r);
            counts[v.round() as usize] += 1;
        }
        for (rank, &count) in counts.iter().enumerate() {
            let freq = count as f64 / n as f64;
            assert!(
                (freq - z.pmf(rank)).abs() < 0.01,
                "rank {rank}: freq {freq} vs pmf {}",
                z.pmf(rank)
            );
        }
    }

    #[test]
    fn zipf_theta_zero_is_uniform_over_ranks() {
        let z = Zipf::new(4, 0.0, 0.0, 3.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Normal::standard();
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r1), d.sample(&mut r2));
        }
    }
}
