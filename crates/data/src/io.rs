//! Plain-text import/export of data files.
//!
//! The paper's original TIGER/Line extracts are gone, but anyone holding a
//! copy (or any other integer-valued attribute) can feed it in here and run
//! every experiment against the real thing: one value per line, `#`
//! comments and blank lines ignored. Values must be integers inside
//! `[0, 2^p - 1]` — the same contract as the generators.

use std::io::{BufRead, BufReader, Read, Write};

use crate::dataset::DataFile;

/// Read a data file from one-value-per-line text.
///
/// Returns an error message describing the first offending line; the
/// integer-in-domain contract itself is enforced by
/// [`DataFile::from_values`] (panics there indicate a `p` mismatch, which
/// we convert into an error beforehand).
/// # Examples
///
/// ```
/// use selest_data::read_values;
///
/// let text = "# my extract\n42\n7\n255\n";
/// let data = read_values(text.as_bytes(), "mine", 8).unwrap();
/// assert_eq!(data.values(), &[42.0, 7.0, 255.0]);
/// ```
pub fn read_values<R: Read>(reader: R, name: &str, p: u32) -> Result<DataFile, String> {
    let max = (1u64 << p) as f64 - 1.0;
    let mut values = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: read error: {e}", lineno + 1))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let v: f64 = t
            .parse()
            .map_err(|e| format!("line {}: {e} (value {t:?})", lineno + 1))?;
        if v != v.trunc() {
            return Err(format!("line {}: value {v} is not an integer", lineno + 1));
        }
        if !(0.0..=max).contains(&v) {
            return Err(format!(
                "line {}: value {v} outside [0, 2^{p} - 1] = [0, {max}]",
                lineno + 1
            ));
        }
        values.push(v);
    }
    if values.is_empty() {
        return Err("no values in input".into());
    }
    Ok(DataFile::from_values(name, p, values))
}

/// Write a data file as one-value-per-line text with a descriptive header.
pub fn write_values<W: Write>(data: &DataFile, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# selest data file: {} (p = {}, {} records)",
        data.name(),
        data.p(),
        data.len()
    )?;
    for v in data.values() {
        writeln!(writer, "{v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Uniform;

    #[test]
    fn round_trip_preserves_values() {
        let original = DataFile::synthetic("u(10)", 10, 500, &Uniform::new(0.0, 1023.0), 3);
        let mut buf = Vec::new();
        write_values(&original, &mut buf).expect("write");
        let back = read_values(&buf[..], "u(10)", 10).expect("read");
        assert_eq!(back.values(), original.values());
        assert_eq!(back.p(), 10);
        assert_eq!(back.name(), "u(10)");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n42\n# middle\n7\n\n";
        let data = read_values(text.as_bytes(), "t", 8).expect("read");
        assert_eq!(data.values(), &[42.0, 7.0]);
    }

    #[test]
    fn bad_inputs_are_rejected_with_line_numbers() {
        assert!(read_values("abc".as_bytes(), "t", 8)
            .unwrap_err()
            .contains("line 1"));
        assert!(read_values("1\n2.5".as_bytes(), "t", 8)
            .unwrap_err()
            .contains("not an integer"));
        assert!(read_values("1\n300".as_bytes(), "t", 8)
            .unwrap_err()
            .contains("outside"));
        assert!(read_values("256".as_bytes(), "t", 8)
            .unwrap_err()
            .contains("outside"));
        assert_eq!(
            read_values("".as_bytes(), "t", 8).unwrap_err(),
            "no values in input"
        );
    }

    #[test]
    fn boundary_values_are_accepted() {
        let data = read_values("0\n255".as_bytes(), "t", 8).expect("read");
        assert_eq!(data.values(), &[0.0, 255.0]);
    }
}
