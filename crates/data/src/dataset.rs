//! Data files: named record sets over an integer power-of-two domain.
//!
//! Section 5.1.1 of the paper: "The domain of the data files corresponds to
//! integer values in the range from 0 to 2^p - 1, where p is considered as a
//! parameter. [...] We did not consider data records that were outside of
//! the domain." [`DataFile::synthetic`] reproduces exactly that pipeline:
//! draw from a continuous distribution, round to the integer grid, reject
//! values outside `[0, 2^p - 1]`, repeat until the requested record count is
//! reached.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selest_core::Domain;

use crate::dist::ContinuousDistribution;

///
/// A named data file: `n_records` integer-valued records over the domain
/// `[0, 2^p - 1]`.
///
/// # Examples
///
/// ```
/// use selest_data::{DataFile, Normal};
///
/// // 10 000 normal records on the integer domain [0, 2^15 - 1].
/// let dist = Normal::new(16384.0, 4096.0);
/// let data = DataFile::synthetic("n(15)", 15, 10_000, &dist, 42);
/// assert_eq!(data.len(), 10_000);
/// assert!(data.values().iter().all(|&v| v == v.round()));
/// ```
#[derive(Debug, Clone)]
pub struct DataFile {
    name: String,
    domain: Domain,
    p: u32,
    values: Vec<f64>,
}

impl DataFile {
    /// Generate a data file by sampling `n_records` accepted values from
    /// `dist`, quantized to integers and restricted to `[0, 2^p - 1]`.
    ///
    /// Panics if the acceptance rate is so low that `200 * n_records` draws
    /// cannot produce enough records — that indicates a misconfigured
    /// distribution rather than bad luck.
    pub fn synthetic(
        name: &str,
        p: u32,
        n_records: usize,
        dist: &dyn ContinuousDistribution,
        seed: u64,
    ) -> Self {
        assert!(n_records > 0, "DataFile needs at least one record");
        let domain = Domain::power_of_two(p);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values = Vec::with_capacity(n_records);
        let max_draws = n_records.saturating_mul(200);
        let mut draws = 0usize;
        while values.len() < n_records {
            draws += 1;
            assert!(
                draws <= max_draws,
                "DataFile::synthetic({name}): acceptance rate below 0.5% — \
                 distribution does not fit the domain [0, 2^{p} - 1]"
            );
            let v = dist.sample(&mut rng).round();
            if domain.contains(v) {
                values.push(v);
            }
        }
        DataFile {
            name: name.to_owned(),
            domain,
            p,
            values,
        }
    }

    /// Wrap pre-generated integer-valued records (used by the TIGER and
    /// census simulacra). Values outside the domain are rejected with a
    /// panic: generators are expected to respect their own domain.
    pub fn from_values(name: &str, p: u32, values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "DataFile needs at least one record");
        let domain = Domain::power_of_two(p);
        for &v in &values {
            assert!(
                domain.contains(v) && v == v.round(),
                "DataFile::from_values({name}): value {v} is not an integer in {domain}"
            );
        }
        DataFile {
            name: name.to_owned(),
            domain,
            p,
            values,
        }
    }

    /// File name as referenced by the experiments (e.g. `"n(20)"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute domain `[0, 2^p - 1]`.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Domain-size exponent `p`.
    pub fn p(&self) -> u32 {
        self.p
    }

    /// All records.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of records `N`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the file has no records (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of distinct values — the experiments on domain cardinality
    /// (Figure 5) hinge on how this compares to `len()`.
    pub fn distinct_count(&self) -> usize {
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in data files"));
        sorted.dedup();
        sorted.len()
    }

    /// Average number of duplicates per distinct value.
    pub fn avg_frequency(&self) -> f64 {
        self.len() as f64 / self.distinct_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Normal, Uniform};

    #[test]
    fn synthetic_respects_domain_and_count() {
        let d = Uniform::new(0.0, 1023.0);
        let f = DataFile::synthetic("u(10)", 10, 5_000, &d, 1);
        assert_eq!(f.len(), 5_000);
        assert_eq!(f.p(), 10);
        assert!(f.values().iter().all(|&v| (0.0..=1023.0).contains(&v)));
        assert!(f.values().iter().all(|&v| v == v.round()));
    }

    #[test]
    fn synthetic_is_deterministic() {
        let d = Normal::new(512.0, 128.0);
        let a = DataFile::synthetic("n", 10, 1_000, &d, 42);
        let b = DataFile::synthetic("n", 10, 1_000, &d, 42);
        assert_eq!(a.values(), b.values());
        let c = DataFile::synthetic("n", 10, 1_000, &d, 43);
        assert_ne!(a.values(), c.values());
    }

    #[test]
    fn out_of_domain_draws_are_rejected_not_clamped() {
        // Normal centered at the left boundary: about half the draws fall
        // below zero and must be rejected, so no pile-up at 0 beyond the
        // density's own mass there.
        let d = Normal::new(0.0, 100.0);
        let f = DataFile::synthetic("edge", 10, 2_000, &d, 7);
        assert_eq!(f.len(), 2_000);
        let zeros = f.values().iter().filter(|&&v| v == 0.0).count();
        // With clamping, ~50% of the values would be 0; with rejection it's
        // the density mass of [-0.5, 0.5] conditioned on acceptance, ~0.4%.
        assert!(zeros < 100, "suspicious pile-up at the boundary: {zeros}");
    }

    #[test]
    fn smaller_domains_have_more_duplicates() {
        let narrow = DataFile::synthetic("u(8)", 8, 20_000, &Uniform::new(0.0, 255.0), 3);
        let wide = DataFile::synthetic("u(20)", 20, 20_000, &Uniform::new(0.0, 1_048_575.0), 3);
        assert!(
            narrow.avg_frequency() > 50.0,
            "narrow {}",
            narrow.avg_frequency()
        );
        assert!(wide.avg_frequency() < 1.1, "wide {}", wide.avg_frequency());
        assert!(narrow.distinct_count() <= 256);
    }

    #[test]
    fn from_values_validates_integers_in_domain() {
        let f = DataFile::from_values("ok", 4, vec![0.0, 3.0, 15.0]);
        assert_eq!(f.len(), 3);
    }

    #[test]
    #[should_panic(expected = "is not an integer in")]
    fn from_values_rejects_out_of_domain() {
        let _ = DataFile::from_values("bad", 4, vec![16.0]);
    }

    #[test]
    #[should_panic(expected = "acceptance rate below")]
    fn hopeless_distribution_panics() {
        // All the mass sits far outside the domain.
        let d = Normal::new(1e9, 1.0);
        let _ = DataFile::synthetic("bad", 10, 100, &d, 1);
    }
}
