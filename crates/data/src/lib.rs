//! Data generation for the selest workspace: the synthetic and
//! simulated-real data files of Table 2 of the paper, sampling without
//! replacement, and the size-separated query workloads of Section 5.1.2.
//!
//! Everything is seeded and deterministic: the same seed always yields the
//! same data file, sample set, and query file, so every experiment in
//! `selest-experiments` is reproducible bit-for-bit.

pub mod census;
pub mod dataset;
pub mod dist;
pub mod io;
pub mod paper;
pub mod queries;
pub mod sampling;
pub mod sketch;
pub mod tiger;

pub use census::InstanceWeightConfig;
pub use dataset::DataFile;
pub use dist::{ContinuousDistribution, Exponential, LogNormal, Mixture, Normal, Uniform, Zipf};
pub use io::{read_values, write_values};
pub use paper::{paper_data_files, PaperFile};
pub use queries::{positional_sweep, QueryFile};
pub use sampling::{reservoir_sample, sample_without_replacement};
pub use selest_core::incremental::{ReservoirParts, ReservoirSketch};
pub use sketch::{GkParts, GkSketch};
pub use tiger::{ArapahoeConfig, RailRiverConfig};
