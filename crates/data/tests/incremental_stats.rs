//! Property battery for the incremental statistics substrate
//! (DESIGN.md §15): GK summary merges stay within the documented
//! `2·ε·n` rank bound in any merge order or grouping, hashed-priority
//! reservoirs retain exactly the sequential sample under any fixed
//! partitioning, and zero-update snapshots are bit-identical to a
//! from-scratch prepare.

use std::sync::Arc;

use proptest::prelude::*;
use selest_core::incremental::IncrementalColumn;
use selest_core::{Domain, PreparedColumn};
use selest_data::{GkSketch, ReservoirSketch};

const EPS: f64 = 0.05;
const PROBES: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 0.9];

fn values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..=1_024_000).prop_map(|v| v as f64 / 1_000.0),
            Just(512.0), // heavy duplicate
        ],
        1..max_len,
    )
}

fn sketch_over(vs: &[f64]) -> GkSketch {
    let mut s = GkSketch::new(EPS);
    for &v in vs {
        s.insert(v);
    }
    s
}

/// Max distance from `target` rank to the true rank interval of `value`
/// in the sorted union (duplicates make the true rank an interval).
fn rank_error(sorted: &[f64], value: f64, target: u64) -> u64 {
    let lt = sorted.partition_point(|&v| v < value) as u64;
    let le = sorted.partition_point(|&v| v <= value) as u64;
    if target < lt + 1 {
        lt + 1 - target
    } else {
        target.saturating_sub(le)
    }
}

/// Every probed quantile of `s` must sit within the conservative merged
/// bound `ceil(2·ε·n)` of its target rank, and the summary's own
/// realized bound must respect the same cap.
fn assert_within_two_epsilon(s: &GkSketch, sorted: &[f64], label: &str) {
    let n = s.len();
    assert_eq!(n as usize, sorted.len(), "{label}: lost values");
    let cap = (2.0 * EPS * n as f64).ceil().max(1.0) as u64;
    assert!(
        s.rank_error_bound() <= cap,
        "{label}: realized bound {} > 2en {cap}",
        s.rank_error_bound(),
    );
    for &q in &PROBES {
        let (v, _) = s.quantile_with_bound(q);
        let target = (q * n as f64).ceil().max(1.0) as u64;
        let err = rank_error(sorted, v, target);
        assert!(
            err <= cap,
            "{label}: quantile {q} off by {err} ranks (cap {cap})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// GK merge is commutative and associative within the `2·ε·n` rank
    /// bound: every merge order and grouping of three independent
    /// summaries answers rank queries within the same conservative cap
    /// the sequential single-stream sketch satisfies.
    #[test]
    fn gk_merge_orders_all_satisfy_the_two_epsilon_bound(
        a in values(300),
        b in values(300),
        c in values(300),
    ) {
        let mut sorted: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        sorted.sort_by(f64::total_cmp);
        let (sa, sb, sc) = (sketch_over(&a), sketch_over(&b), sketch_over(&c));

        let mut all: Vec<f64> = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        assert_within_two_epsilon(&sketch_over(&all), &sorted, "sequential");

        // ((A + B) + C) — left-deep.
        let mut ab_c = sa.clone();
        ab_c.merge(&sb);
        ab_c.merge(&sc);
        assert_within_two_epsilon(&ab_c, &sorted, "(A+B)+C");
        // ((C + B) + A) — commuted.
        let mut cb_a = sc.clone();
        cb_a.merge(&sb);
        cb_a.merge(&sa);
        assert_within_two_epsilon(&cb_a, &sorted, "(C+B)+A");
        // (A + (B + C)) — right-deep grouping.
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        assert_within_two_epsilon(&a_bc, &sorted, "A+(B+C)");
    }

    /// The hashed-priority reservoir is a pure function of the offered
    /// rows: chunking the stream at any fixed boundaries (1, 2, or 7
    /// parts) and merging in any order retains exactly the sequential
    /// sample.
    #[test]
    fn reservoir_partitioning_retains_the_sequential_sample(
        vs in values(500),
        capacity in 1usize..64,
        seed in 0u64..u64::MAX,
    ) {
        let mut whole = ReservoirSketch::new(capacity, seed);
        for &v in &vs {
            whole.observe(v);
        }
        for parts in [1usize, 2, 7] {
            let chunk = vs.len().div_ceil(parts);
            let mut pieces: Vec<ReservoirSketch> = vs
                .chunks(chunk)
                .enumerate()
                .map(|(p, piece)| {
                    let mut r = ReservoirSketch::with_offset(capacity, seed, (p * chunk) as u64);
                    for &v in piece {
                        r.observe(v);
                    }
                    r
                })
                .collect();
            // Merge back-to-front: order must not matter.
            let mut merged = pieces.pop().expect("at least one chunk");
            for piece in pieces.iter().rev() {
                merged.merge(piece);
            }
            prop_assert_eq!(&whole, &merged, "parts={}", parts);
            prop_assert_eq!(whole.sample(), merged.sample(), "parts={}", parts);
        }
    }

    /// With zero updates absorbed, `snapshot()` returns the previous
    /// `Arc` untouched, and its contents are bit-identical to a
    /// from-scratch prepare of the maintained sample — before and after
    /// an intervening update/rebuild cycle.
    #[test]
    fn zero_update_snapshots_are_bit_identical(
        vs in values(400),
        capacity in 1usize..64,
        seed in 0u64..u64::MAX,
    ) {
        let domain = Domain::new(0.0, 1_025.0);
        let mut col = IncrementalColumn::from_values(&vs, domain, capacity, seed)
            .expect("finite nonempty stream");
        for round in 0..2 {
            let a = col.snapshot();
            let b = col.snapshot();
            prop_assert!(Arc::ptr_eq(&a, &b), "round {}: clean snapshot rebuilt", round);
            let fresh = PreparedColumn::prepare(&col.reservoir().sample(), domain);
            prop_assert_eq!(a.len(), fresh.len());
            prop_assert!(
                a.sorted().iter().zip(fresh.sorted()).all(|(x, y)| x.to_bits() == y.to_bits()),
                "round {}: sorted views differ",
                round
            );
            prop_assert!(
                a.values().iter().zip(fresh.values()).all(|(x, y)| x.to_bits() == y.to_bits()),
                "round {}: draw-order views differ",
                round
            );
            // Dirty the column; the next round re-checks the contract
            // after a real rebuild.
            col.insert(512.0).expect("finite insert");
        }
    }
}
