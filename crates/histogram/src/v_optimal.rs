//! The v-optimal histogram (extension baseline; Jagadish et al., VLDB '98,
//! reference \[7\] of the paper).
//!
//! Partitions the sample's (value, frequency) sequence into `k` contiguous
//! groups minimizing the total within-group variance of frequencies, by
//! dynamic programming with prefix sums (`O(D^2 k)` over `D` distinct
//! values). To keep construction tractable on continuous domains, distinct
//! values beyond `max_points` are first coalesced onto an equi-width
//! micro-grid — the standard practical compromise.

use selest_core::{Domain, PreparedColumn};

use crate::bins::BinnedHistogram;

/// Build a v-optimal histogram with (at most) `k` bins over the domain.
///
/// `max_points` caps the number of distinct points entering the DP
/// (256 is plenty for n = 2 000 samples; raise it for exactness on small
/// samples).
pub fn v_optimal(samples: &[f64], domain: Domain, k: usize, max_points: usize) -> BinnedHistogram {
    assert!(k >= 1, "v_optimal needs at least one bin");
    assert!(max_points >= k, "max_points must be at least k");
    assert!(!samples.is_empty(), "v_optimal needs samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample set"));
    from_sorted(&sorted, domain, k, max_points)
}

/// [`v_optimal`] over a prepared column: the DP consumes the shared sorted
/// slice — no copy, no re-sort. Bit-identical to the unsorted entry point.
pub fn v_optimal_prepared(col: &PreparedColumn, k: usize, max_points: usize) -> BinnedHistogram {
    v_optimal_from_sorted(col.sorted(), col.domain(), k, max_points)
}

fn v_optimal_from_sorted(
    sorted: &[f64],
    domain: Domain,
    k: usize,
    max_points: usize,
) -> BinnedHistogram {
    assert!(k >= 1, "v_optimal needs at least one bin");
    assert!(max_points >= k, "max_points must be at least k");
    assert!(!sorted.is_empty(), "v_optimal needs samples");
    from_sorted(sorted, domain, k, max_points)
}

/// DP construction over an already-sorted sample.
fn from_sorted(sorted: &[f64], domain: Domain, k: usize, max_points: usize) -> BinnedHistogram {
    assert!(
        domain.contains(sorted[0]) && domain.contains(*sorted.last().expect("nonempty")),
        "samples outside domain {domain}"
    );

    // (value, frequency) points: distinct values, or micro-grid cells when
    // there are too many.
    let mut points: Vec<(f64, f64)> = Vec::new();
    {
        let mut i = 0;
        while i < sorted.len() {
            let v = sorted[i];
            let j = sorted[i..].partition_point(|&x| x <= v) + i;
            points.push((v, (j - i) as f64));
            i = j;
        }
    }
    if points.len() > max_points {
        let cell = domain.width() / max_points as f64;
        let mut grid: Vec<(f64, f64)> = Vec::with_capacity(max_points);
        for &(v, f) in &points {
            let mut idx = ((v - domain.lo()) / cell) as usize;
            if idx >= max_points {
                idx = max_points - 1;
            }
            let center = domain.lo() + (idx as f64 + 0.5) * cell;
            match grid.last_mut() {
                Some(last) if last.0 == center => last.1 += f,
                _ => grid.push((center, f)),
            }
        }
        points = grid;
    }
    let d = points.len();
    let k = k.min(d);

    // Prefix sums of frequencies and squared frequencies for O(1) SSE.
    let mut pf = vec![0.0f64; d + 1];
    let mut pf2 = vec![0.0f64; d + 1];
    for (i, &(_, f)) in points.iter().enumerate() {
        pf[i + 1] = pf[i] + f;
        pf2[i + 1] = pf2[i] + f * f;
    }
    let sse = |a: usize, b: usize| {
        // Sum of squared deviations of frequencies in points[a..b].
        let cnt = (b - a) as f64;
        let s = pf[b] - pf[a];
        let s2 = pf2[b] - pf2[a];
        (s2 - s * s / cnt).max(0.0)
    };

    // DP: cost[j][i] = min SSE of splitting points[..i] into j groups.
    let inf = f64::INFINITY;
    let mut cost = vec![inf; d + 1];
    let mut back = vec![vec![0usize; d + 1]; k + 1];
    cost[0] = 0.0;
    for (i, c) in cost.iter_mut().enumerate().skip(1) {
        *c = sse(0, i);
    }
    let mut prev = cost;
    #[allow(clippy::needless_range_loop)] // j/split index DP tables in parallel
    for j in 2..=k {
        let mut cur = vec![inf; d + 1];
        // At least one point per group: i ranges j..=d.
        for i in j..=d {
            let mut best = inf;
            let mut arg = j - 1;
            #[allow(clippy::needless_range_loop)] // split indexes the DP row
            for split in (j - 1)..i {
                let c = prev[split] + sse(split, i);
                if c < best {
                    best = c;
                    arg = split;
                }
            }
            cur[i] = best;
            back[j][i] = arg;
        }
        prev = cur;
    }

    // Recover split indices.
    let mut splits = Vec::with_capacity(k - 1);
    let mut i = d;
    for j in (2..=k).rev() {
        let s = back[j][i];
        splits.push(s);
        i = s;
    }
    splits.reverse();

    // Boundaries at midpoints between adjacent groups' edge values.
    let mut boundaries = Vec::with_capacity(k + 1);
    boundaries.push(domain.lo());
    for &s in &splits {
        boundaries.push(0.5 * (points[s - 1].0 + points[s].0));
    }
    boundaries.push(domain.hi());

    // Counts per (c_i, c_{i+1}] from the sorted sample.
    let n = sorted.len();
    let n_bins = boundaries.len() - 1;
    let mut counts = Vec::with_capacity(n_bins);
    let mut prev_idx = 0usize;
    #[allow(clippy::needless_range_loop)] // i indexes boundaries, not an iterable
    for i in 1..=n_bins {
        let hi = boundaries[i];
        let idx = if i == n_bins {
            n
        } else {
            sorted.partition_point(|&v| v <= hi)
        };
        counts.push((idx - prev_idx) as u32);
        prev_idx = idx;
    }
    BinnedHistogram::new(boundaries, counts, domain, "VOPT")
}

#[cfg(test)]
mod tests {
    use super::*;
    use selest_core::{RangeQuery, SelectivityEstimator};

    #[test]
    fn separates_frequency_regimes() {
        let d = Domain::new(0.0, 30.0);
        // Three regimes: freq 10 at 0..10, freq 1 at 10..20, freq 10 at
        // 20..30.
        let mut samples = Vec::new();
        for v in 0..10 {
            samples.extend(std::iter::repeat_n(v as f64, 10));
        }
        for v in 10..20 {
            samples.push(v as f64);
        }
        for v in 20..30 {
            samples.extend(std::iter::repeat_n(v as f64, 10));
        }
        let h = v_optimal(&samples, d, 3, 256);
        assert_eq!(h.n_bins(), 3);
        let b = h.boundaries();
        // Splits near the regime changes at ~10 and ~20.
        assert!((b[1] - 9.5).abs() < 1.1, "first split at {}", b[1]);
        assert!((b[2] - 19.5).abs() < 1.1, "second split at {}", b[2]);
    }

    #[test]
    fn whole_domain_mass_is_one() {
        let d = Domain::new(0.0, 100.0);
        let samples: Vec<f64> = (0..500).map(|i| i as f64 * 17.0 % 100.0).collect();
        let h = v_optimal(&samples, d, 8, 128);
        assert!((h.selectivity(&RangeQuery::new(0.0, 100.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn micro_grid_kicks_in_for_many_distinct_values() {
        let d = Domain::new(0.0, 1000.0);
        let samples: Vec<f64> = (0..900).map(|i| i as f64 + 0.5).collect();
        // 900 distinct values, capped at 64 points.
        let h = v_optimal(&samples, d, 8, 64);
        assert_eq!(h.n_bins(), 8);
        let total: u32 = h.counts().iter().sum();
        assert_eq!(total as usize, samples.len());
    }

    #[test]
    fn k_larger_than_distinct_values_degrades_gracefully() {
        let d = Domain::new(0.0, 10.0);
        let h = v_optimal(&[2.0, 2.0, 8.0], d, 5, 64);
        assert!(h.n_bins() <= 2);
        let total: u32 = h.counts().iter().sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn flat_frequencies_are_split_but_harmless() {
        // With all frequencies equal, any split has zero SSE; the estimator
        // must still be calibrated.
        let d = Domain::new(0.0, 8.0);
        let samples: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let h = v_optimal(&samples, d, 4, 64);
        let s = h.selectivity(&RangeQuery::new(0.0, 8.0));
        assert!((s - 1.0).abs() < 1e-12);
    }
}
