//! The equi-depth (equi-height) histogram: boundaries at sample quantiles
//! so every bin holds (approximately) the same number of samples
//! (Section 3.1, after Piatetsky-Shapiro & Connell).
//!
//! Over heavily duplicated data, quantile boundaries can coincide; the
//! resulting zero-width bins act as point masses (see
//! [`crate::bins::BinnedHistogram`]).

use selest_core::{Domain, PreparedColumn};

use crate::bins::BinnedHistogram;

/// Build an equi-depth histogram with `k` bins over the domain.
///
/// Interior boundaries are the `j/k` sample quantiles; the outer boundaries
/// are the domain bounds, so the first and last bins absorb the slack
/// between the extreme samples and the domain edges (the paper requires
/// bins to partition the *complete* attribute domain).
pub fn equi_depth(samples: &[f64], domain: Domain, k: usize) -> BinnedHistogram {
    assert!(k >= 1, "equi_depth needs at least one bin");
    assert!(!samples.is_empty(), "equi_depth needs samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample set"));
    from_sorted(&sorted, domain, k)
}

/// [`equi_depth`] over a prepared column: consumes the shared sorted slice
/// directly — no copy, no re-sort. Bit-identical to the unsorted entry
/// point over the same sample.
pub fn equi_depth_prepared(col: &PreparedColumn, k: usize) -> BinnedHistogram {
    from_sorted(col.sorted(), col.domain(), k)
}

/// Build an equi-depth histogram from *pre-computed* quantile boundaries —
/// the sketch path. Anything that can produce approximate `j/k` quantile
/// boundaries (a `GkSketch`, a merged partition summary) plugs in here and
/// gets the same rank-difference depth counts as the sample-sorted path:
/// bin `j` is credited `ceil(j·n/k) − ceil((j−1)·n/k)` rows *by
/// construction*, because an ε-approximate boundary is still the boundary
/// of the j-th depth slice up to εn ranks. Coincident boundaries behave as
/// point masses, exactly as in [`equi_depth`].
///
/// `boundaries` must be `domain.lo(), q_{1/k}, …, q_{(k-1)/k}, domain.hi()`
/// (length `k + 1`, non-decreasing) and `n` the stream length the
/// quantiles summarize.
pub fn equi_depth_from_boundaries(boundaries: Vec<f64>, n: u64, domain: Domain) -> BinnedHistogram {
    let k = boundaries.len().checked_sub(1).expect("k+1 boundaries");
    assert!(k >= 1, "equi_depth needs at least one bin");
    assert!(n > 0, "equi_depth needs a nonempty stream");
    assert!(
        boundaries.windows(2).all(|w| w[0] <= w[1]),
        "equi-depth boundaries must be non-decreasing"
    );
    BinnedHistogram::new(boundaries, depth_counts(n as usize, k), domain, "EDH")
}

/// Depth counts as rank differences of the `j/k` quantile boundaries —
/// *not* value-based counting: a duplicated boundary value splits its
/// duplicates across the coincident (zero-width) bins, preserving the
/// point mass instead of dumping it into the first bin that ends there.
fn depth_counts(n: usize, k: usize) -> Vec<u32> {
    let mut counts = Vec::with_capacity(k);
    let mut prev_rank = 0usize;
    for j in 1..=k {
        let rank = if j == k {
            n
        } else {
            (j * n).div_ceil(k).clamp(1, n)
        };
        counts.push((rank - prev_rank) as u32);
        prev_rank = rank;
    }
    counts
}

/// Quantile-boundary construction over an already-sorted sample.
fn from_sorted(sorted: &[f64], domain: Domain, k: usize) -> BinnedHistogram {
    assert!(k >= 1, "equi_depth needs at least one bin");
    assert!(!sorted.is_empty(), "equi_depth needs samples");
    assert!(
        domain.contains(sorted[0]) && domain.contains(*sorted.last().expect("nonempty")),
        "samples outside domain {domain}"
    );
    let n = sorted.len();
    let mut boundaries = Vec::with_capacity(k + 1);
    boundaries.push(domain.lo());
    for j in 1..k {
        // Upper edge of the j-th depth slice: the ceil(j*n/k)-th order
        // statistic.
        let rank = (j * n).div_ceil(k).clamp(1, n);
        boundaries.push(sorted[rank - 1]);
    }
    boundaries.push(domain.hi());
    // Guard against quantiles below lo (impossible) or above hi (impossible
    // since samples are inside the domain); enforce monotonicity exactly.
    for i in 1..boundaries.len() {
        if boundaries[i] < boundaries[i - 1] {
            boundaries[i] = boundaries[i - 1];
        }
    }
    BinnedHistogram::new(boundaries, depth_counts(n, k), domain, "EDH")
}

#[cfg(test)]
mod tests {
    use super::*;
    use selest_core::{RangeQuery, SelectivityEstimator};

    #[test]
    fn bins_hold_equal_depth_on_distinct_data() {
        let d = Domain::new(0.0, 100.0);
        let samples: Vec<f64> = (0..400).map(|i| i as f64 / 4.0).collect();
        let h = equi_depth(&samples, d, 8);
        assert_eq!(h.n_bins(), 8);
        for &c in h.counts() {
            assert_eq!(c, 50);
        }
    }

    #[test]
    fn total_count_is_preserved_under_duplicates() {
        let d = Domain::new(0.0, 10.0);
        // 70% duplicates of the value 5.
        let mut samples = vec![5.0; 70];
        samples.extend((0..30).map(|i| i as f64 / 3.0));
        let h = equi_depth(&samples, d, 5);
        let total: u32 = h.counts().iter().sum();
        assert_eq!(total, 100);
        // The duplicated value forces coincident boundaries somewhere.
        let zero_width = h.boundaries().windows(2).filter(|w| w[0] == w[1]).count();
        assert!(zero_width >= 1, "expected coincident quantile boundaries");
        // A query covering 5 captures the bulk of the duplicate mass (the
        // interior zero-width bins hold their depth as point masses; only
        // the two outer bins spread theirs).
        let s = h.selectivity(&RangeQuery::new(4.9, 5.1));
        assert!(s >= 0.55, "got {s}");
    }

    #[test]
    fn skewed_data_gets_narrow_bins_in_dense_regions() {
        let d = Domain::new(0.0, 1000.0);
        // 90% of mass in [0, 10], the rest spread to 1000.
        let mut samples: Vec<f64> = (0..900).map(|i| i as f64 / 90.0).collect();
        samples.extend((0..100).map(|i| 10.0 + i as f64 * 9.9));
        let h = equi_depth(&samples, d, 10);
        // At least 8 of the 10 bins end within [0, 10].
        let below = h.boundaries().iter().filter(|&&b| b <= 10.0).count();
        assert!(below >= 9, "only {below} boundaries in the dense region");
        // Selectivity of the dense region is ~0.9.
        let s = h.selectivity(&RangeQuery::new(0.0, 10.0));
        assert!((s - 0.9).abs() < 0.05, "got {s}");
    }

    #[test]
    fn single_bin_equals_uniform_spread() {
        let d = Domain::new(0.0, 10.0);
        let h = equi_depth(&[1.0, 2.0, 3.0], d, 1);
        assert_eq!(h.n_bins(), 1);
        let s = h.selectivity(&RangeQuery::new(0.0, 5.0));
        assert!((s - 0.5).abs() < 1e-15);
    }

    #[test]
    fn more_bins_than_samples_still_works() {
        let d = Domain::new(0.0, 10.0);
        let h = equi_depth(&[2.0, 7.0], d, 5);
        let total: u32 = h.counts().iter().sum();
        assert_eq!(total, 2);
        assert!((h.selectivity(&RangeQuery::new(0.0, 10.0)) - 1.0).abs() < 1e-15);
    }
}
