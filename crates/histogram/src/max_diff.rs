//! The max-diff histogram (Section 3.1, after Poosala et al., SIGMOD '96):
//! "for the max-diff histogram with k bins, the k-1 adjacent pairs with
//! maximum distance are computed and a boundary is set between each of the
//! k-1 pairs."
//!
//! We place each boundary at the midpoint of its gap between adjacent
//! *distinct* sorted sample values, and close the outer bins at the domain
//! bounds. On continuous large domains the largest gaps are dominated by
//! sampling noise in sparse regions — the reason the paper finds max-diff
//! clearly inferior there, opposite to the small-domain results of \[8\].

use selest_core::{Domain, PreparedColumn};

use crate::bins::BinnedHistogram;

/// Build a max-diff histogram with (at most) `k` bins over the domain.
///
/// Fewer than `k` bins result when the sample has fewer than `k` distinct
/// values.
pub fn max_diff(samples: &[f64], domain: Domain, k: usize) -> BinnedHistogram {
    assert!(k >= 1, "max_diff needs at least one bin");
    assert!(!samples.is_empty(), "max_diff needs samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample set"));
    from_sorted(&sorted, domain, k)
}

/// [`max_diff`] over a prepared column: reads the shared sorted slice —
/// no copy, no re-sort. Bit-identical to the unsorted entry point.
pub fn max_diff_prepared(col: &PreparedColumn, k: usize) -> BinnedHistogram {
    from_sorted(col.sorted(), col.domain(), k)
}

/// Gap-cut construction over an already-sorted sample.
fn from_sorted(sorted: &[f64], domain: Domain, k: usize) -> BinnedHistogram {
    assert!(k >= 1, "max_diff needs at least one bin");
    assert!(!sorted.is_empty(), "max_diff needs samples");
    assert!(
        domain.contains(sorted[0]) && domain.contains(*sorted.last().expect("nonempty")),
        "samples outside domain {domain}"
    );
    // Distinct values and the gaps between them.
    let mut distinct: Vec<f64> = sorted.to_vec();
    distinct.dedup();
    let n_gaps = distinct.len().saturating_sub(1);
    let n_cuts = (k - 1).min(n_gaps);

    // Indices of the n_cuts largest gaps.
    let mut gap_order: Vec<usize> = (0..n_gaps).collect();
    gap_order.sort_by(|&a, &b| {
        let ga = distinct[a + 1] - distinct[a];
        let gb = distinct[b + 1] - distinct[b];
        gb.partial_cmp(&ga).expect("finite gaps").then(a.cmp(&b))
    });
    let mut cut_gaps: Vec<usize> = gap_order[..n_cuts].to_vec();
    cut_gaps.sort_unstable();

    let mut boundaries = Vec::with_capacity(n_cuts + 2);
    boundaries.push(domain.lo());
    for &g in &cut_gaps {
        boundaries.push(0.5 * (distinct[g] + distinct[g + 1]));
    }
    boundaries.push(domain.hi());

    // Count samples per (c_i, c_{i+1}], first bin closed at lo.
    let n = sorted.len();
    let n_bins = boundaries.len() - 1;
    let mut counts = Vec::with_capacity(n_bins);
    let mut prev_idx = 0usize;
    #[allow(clippy::needless_range_loop)] // i indexes boundaries, not an iterable
    for i in 1..=n_bins {
        let hi = boundaries[i];
        let idx = if i == n_bins {
            n
        } else {
            sorted.partition_point(|&v| v <= hi)
        };
        counts.push((idx - prev_idx) as u32);
        prev_idx = idx;
    }
    BinnedHistogram::new(boundaries, counts, domain, "MDH")
}

#[cfg(test)]
mod tests {
    use super::*;
    use selest_core::{RangeQuery, SelectivityEstimator};

    #[test]
    fn boundaries_split_the_largest_gaps() {
        let d = Domain::new(0.0, 100.0);
        // Two clusters with a huge gap between 10 and 90.
        let mut samples: Vec<f64> = (0..50).map(|i| i as f64 * 0.2).collect();
        samples.extend((0..50).map(|i| 90.0 + i as f64 * 0.2));
        let h = max_diff(&samples, d, 2);
        assert_eq!(h.n_bins(), 2);
        // The single cut sits in the middle of the gap [9.8, 90].
        let cut = h.boundaries()[1];
        assert!((cut - 49.9).abs() < 1e-9, "cut at {cut}");
        assert_eq!(h.counts(), &[50, 50]);
        // The empty valley gets near-zero estimated selectivity only to the
        // extent the bins spread mass; a query deep in the valley sees the
        // uniform-within-bin assumption.
        let s = h.selectivity(&RangeQuery::new(30.0, 40.0));
        assert!(s < 0.15, "valley mass {s}");
    }

    #[test]
    fn k_cuts_pick_the_k_largest_gaps() {
        let d = Domain::new(0.0, 100.0);
        // Gaps: between 10 and 40 (30), 41 and 60 (19), 61..62 small, etc.
        let samples = vec![5.0, 10.0, 40.0, 41.0, 60.0, 61.0, 62.0, 95.0];
        let h = max_diff(&samples, d, 4);
        // Largest gaps: 62->95 (33), 10->40 (30), 41->60 (19); cuts at
        // their midpoints 78.5, 25, 50.5. Four bins, five boundaries.
        let b = h.boundaries();
        assert_eq!(b.len(), 5);
        assert!((b[1] - 25.0).abs() < 1e-9);
        assert!((b[2] - 50.5).abs() < 1e-9);
        assert!((b[3] - 78.5).abs() < 1e-9);
    }

    #[test]
    fn duplicates_collapse_available_cuts() {
        let d = Domain::new(0.0, 10.0);
        let h = max_diff(&[3.0, 3.0, 3.0, 7.0, 7.0], d, 5);
        // Only one gap exists (3 -> 7): two bins, not five.
        assert_eq!(h.n_bins(), 2);
        assert_eq!(h.counts(), &[3, 2]);
    }

    #[test]
    fn whole_domain_mass_is_one() {
        let d = Domain::new(0.0, 50.0);
        let samples: Vec<f64> = (0..100).map(|i| (i * i % 50) as f64).collect();
        let h = max_diff(&samples, d, 7);
        assert!((h.selectivity(&RangeQuery::new(0.0, 50.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_distinct_value_yields_one_bin() {
        let d = Domain::new(0.0, 10.0);
        let h = max_diff(&[4.0; 10], d, 3);
        assert_eq!(h.n_bins(), 1);
        assert_eq!(h.counts(), &[10]);
    }
}
