//! The equi-width histogram: all bins have the same width
//! `h = domain.width() / k` (Section 3.1).
//!
//! The paper's headline histogram: on large metric domains it beat both
//! equi-depth and max-diff in their experiments (Figure 8), contradicting
//! earlier small-domain studies.

use selest_core::Domain;

use crate::bins::BinnedHistogram;

/// Build an equi-width histogram with `k` bins over the domain.
///
/// Panics on an empty sample, `k == 0`, or samples outside the domain.
///
/// # Examples
///
/// ```
/// use selest_core::{Domain, RangeQuery, SelectivityEstimator};
/// use selest_histogram::equi_width;
///
/// let sample: Vec<f64> = (0..1000).map(|i| (i as f64 * 7.31) % 100.0).collect();
/// let hist = equi_width(&sample, Domain::new(0.0, 100.0), 20);
/// let sel = hist.selectivity(&RangeQuery::new(25.0, 50.0));
/// assert!((sel - 0.25).abs() < 0.02);
/// ```
pub fn equi_width(samples: &[f64], domain: Domain, k: usize) -> BinnedHistogram {
    assert!(k >= 1, "equi_width needs at least one bin");
    assert!(!samples.is_empty(), "equi_width needs samples");
    let width = domain.width() / k as f64;
    let mut counts = vec![0u32; k];
    for &x in samples {
        assert!(domain.contains(x), "sample {x} outside domain {domain}");
        let mut idx = ((x - domain.lo()) / width) as usize;
        if idx >= k {
            idx = k - 1; // x == domain.hi()
        }
        counts[idx] += 1;
    }
    let boundaries: Vec<f64> = (0..=k)
        .map(|i| {
            if i == k {
                domain.hi()
            } else {
                domain.lo() + i as f64 * width
            }
        })
        .collect();
    BinnedHistogram::new(boundaries, counts, domain, "EWH")
}

/// [`equi_width`] over a prepared column. Equi-width construction never
/// sorts (counts are exact integers, so accumulation order is immaterial);
/// the prepared path exists for API uniformity and consumes the column's
/// original-order sample, bit-identically to the free function.
pub fn equi_width_prepared(col: &selest_core::PreparedColumn, k: usize) -> BinnedHistogram {
    equi_width(col.values(), col.domain(), k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selest_core::{RangeQuery, SelectivityEstimator};

    #[test]
    fn counts_land_in_the_right_bins() {
        let d = Domain::new(0.0, 10.0);
        let h = equi_width(&[0.0, 1.0, 2.5, 5.0, 9.99, 10.0], d, 4);
        assert_eq!(h.n_bins(), 4);
        // Width 2.5; boundary values go up, the domain max goes last.
        assert_eq!(h.counts(), &[2, 1, 1, 2]);
    }

    #[test]
    fn bin_edges_use_floor_semantics() {
        let d = Domain::new(0.0, 10.0);
        let h = equi_width(&[2.5, 5.0, 7.5], d, 4);
        // Values exactly on an interior boundary go to the upper bin
        // (floor of x/width).
        assert_eq!(h.counts(), &[0, 1, 1, 1]);
    }

    #[test]
    fn uniform_data_gives_flat_histogram() {
        let d = Domain::new(0.0, 100.0);
        let samples: Vec<f64> = (0..1_000).map(|i| (i as f64 + 0.5) / 10.0).collect();
        let h = equi_width(&samples, d, 10);
        for &c in h.counts() {
            assert_eq!(c, 100);
        }
        let q = RangeQuery::new(13.0, 27.0);
        assert!((h.selectivity(&q) - 0.14).abs() < 1e-12);
    }

    #[test]
    fn one_bin_degenerates_to_uniform_estimator() {
        let d = Domain::new(0.0, 100.0);
        let h = equi_width(&[3.0, 42.0, 99.0], d, 1);
        let q = RangeQuery::new(25.0, 75.0);
        assert!((h.selectivity(&q) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn maximum_value_is_counted() {
        let d = Domain::new(0.0, 8.0);
        let h = equi_width(&[8.0], d, 4);
        assert_eq!(h.counts(), &[0, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn rejects_out_of_domain_samples() {
        let _ = equi_width(&[11.0], Domain::new(0.0, 10.0), 2);
    }
}
