//! Bin-count selection for equi-width histograms (Sections 4.1 and 4.3).
//!
//! The AMISE of the equi-width histogram,
//!
//! ```text
//! AMISE(h) = 1/(n h) + h^2/12 * R(f'),   R(f') = Int f'(x)^2 dx,
//! ```
//!
//! is minimized at `h_EW = (6 / (n R(f')))^(1/3)` (equation (7)), which the
//! *normal scale rule* (equation (8)) approximates as
//! `h_EW ≈ (24 sqrt(pi))^(1/3) * s * n^(-1/3)` with the robust scale
//! `s = min(stddev, IQR/1.349)`. [`PlugInBins`] instead estimates `R(f')`
//! from the sample (Section 4.3); [`SturgesBins`] and
//! [`FreedmanDiaconisBins`] are the classical reference rules included for
//! comparison.

use selest_core::{Domain, PreparedColumn};
use selest_math::{psi_plug_in, psi_plug_in_sorted, robust_scale, PsiStrategy};

/// `(24 sqrt(pi))^(1/3)`, the constant of equation (8); also known as
/// Scott's rule constant 3.4908.
pub fn normal_scale_bin_constant() -> f64 {
    (24.0 * core::f64::consts::PI.sqrt()).powf(1.0 / 3.0)
}

/// AMISE-optimal bin width given the true roughness `R(f')` (equation (7)).
pub fn optimal_bin_width(n: usize, r_f_prime: f64) -> f64 {
    assert!(n > 0, "optimal_bin_width needs samples");
    assert!(r_f_prime > 0.0, "R(f') must be positive, got {r_f_prime}");
    (6.0 / (n as f64 * r_f_prime)).powf(1.0 / 3.0)
}

/// The histogram AMISE at bin width `h` (Section 4.1), for plotting the
/// smoothing trade-off.
pub fn amise_histogram(h: f64, n: usize, r_f_prime: f64) -> f64 {
    1.0 / (n as f64 * h) + h * h / 12.0 * r_f_prime
}

/// Convert a bin width into a bin count over the domain (at least 1).
pub fn width_to_bins(h: f64, domain: &Domain) -> usize {
    assert!(h > 0.0, "bin width must be positive");
    (domain.width() / h).ceil().max(1.0) as usize
}

/// A rule choosing the number of equi-width bins from the sample.
pub trait BinRule {
    /// Number of bins for this sample over this domain.
    fn bins(&self, samples: &[f64], domain: &Domain) -> usize;

    /// Number of bins from a prepared column. The default delegates to
    /// [`BinRule::bins`] over the column's original-order sample; rules
    /// that sort or compute order statistics override it to reuse the
    /// column's shared sorted slice and cached summary, bit-identically.
    fn bins_prepared(&self, col: &PreparedColumn) -> usize {
        self.bins(col.values(), &col.domain())
    }

    /// Short name used in experiment output (`"h-NS"`, ...).
    fn name(&self) -> String;
}

/// The normal scale rule of equation (8).
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalScaleBins;

impl BinRule for NormalScaleBins {
    fn bins(&self, samples: &[f64], domain: &Domain) -> usize {
        assert!(samples.len() >= 2, "normal scale rule needs >= 2 samples");
        let s = robust_scale(samples);
        assert!(s > 0.0, "normal scale rule: sample is constant");
        let h = normal_scale_bin_constant() * s * (samples.len() as f64).powf(-1.0 / 3.0);
        width_to_bins(h, domain)
    }

    fn bins_prepared(&self, col: &PreparedColumn) -> usize {
        assert!(col.len() >= 2, "normal scale rule needs >= 2 samples");
        let s = col.summary().robust_scale;
        assert!(s > 0.0, "normal scale rule: sample is constant");
        let h = normal_scale_bin_constant() * s * (col.len() as f64).powf(-1.0 / 3.0);
        width_to_bins(h, &col.domain())
    }

    fn name(&self) -> String {
        "h-NS".into()
    }
}

/// Direct plug-in rule: estimate `R(f') = -psi_2` by staged kernel
/// functional estimation, then apply equation (7).
#[derive(Debug, Clone, Copy)]
pub struct PlugInBins {
    /// Functional-estimation stages; 0 degenerates to the normal scale
    /// value.
    pub stages: usize,
}

impl PlugInBins {
    /// Two stages, mirroring the paper's kernel-side choice.
    pub fn two_stage() -> Self {
        PlugInBins { stages: 2 }
    }
}

impl BinRule for PlugInBins {
    fn bins(&self, samples: &[f64], domain: &Domain) -> usize {
        assert!(samples.len() >= 2, "plug-in rule needs >= 2 samples");
        let r_f_prime = -psi_plug_in(samples, 2, self.stages);
        assert!(r_f_prime > 0.0, "R(f') estimate must be positive");
        let h = optimal_bin_width(samples.len(), r_f_prime);
        width_to_bins(h, domain)
    }

    fn bins_prepared(&self, col: &PreparedColumn) -> usize {
        assert!(col.len() >= 2, "plug-in rule needs >= 2 samples");
        let psi = psi_plug_in_sorted(
            col.values(),
            col.sorted(),
            2,
            self.stages,
            PsiStrategy::Auto,
            selest_par::configured_jobs(),
        );
        let r_f_prime = -psi;
        assert!(r_f_prime > 0.0, "R(f') estimate must be positive");
        let h = optimal_bin_width(col.len(), r_f_prime);
        width_to_bins(h, &col.domain())
    }

    fn name(&self) -> String {
        format!("h-DPI{}", self.stages)
    }
}

/// Sturges' rule: `k = ceil(log2 n) + 1`. Severely undersmooths nothing and
/// oversmooths everything large — included as the classical textbook
/// baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct SturgesBins;

impl BinRule for SturgesBins {
    fn bins(&self, samples: &[f64], _domain: &Domain) -> usize {
        assert!(!samples.is_empty(), "Sturges' rule needs samples");
        (samples.len() as f64).log2().ceil() as usize + 1
    }

    fn name(&self) -> String {
        "Sturges".into()
    }
}

/// Freedman–Diaconis rule: `h = 2 IQR n^(-1/3)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FreedmanDiaconisBins;

impl BinRule for FreedmanDiaconisBins {
    fn bins(&self, samples: &[f64], domain: &Domain) -> usize {
        assert!(samples.len() >= 2, "Freedman-Diaconis needs >= 2 samples");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample set"));
        let iqr = selest_math::interquartile_range(&sorted);
        assert!(iqr > 0.0, "Freedman-Diaconis: IQR is zero");
        let h = 2.0 * iqr * (samples.len() as f64).powf(-1.0 / 3.0);
        width_to_bins(h, domain)
    }

    fn bins_prepared(&self, col: &PreparedColumn) -> usize {
        assert!(col.len() >= 2, "Freedman-Diaconis needs >= 2 samples");
        let iqr = selest_math::interquartile_range(col.sorted());
        assert!(iqr > 0.0, "Freedman-Diaconis: IQR is zero");
        let h = 2.0 * iqr * (col.len() as f64).powf(-1.0 / 3.0);
        width_to_bins(h, &col.domain())
    }

    fn name(&self) -> String {
        "FD".into()
    }
}

/// A fixed bin count, for sweeps and oracle searches.
#[derive(Debug, Clone, Copy)]
pub struct FixedBins(pub usize);

impl BinRule for FixedBins {
    fn bins(&self, _samples: &[f64], _domain: &Domain) -> usize {
        assert!(self.0 >= 1, "FixedBins must be at least 1");
        self.0
    }

    fn name(&self) -> String {
        format!("k={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selest_math::normal_quantile;

    fn normal_sample(n: usize, sigma: f64) -> Vec<f64> {
        (1..=n)
            .map(|i| 500.0 + sigma * normal_quantile(i as f64 / (n as f64 + 1.0)))
            .collect()
    }

    #[test]
    fn constant_matches_paper() {
        // (24 sqrt(pi))^(1/3) = 3.4908.
        assert!((normal_scale_bin_constant() - 3.4908).abs() < 1e-3);
    }

    #[test]
    fn optimal_width_reduces_to_normal_scale_under_normality() {
        // R(f') of N(0, sigma) is 1/(4 sqrt(pi) sigma^3).
        let sigma: f64 = 50.0;
        let n = 2_000;
        let r = 1.0 / (4.0 * core::f64::consts::PI.sqrt() * sigma.powi(3));
        let h = optimal_bin_width(n, r);
        let expect = normal_scale_bin_constant() * sigma * (n as f64).powf(-1.0 / 3.0);
        assert!((h - expect).abs() < 1e-9 * expect, "h {h} vs {expect}");
    }

    #[test]
    fn amise_is_minimized_at_optimal_width() {
        let r = 0.002;
        let n = 500;
        let h_star = optimal_bin_width(n, r);
        let best = amise_histogram(h_star, n, r);
        for &f in &[0.4, 0.7, 1.5, 3.0] {
            assert!(amise_histogram(h_star * f, n, r) > best);
        }
    }

    #[test]
    fn histogram_convergence_rate_is_n_to_minus_two_thirds() {
        let r = 0.01;
        let a = amise_histogram(optimal_bin_width(1_000, r), 1_000, r);
        let b = amise_histogram(optimal_bin_width(8_000, r), 8_000, r);
        // n grows 8x => AMISE shrinks 8^(2/3) = 4x.
        let ratio = a / b;
        assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn normal_scale_bins_track_formula() {
        let d = Domain::new(0.0, 1000.0);
        let xs = normal_sample(2_000, 100.0);
        let k = NormalScaleBins.bins(&xs, &d);
        // h ~ 3.49 * 100 * 2000^(-1/3) ~ 27.7 -> ~37 bins.
        assert!((30..=45).contains(&k), "k = {k}");
    }

    #[test]
    fn plug_in_matches_normal_scale_on_normal_data() {
        let d = Domain::new(0.0, 1000.0);
        let xs = normal_sample(1_000, 100.0);
        let ns = NormalScaleBins.bins(&xs, &d);
        let dpi = PlugInBins::two_stage().bins(&xs, &d);
        let ratio = dpi as f64 / ns as f64;
        assert!((0.7..=1.4).contains(&ratio), "ns {ns} vs dpi {dpi}");
    }

    #[test]
    fn plug_in_wants_more_bins_for_rough_densities() {
        let d = Domain::new(0.0, 1000.0);
        let half = normal_sample(500, 20.0);
        let mut bimodal: Vec<f64> = half.iter().map(|x| x - 300.0).collect();
        bimodal.extend(half.iter().map(|x| x + 300.0));
        let ns = NormalScaleBins.bins(&bimodal, &d);
        let dpi = PlugInBins::two_stage().bins(&bimodal, &d);
        assert!(dpi > ns, "rough density: dpi {dpi} should exceed ns {ns}");
    }

    #[test]
    fn sturges_is_logarithmic() {
        let d = Domain::unit();
        let xs: Vec<f64> = (0..1024).map(|i| i as f64 / 1024.0).collect();
        assert_eq!(SturgesBins.bins(&xs, &d), 11);
    }

    #[test]
    fn freedman_diaconis_on_uniform_data() {
        let d = Domain::new(0.0, 1000.0);
        let xs: Vec<f64> = (0..1_000).map(|i| i as f64).collect();
        // IQR ~ 500, h = 2 * 500 / 10 = 100 -> 10 bins.
        let k = FreedmanDiaconisBins.bins(&xs, &d);
        assert!((9..=11).contains(&k), "k = {k}");
    }

    #[test]
    fn bins_scale_with_sample_size() {
        // More samples -> narrower optimal bins -> more of them (n^{1/3}).
        let d = Domain::new(0.0, 1000.0);
        let small = NormalScaleBins.bins(&normal_sample(200, 100.0), &d);
        let large = NormalScaleBins.bins(&normal_sample(12_800, 100.0), &d);
        let ratio = large as f64 / small as f64;
        assert!(
            (2.8..=5.6).contains(&ratio),
            "64x samples: ratio {ratio} (expected ~4)"
        );
    }

    #[test]
    fn fixed_bins_pass_through() {
        assert_eq!(FixedBins(17).bins(&[1.0], &Domain::unit()), 17);
        assert_eq!(FixedBins(17).name(), "k=17");
    }

    #[test]
    fn prepared_rules_match_slice_rules_exactly() {
        let d = Domain::new(0.0, 1000.0);
        // Unsorted sample so the prepared path genuinely exercises the
        // shared sorted slice.
        let mut xs = normal_sample(1_000, 100.0);
        let n = xs.len();
        for i in 0..n {
            xs.swap(i, (i * 7919) % n);
        }
        let col = PreparedColumn::prepare(&xs, d);
        let rules: Vec<Box<dyn BinRule>> = vec![
            Box::new(NormalScaleBins),
            Box::new(PlugInBins::two_stage()),
            Box::new(SturgesBins),
            Box::new(FreedmanDiaconisBins),
            Box::new(FixedBins(13)),
        ];
        for rule in &rules {
            assert_eq!(
                rule.bins(&xs, &d),
                rule.bins_prepared(&col),
                "{} diverged between slice and prepared paths",
                rule.name()
            );
        }
    }
}
