//! The average shifted histogram (Section 3.1, after Scott).
//!
//! An ASH is "a sequence of equi-width histograms with the same number of
//! bins and different starting points"; the estimate is the average over
//! the shifts. It smooths away most of the origin dependence and softens —
//! but does not remove — the jump discontinuities of a single histogram.
//! With `m` shifts of a width-`h` grid, the ASH is equivalent to a
//! histogram on the `m`-times finer grid whose bin counts are triangularly
//! weighted, which is how we evaluate it (one pass, no `m` separate
//! histograms at query time).

use selest_core::{DensityEstimator, Domain, RangeQuery, SelectivityEstimator};

/// Average shifted histogram over `k` base bins and `m` shifts.
#[derive(Debug, Clone)]
pub struct AverageShiftedHistogram {
    /// Fine-grid bin width `delta = h / m`.
    delta: f64,
    /// Weighted fine-grid "counts" (already averaged over shifts);
    /// sums to `n`.
    weights: Vec<f64>,
    n_samples: usize,
    domain: Domain,
    shifts: usize,
}

impl AverageShiftedHistogram {
    /// Build an ASH with `k` base bins (width `domain.width()/k`) and `m`
    /// shifts. The paper's Figure 12 uses ten shifts.
    pub fn new(samples: &[f64], domain: Domain, k: usize, m: usize) -> Self {
        assert!(k >= 1, "ASH needs at least one base bin");
        assert!(m >= 1, "ASH needs at least one shift");
        assert!(!samples.is_empty(), "ASH needs samples");
        let h = domain.width() / k as f64;
        let delta = h / m as f64;
        let n_fine = k * m;
        // Raw fine-grid counts.
        let mut fine = vec![0.0f64; n_fine];
        for &x in samples {
            assert!(domain.contains(x), "sample {x} outside domain {domain}");
            let mut idx = ((x - domain.lo()) / delta) as usize;
            if idx >= n_fine {
                idx = n_fine - 1;
            }
            fine[idx] += 1.0;
        }
        // ASH weights: the average over m shifted width-h histograms gives
        // fine-bin j the triangularly weighted sum of its neighbors:
        // w_j = sum_{|i| < m} (1 - |i|/m) * fine[j + i] / m ... wait: the
        // density at fine bin j is sum over i of (m - |i|) * fine[j+i]
        // divided by (n * h * m) — we store the numerator scaled so that
        // weights sum to n when integrated: weight[j] such that density =
        // weight[j] / (n * delta). Shifted grids reaching past the domain
        // are truncated at the boundary (their outer bins are clipped),
        // which reflects building each shifted histogram on the domain
        // intersection.
        let mut weights = vec![0.0f64; n_fine];
        let mi = m as isize;
        for j in 0..n_fine as isize {
            let mut acc = 0.0;
            for i in (1 - mi)..mi {
                let jj = j + i;
                if jj < 0 || jj >= n_fine as isize {
                    continue;
                }
                let w = (mi - i.abs()) as f64 / mi as f64;
                acc += w * fine[jj as usize];
            }
            weights[j as usize] = acc / mi as f64; // density numerator per delta
        }
        // Normalize: sum(weights) * delta must integrate the density to 1,
        // i.e. sum(weights) == n. Truncation at the edges loses a little
        // mass; renormalize so selectivities stay calibrated.
        let total: f64 = weights.iter().sum();
        let n = samples.len() as f64;
        if total > 0.0 {
            let scale = n / total;
            for w in &mut weights {
                *w *= scale;
            }
        }
        AverageShiftedHistogram {
            delta,
            weights,
            n_samples: samples.len(),
            domain,
            shifts: m,
        }
    }

    /// [`AverageShiftedHistogram::new`] over a prepared column. ASH
    /// construction accumulates exact integer fine-grid counts, so input
    /// order is immaterial; the prepared path consumes the column's
    /// original-order sample, bit-identically to the slice constructor.
    pub fn from_prepared(col: &selest_core::PreparedColumn, k: usize, m: usize) -> Self {
        AverageShiftedHistogram::new(col.values(), col.domain(), k, m)
    }

    /// Number of shifts `m`.
    pub fn shifts(&self) -> usize {
        self.shifts
    }

    /// Number of fine-grid cells (`k * m`).
    pub fn fine_bins(&self) -> usize {
        self.weights.len()
    }
}

impl SelectivityEstimator for AverageShiftedHistogram {
    fn selectivity(&self, q: &RangeQuery) -> f64 {
        let a = q.a().max(self.domain.lo());
        let b = q.b().min(self.domain.hi());
        if b < a {
            return 0.0;
        }
        let n_fine = self.weights.len();
        let lo = self.domain.lo();
        let first = (((a - lo) / self.delta) as usize).min(n_fine - 1);
        let last = (((b - lo) / self.delta) as usize).min(n_fine - 1);
        let mut s = 0.0;
        for (j, &w) in self.weights[first..=last].iter().enumerate() {
            let j = first + j;
            let cell_lo = lo + j as f64 * self.delta;
            let cell_hi = cell_lo + self.delta;
            let overlap = (b.min(cell_hi) - a.max(cell_lo)).max(0.0);
            s += w * overlap / self.delta;
        }
        s / self.n_samples as f64
    }

    fn domain(&self) -> Domain {
        self.domain
    }

    fn name(&self) -> String {
        "ASH".into()
    }
}

impl DensityEstimator for AverageShiftedHistogram {
    fn density(&self, x: f64) -> f64 {
        if !self.domain.contains(x) {
            return 0.0;
        }
        let n_fine = self.weights.len();
        let mut idx = ((x - self.domain.lo()) / self.delta) as usize;
        if idx >= n_fine {
            idx = n_fine - 1;
        }
        self.weights[idx] / (self.n_samples as f64 * self.delta)
    }

    fn domain(&self) -> Domain {
        self.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equi_width::equi_width;

    fn uniform_samples(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 100.0 * (i as f64 + 0.5) / n as f64)
            .collect()
    }

    #[test]
    fn one_shift_equals_plain_equi_width() {
        let d = Domain::new(0.0, 100.0);
        let samples: Vec<f64> = vec![3.0, 17.0, 44.0, 44.5, 80.0, 99.0];
        let ash = AverageShiftedHistogram::new(&samples, d, 8, 1);
        let ewh = equi_width(&samples, d, 8);
        for (a, b) in [(0.0, 100.0), (10.0, 30.0), (43.0, 46.0), (90.0, 100.0)] {
            let q = RangeQuery::new(a, b);
            assert!(
                (ash.selectivity(&q) - ewh.selectivity(&q)).abs() < 1e-12,
                "[{a},{b}]: ash {} vs ewh {}",
                ash.selectivity(&q),
                ewh.selectivity(&q)
            );
        }
    }

    #[test]
    fn whole_domain_mass_is_one() {
        let d = Domain::new(0.0, 100.0);
        let ash = AverageShiftedHistogram::new(&uniform_samples(500), d, 10, 10);
        let s = ash.selectivity(&RangeQuery::new(0.0, 100.0));
        assert!((s - 1.0).abs() < 1e-12, "got {s}");
    }

    #[test]
    fn shifting_smooths_the_density() {
        // A cluster straddling a bin boundary: the plain histogram jumps,
        // the ASH transitions gradually. Measure the maximum jump between
        // adjacent evaluation points.
        let d = Domain::new(0.0, 100.0);
        let samples: Vec<f64> = (0..200).map(|i| 48.0 + 4.0 * (i as f64 / 200.0)).collect();
        let ewh = equi_width(&samples, d, 10);
        let ash = AverageShiftedHistogram::new(&samples, d, 10, 10);
        let max_jump = |f: &dyn Fn(f64) -> f64| {
            let mut m: f64 = 0.0;
            for i in 0..1000 {
                let x = 100.0 * i as f64 / 1000.0;
                let x2 = x + 0.1;
                m = m.max((f(x2) - f(x)).abs());
            }
            m
        };
        let ewh_jump = max_jump(&|x| selest_core::DensityEstimator::density(&ewh, x));
        let ash_jump = max_jump(&|x| ash.density(x));
        assert!(
            ash_jump < 0.5 * ewh_jump,
            "ASH jump {ash_jump} not smaller than EWH jump {ewh_jump}"
        );
    }

    #[test]
    fn ash_tracks_uniform_truth() {
        let d = Domain::new(0.0, 100.0);
        let ash = AverageShiftedHistogram::new(&uniform_samples(1_000), d, 20, 10);
        for (a, b, truth) in [(10.0, 20.0, 0.1), (35.0, 85.0, 0.5), (0.0, 1.0, 0.01)] {
            let s = ash.selectivity(&RangeQuery::new(a, b));
            assert!((s - truth).abs() < 0.01, "[{a},{b}]: {s} vs {truth}");
        }
    }

    #[test]
    fn density_integrates_to_one() {
        let d = Domain::new(0.0, 100.0);
        let samples: Vec<f64> = (0..300).map(|i| i as f64 * 37.0 % 100.0).collect();
        let ash = AverageShiftedHistogram::new(&samples, d, 16, 8);
        let mass = selest_math::simpson(|x| ash.density(x), 0.0, 100.0, 20_000);
        assert!((mass - 1.0).abs() < 5e-3, "mass {mass}");
    }
}
