//! Histogram selectivity estimation (Sections 3.1 and 4.1 of Blohsfeld,
//! Korus & Seeger, SIGMOD 1999).
//!
//! All histograms share the estimator of equation (4) over explicit bin
//! boundaries ([`BinnedHistogram`]); the policies differ only in where the
//! boundaries come from:
//!
//! * [`equi_width`](fn@equi_width) — equal bin widths (the paper's overall winner among
//!   histograms on large metric domains);
//! * [`equi_depth`](fn@equi_depth) — sample-quantile boundaries;
//! * [`max_diff`](fn@max_diff) — boundaries in the `k-1` largest sample gaps;
//! * [`v_optimal`](fn@v_optimal) — variance-minimizing DP partition (extension baseline);
//! * [`AverageShiftedHistogram`] — the origin-averaged smoother of
//!   Section 3.1.
//!
//! [`binrules`] implements the bin-count selection of Sections 4.1/4.3:
//! normal scale rule, direct plug-in, and classical reference rules.

pub mod ash;
pub mod binrules;
pub mod bins;
pub mod equi_depth;
pub mod equi_width;
pub mod max_diff;
pub mod v_optimal;
pub mod wavelet;

pub use ash::AverageShiftedHistogram;
pub use binrules::{
    amise_histogram, normal_scale_bin_constant, optimal_bin_width, width_to_bins, BinRule,
    FixedBins, FreedmanDiaconisBins, NormalScaleBins, PlugInBins, SturgesBins,
};
pub use bins::BinnedHistogram;
pub use equi_depth::{equi_depth, equi_depth_from_boundaries, equi_depth_prepared};
pub use equi_width::{equi_width, equi_width_prepared};
pub use max_diff::{max_diff, max_diff_prepared};
pub use v_optimal::{v_optimal, v_optimal_prepared};
pub use wavelet::WaveletHistogram;
