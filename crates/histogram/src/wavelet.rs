//! Wavelet-based histogram (extension; the paper's reference \[4\]:
//! Matias, Vitter & Wang, *Wavelet-Based Histograms for Selectivity
//! Estimation*, SIGMOD 1998).
//!
//! The sample's frequencies over a fine grid of `2^m` cells are Haar-
//! decomposed; only the `budget` most significant coefficients (by their
//! L2 contribution) are retained. Selectivity queries are answered
//! directly from the sparse coefficient set: the prefix sum of the
//! reconstructed frequency vector is an `O(budget)` sum of Haar basis
//! integrals, so no reconstruction of the full vector ever happens.

use selest_core::{DensityEstimator, Domain, RangeQuery, SelectivityEstimator};

/// One retained Haar detail coefficient.
#[derive(Debug, Clone, Copy)]
struct Detail {
    /// Level: 0 is the finest (support of 2 cells), `m-1` the coarsest.
    level: u8,
    /// Block index within the level.
    index: u32,
    /// The (unnormalized) detail value `(left_avg - right_avg) / 2`.
    value: f64,
}

/// A compressed wavelet histogram over `2^m` fine cells.
///
/// # Examples
///
/// ```
/// use selest_core::{Domain, RangeQuery, SelectivityEstimator};
/// use selest_histogram::WaveletHistogram;
///
/// let sample: Vec<f64> = (0..1000).map(|i| (i as f64 * 7.31) % 100.0).collect();
/// // 256 fine cells compressed to 24 Haar coefficients.
/// let w = WaveletHistogram::build(&sample, Domain::new(0.0, 100.0), 8, 24);
/// assert!(w.coefficients() <= 24);
/// let sel = w.selectivity(&RangeQuery::new(0.0, 50.0));
/// assert!((sel - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct WaveletHistogram {
    domain: Domain,
    /// log2 of the fine-grid cell count.
    m: u32,
    /// Root average of the frequency vector (count per cell).
    root_avg: f64,
    /// Retained detail coefficients, largest contribution first.
    details: Vec<Detail>,
    n_samples: usize,
}

impl WaveletHistogram {
    /// Build from a sample: `grid_log2` fine cells (`2^grid_log2`),
    /// keeping the `budget` most significant detail coefficients.
    ///
    /// A budget of `2^grid_log2 - 1` retains everything and reproduces the
    /// fine equi-width histogram exactly.
    pub fn build(samples: &[f64], domain: Domain, grid_log2: u32, budget: usize) -> Self {
        assert!(!samples.is_empty(), "WaveletHistogram needs samples");
        assert!(
            (1..=24).contains(&grid_log2),
            "grid_log2 out of 1..=24: {grid_log2}"
        );
        let n_cells = 1usize << grid_log2;
        // Fine-grid frequency vector.
        let mut freq = vec![0.0f64; n_cells];
        let width = domain.width() / n_cells as f64;
        for &x in samples {
            assert!(domain.contains(x), "sample {x} outside domain {domain}");
            let mut idx = ((x - domain.lo()) / width) as usize;
            if idx >= n_cells {
                idx = n_cells - 1;
            }
            freq[idx] += 1.0;
        }
        // Haar decomposition, level by level.
        let mut details: Vec<Detail> = Vec::with_capacity(n_cells - 1);
        let mut current = freq;
        let mut level = 0u8;
        while current.len() > 1 {
            let half = current.len() / 2;
            let mut averages = Vec::with_capacity(half);
            for i in 0..half {
                let a = 0.5 * (current[2 * i] + current[2 * i + 1]);
                let d = 0.5 * (current[2 * i] - current[2 * i + 1]);
                averages.push(a);
                if d != 0.0 {
                    details.push(Detail {
                        level,
                        index: i as u32,
                        value: d,
                    });
                }
            }
            current = averages;
            level += 1;
        }
        let root_avg = current[0];
        // Threshold: keep the `budget` coefficients with the largest L2
        // contribution |d| * sqrt(support cells).
        details.sort_by(|a, b| {
            let wa = a.value.abs() * ((1u64 << (a.level + 1)) as f64).sqrt();
            let wb = b.value.abs() * ((1u64 << (b.level + 1)) as f64).sqrt();
            wb.partial_cmp(&wa).expect("finite coefficients")
        });
        details.truncate(budget);
        WaveletHistogram {
            domain,
            m: grid_log2,
            root_avg,
            details,
            n_samples: samples.len(),
        }
    }

    /// [`WaveletHistogram::build`] over a prepared column. The Haar
    /// decomposition starts from exact integer fine-grid counts, so input
    /// order is immaterial; the prepared path consumes the column's
    /// original-order sample, bit-identically to the slice constructor.
    pub fn from_prepared(col: &selest_core::PreparedColumn, grid_log2: u32, budget: usize) -> Self {
        WaveletHistogram::build(col.values(), col.domain(), grid_log2, budget)
    }

    /// Number of retained detail coefficients.
    pub fn coefficients(&self) -> usize {
        self.details.len()
    }

    /// Number of fine-grid cells.
    pub fn n_cells(&self) -> usize {
        1usize << self.m
    }

    /// Approximate prefix sum of the frequency vector over cells `[0, c)`,
    /// with fractional `c`. `O(budget)`.
    fn prefix(&self, c: f64) -> f64 {
        let n = self.n_cells() as f64;
        let c = c.clamp(0.0, n);
        let mut sum = self.root_avg * c;
        for d in &self.details {
            // The detail at (level, index) adds +value on the first half of
            // its support and -value on the second half.
            let support = (1u64 << (d.level + 1)) as f64;
            let start = d.index as f64 * support;
            let mid = start + 0.5 * support;
            let end = start + support;
            // Integral of the step over [0, c).
            let pos = (c.min(mid) - start).max(0.0);
            let neg = (c.min(end) - mid).max(0.0);
            sum += d.value * (pos - neg);
        }
        sum
    }
}

impl SelectivityEstimator for WaveletHistogram {
    fn selectivity(&self, q: &RangeQuery) -> f64 {
        let a = q.a().max(self.domain.lo());
        let b = q.b().min(self.domain.hi());
        if b < a {
            return 0.0;
        }
        let cells = self.n_cells() as f64;
        let to_cell = |x: f64| (x - self.domain.lo()) / self.domain.width() * cells;
        let est = (self.prefix(to_cell(b)) - self.prefix(to_cell(a))) / self.n_samples as f64;
        est.clamp(0.0, 1.0)
    }

    fn domain(&self) -> Domain {
        self.domain
    }

    fn name(&self) -> String {
        format!("Wavelet(b={})", self.details.len())
    }
}

impl DensityEstimator for WaveletHistogram {
    fn density(&self, x: f64) -> f64 {
        if !self.domain.contains(x) {
            return 0.0;
        }
        // Reconstruct one cell value through the retained coefficients.
        let cells = self.n_cells();
        let mut idx = ((x - self.domain.lo()) / self.domain.width() * cells as f64) as usize;
        if idx >= cells {
            idx = cells - 1;
        }
        let mut v = self.root_avg;
        for d in &self.details {
            let support = 1usize << (d.level + 1);
            let start = d.index as usize * support;
            if idx >= start && idx < start + support {
                if idx < start + support / 2 {
                    v += d.value;
                } else {
                    v -= d.value;
                }
            }
        }
        let cell_width = self.domain.width() / cells as f64;
        (v / (self.n_samples as f64 * cell_width)).max(0.0)
    }

    fn domain(&self) -> Domain {
        self.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equi_width::equi_width;

    fn skewed_sample() -> Vec<f64> {
        // 80% of mass in [0, 100), the rest spread over [100, 1000).
        let mut v: Vec<f64> = (0..800).map(|i| 100.0 * (i as f64 + 0.5) / 800.0).collect();
        v.extend((0..200).map(|i| 100.0 + 900.0 * (i as f64 + 0.5) / 200.0));
        v
    }

    #[test]
    fn full_budget_reproduces_the_fine_histogram() {
        let d = Domain::new(0.0, 1_000.0);
        let s = skewed_sample();
        let w = WaveletHistogram::build(&s, d, 6, 63); // all 63 details
        let fine = equi_width(&s, d, 64);
        for (a, b) in [(0.0, 1_000.0), (50.0, 450.0), (0.0, 62.5), (900.0, 1_000.0)] {
            let q = RangeQuery::new(a, b);
            assert!(
                (w.selectivity(&q) - fine.selectivity(&q)).abs() < 1e-9,
                "[{a},{b}]: wavelet {} vs fine EWH {}",
                w.selectivity(&q),
                fine.selectivity(&q)
            );
        }
    }

    #[test]
    fn whole_domain_mass_is_one_at_any_budget() {
        let d = Domain::new(0.0, 1_000.0);
        let s = skewed_sample();
        for budget in [0usize, 4, 16, 63] {
            let w = WaveletHistogram::build(&s, d, 6, budget);
            let q = RangeQuery::new(0.0, 1_000.0);
            assert!(
                (w.selectivity(&q) - 1.0).abs() < 1e-9,
                "budget {budget}: mass {}",
                w.selectivity(&q)
            );
        }
    }

    #[test]
    fn zero_budget_degenerates_to_uniform() {
        let d = Domain::new(0.0, 1_000.0);
        let w = WaveletHistogram::build(&skewed_sample(), d, 6, 0);
        let q = RangeQuery::new(250.0, 500.0);
        assert!((w.selectivity(&q) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn small_budget_captures_the_skew() {
        // With just a handful of coefficients the dense region must emerge.
        let d = Domain::new(0.0, 1_000.0);
        let s = skewed_sample();
        let w = WaveletHistogram::build(&s, d, 8, 12);
        assert_eq!(w.coefficients(), 12);
        let dense = w.selectivity(&RangeQuery::new(0.0, 100.0));
        assert!(
            (dense - 0.8).abs() < 0.08,
            "dense-region mass {dense}, truth 0.8"
        );
    }

    #[test]
    fn accuracy_improves_with_budget() {
        let d = Domain::new(0.0, 1_000.0);
        let s = skewed_sample();
        let truth =
            |a: f64, b: f64| s.iter().filter(|&&v| v >= a && v <= b).count() as f64 / 1_000.0;
        let err = |budget: usize| {
            let w = WaveletHistogram::build(&s, d, 8, budget);
            let mut total = 0.0;
            for i in 0..20 {
                let a = 50.0 * i as f64;
                let b = a + 50.0;
                total += (w.selectivity(&RangeQuery::new(a, b)) - truth(a, b)).abs();
            }
            total
        };
        let coarse = err(4);
        let fine = err(64);
        assert!(
            fine < coarse,
            "budget 64 ({fine}) should beat budget 4 ({coarse})"
        );
    }

    #[test]
    fn density_matches_selectivity_by_quadrature() {
        let d = Domain::new(0.0, 1_000.0);
        let s = skewed_sample();
        let w = WaveletHistogram::build(&s, d, 6, 63);
        for (a, b) in [(100.0, 300.0), (0.0, 93.75)] {
            let q = RangeQuery::new(a, b);
            let num = selest_math::simpson(|x| w.density(x), a, b, 20_000);
            assert!(
                (w.selectivity(&q) - num).abs() < 2e-3,
                "[{a},{b}]: {} vs {num}",
                w.selectivity(&q)
            );
        }
    }

    #[test]
    fn coefficients_never_exceed_budget() {
        let d = Domain::new(0.0, 1_000.0);
        let w = WaveletHistogram::build(&skewed_sample(), d, 10, 50);
        assert!(w.coefficients() <= 50);
        assert_eq!(w.n_cells(), 1024);
    }
}
