//! Shared binned-histogram representation and the selectivity estimator of
//! equation (4) of the paper.
//!
//! Every histogram policy (equi-width, equi-depth, max-diff, v-optimal)
//! reduces to the same data: boundaries `c_0 < ... <= c_k` partitioning the
//! domain and per-bin counts `n_i`, estimated under the uniform-within-bin
//! assumption:
//!
//! ```text
//! sigma_hat(a, b) = 1/n * sum_i n_i / h_i * psi_i(a, b),
//! psi_i(a, b) = |[a, b] ∩ [c_i, c_{i+1}]|.
//! ```
//!
//! Equi-depth histograms over duplicated data can produce *zero-width* bins
//! (repeated quantile boundaries); these are treated as point masses: the
//! bin contributes its full count whenever the query covers the point.

use selest_core::{DensityEstimator, Domain, RangeQuery, SelectivityEstimator};
use selest_simd::GridIndex;

/// A histogram over explicit bin boundaries with per-bin counts.
///
/// The serving layout is flat and read-only, a struct-of-arrays tuned for
/// the constant-time CDF-difference estimate: alongside the boundary and
/// count arrays, construction precomputes the counts as `f64`, the
/// reciprocal bin widths (partial-bin interpolation becomes two multiplies
/// instead of a division), exact `f64` prefix counts (the mass of every
/// fully-covered bin comes from one subtraction), and a dense
/// [`GridIndex`] over the boundaries (each endpoint's bin comes from an
/// O(1) cell hop plus a one-or-two step branchless search instead of a
/// full binary search).
#[derive(Debug, Clone)]
pub struct BinnedHistogram {
    /// `k + 1` non-decreasing boundaries; first and last coincide with the
    /// domain bounds.
    boundaries: Vec<f64>,
    /// `k` per-bin sample counts.
    counts: Vec<u32>,
    /// `k` per-bin counts as `f64` (exact: sample sizes are far below
    /// 2^53), so the hot walk never converts.
    count_f: Vec<f64>,
    /// `k` reciprocal bin widths, `0.0` for zero-width (point mass) bins.
    inv_width: Vec<f64>,
    /// `k + 1` prefix counts as `f64` (exact: sample sizes are far below
    /// 2^53): `cum[i]` = samples in bins `[0, i)`.
    cum: Vec<f64>,
    /// Interpolation grid over `boundaries` for the bracketing lookups.
    grid: GridIndex,
    /// `1 / n`, applied once per query.
    inv_n: f64,
    n_samples: usize,
    domain: Domain,
    label: &'static str,
}

impl BinnedHistogram {
    /// Assemble a histogram from boundaries and counts.
    ///
    /// Panics unless the boundaries are non-decreasing, span exactly the
    /// domain, there is one more boundary than counts, and the counts sum
    /// to a positive total.
    pub fn new(
        boundaries: Vec<f64>,
        counts: Vec<u32>,
        domain: Domain,
        label: &'static str,
    ) -> Self {
        assert!(boundaries.len() >= 2, "need at least one bin");
        assert_eq!(
            boundaries.len(),
            counts.len() + 1,
            "boundaries/counts mismatch"
        );
        assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "boundaries must be non-decreasing"
        );
        assert_eq!(
            boundaries[0],
            domain.lo(),
            "first boundary must be the domain lo"
        );
        assert_eq!(
            *boundaries.last().expect("nonempty"),
            domain.hi(),
            "last boundary must be the domain hi"
        );
        let n_samples: usize = counts.iter().map(|&c| c as usize).sum();
        assert!(n_samples > 0, "histogram of an empty sample");
        let mut cum = Vec::with_capacity(counts.len() + 1);
        cum.push(0.0f64);
        let mut acc = 0u64;
        for &c in &counts {
            acc += u64::from(c);
            cum.push(acc as f64);
        }
        // ~4 cells per boundary: lookup windows are almost always empty or
        // a single element, so the in-window search is one or two cmov
        // steps instead of a log(k) binary search. At a u32 per cell this
        // costs ~16 bytes per bin — noise next to the boundary array.
        let grid = GridIndex::build(&boundaries, boundaries.len() * 4);
        let count_f: Vec<f64> = counts.iter().map(|&c| f64::from(c)).collect();
        let inv_width: Vec<f64> = boundaries
            .windows(2)
            .map(|w| {
                if w[1] > w[0] {
                    1.0 / (w[1] - w[0])
                } else {
                    0.0
                }
            })
            .collect();
        BinnedHistogram {
            boundaries,
            counts,
            count_f,
            inv_width,
            cum,
            grid,
            inv_n: 1.0 / n_samples as f64,
            n_samples,
            domain,
            label,
        }
    }

    /// Number of bins `k`.
    pub fn n_bins(&self) -> usize {
        self.counts.len()
    }

    /// Number of samples `n`.
    pub fn sample_size(&self) -> usize {
        self.n_samples
    }

    /// Bin boundaries (`k + 1` values).
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Per-bin counts (`k` values).
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Histogram policy label (`"EWH"`, `"EDH"`, ...).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// `F(x)` for the lower query endpoint: samples strictly left of `x`'s
    /// bin plus the interpolated share of that bin. Point masses sitting
    /// exactly at `x` are excluded (`partition_lt`), so a query `[x, b]`
    /// counts them — the inclusive-range semantics of the per-bin walk
    /// this replaces.
    #[inline(always)]
    fn cdf_lo(&self, x: f64) -> f64 {
        let j = self
            .grid
            .partition_lt(&self.boundaries, x)
            .saturating_sub(1);
        self.cum[j] + self.count_f[j] * (x - self.boundaries[j]) * self.inv_width[j]
    }

    /// `F⁺(x)` for the upper query endpoint: like [`Self::cdf_lo`] but
    /// point masses exactly at `x` are *included* (`partition_le` steps
    /// past every boundary equal to `x`, and a zero-width bin's
    /// interpolation term vanishes because its reciprocal width is stored
    /// as zero).
    #[inline(always)]
    fn cdf_hi(&self, x: f64) -> f64 {
        let j = self
            .grid
            .partition_le(&self.boundaries, x)
            .saturating_sub(1);
        if j >= self.counts.len() {
            // x reached the last boundary: the full count, exactly.
            return self.cum[self.counts.len()];
        }
        self.cum[j] + self.count_f[j] * (x - self.boundaries[j]) * self.inv_width[j]
    }

    /// The selectivity estimator of equation (4), served as a constant-time
    /// CDF difference: `mass(a, b) = (F⁺(b) − F(a)) / n` where `F` is the
    /// piecewise-linear empirical CDF precomputed into prefix counts. The
    /// two endpoint lookups are independent (no loop-carried dependence,
    /// so they overlap in the pipeline) and each is an O(1) grid hop plus
    /// a one-or-two step branchless search. Rounding makes the difference
    /// exact only to a few ulps of the *total* count, so a sliver query
    /// can come out a hair negative — clamped to zero.
    fn mass(&self, a: f64, b: f64) -> f64 {
        debug_assert!(a <= b);
        ((self.cdf_hi(b) - self.cdf_lo(a)) * self.inv_n).max(0.0)
    }
}

impl SelectivityEstimator for BinnedHistogram {
    fn selectivity(&self, q: &RangeQuery) -> f64 {
        let a = q.a().max(self.domain.lo());
        let b = q.b().min(self.domain.hi());
        if b < a {
            return 0.0;
        }
        self.mass(a, b)
    }

    fn domain(&self) -> Domain {
        self.domain
    }

    fn name(&self) -> String {
        self.label.to_owned()
    }
}

impl DensityEstimator for BinnedHistogram {
    /// The histogram density estimator `f_H`. Returns `f64::INFINITY`
    /// inside a zero-width (point mass) bin.
    fn density(&self, x: f64) -> f64 {
        if !self.domain.contains(x) {
            return 0.0;
        }
        let k = self.counts.len();
        // Locate x's bin: the bin (c_i, c_{i+1}] with c_i < x <= c_{i+1};
        // x == lo falls into the first bin. Same bracketing lookup as
        // `mass`: first boundary >= x, then back up one bin.
        let mut i = self
            .grid
            .partition_lt(&self.boundaries, x)
            .saturating_sub(1);
        // Skip exhausted zero-width bins that sit exactly at x but whose
        // point mass x only touches (density of a point mass is infinite
        // only when the bin count is positive).
        while i < k && self.boundaries[i + 1] == self.boundaries[i] && self.counts[i] == 0 {
            i += 1;
        }
        if i >= k {
            return 0.0;
        }
        let (lo, hi) = (self.boundaries[i], self.boundaries[i + 1]);
        let count = self.counts[i] as f64;
        if hi > lo {
            count / (self.n_samples as f64 * (hi - lo))
        } else if count > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn domain(&self) -> Domain {
        self.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> BinnedHistogram {
        // Domain [0, 10], bins [0,2](4), (2,5](6), (5,10](10); n = 20.
        BinnedHistogram::new(
            vec![0.0, 2.0, 5.0, 10.0],
            vec![4, 6, 10],
            Domain::new(0.0, 10.0),
            "test",
        )
    }

    #[test]
    fn whole_domain_is_one() {
        let h = hist();
        assert!((h.selectivity(&RangeQuery::new(0.0, 10.0)) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn partial_bins_interpolate_uniformly() {
        let h = hist();
        // [1, 2]: half of bin 0 -> 2/20.
        assert!((h.selectivity(&RangeQuery::new(1.0, 2.0)) - 0.1).abs() < 1e-15);
        // [2, 3.5]: half of bin 1 -> 3/20.
        assert!((h.selectivity(&RangeQuery::new(2.0, 3.5)) - 0.15).abs() < 1e-15);
        // [1, 6]: 2 + 6 + 2 = 10 of 20.
        assert!((h.selectivity(&RangeQuery::new(1.0, 6.0)) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn outside_and_clipped_queries() {
        let h = hist();
        assert_eq!(h.selectivity(&RangeQuery::new(-5.0, -1.0)), 0.0);
        assert_eq!(h.selectivity(&RangeQuery::new(11.0, 12.0)), 0.0);
        let clipped = h.selectivity(&RangeQuery::new(-5.0, 15.0));
        assert!((clipped - 1.0).abs() < 1e-15);
    }

    #[test]
    fn zero_width_bin_is_a_point_mass() {
        // Bin boundaries 0,3,3,10: point mass of 5 at x=3 plus 15 spread.
        let h = BinnedHistogram::new(
            vec![0.0, 3.0, 3.0, 10.0],
            vec![5, 5, 10],
            Domain::new(0.0, 10.0),
            "pm",
        );
        // Query covering only the point: gets the point mass plus slivers.
        let just_point = h.selectivity(&RangeQuery::new(3.0, 3.0));
        assert!((just_point - 0.25).abs() < 1e-15, "got {just_point}");
        // Query missing the point by epsilon on the left.
        let miss = h.selectivity(&RangeQuery::new(3.0001, 4.0));
        assert!(miss < 0.08, "got {miss}");
        // Everything still sums to one.
        assert!((h.selectivity(&RangeQuery::new(0.0, 10.0)) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn density_is_count_over_nh() {
        let h = hist();
        assert!((h.density(1.0) - 4.0 / (20.0 * 2.0)).abs() < 1e-15);
        assert!((h.density(3.0) - 6.0 / (20.0 * 3.0)).abs() < 1e-15);
        assert!((h.density(9.9) - 10.0 / (20.0 * 5.0)).abs() < 1e-15);
        assert_eq!(h.density(-1.0), 0.0);
        assert_eq!(h.density(10.5), 0.0);
    }

    #[test]
    fn density_integrates_to_one() {
        let h = hist();
        let mass = selest_math::simpson(|x| h.density(x), 0.0, 10.0, 10_000);
        assert!((mass - 1.0).abs() < 1e-3, "mass {mass}");
    }

    #[test]
    fn selectivity_is_additive() {
        let h = hist();
        let whole = h.selectivity(&RangeQuery::new(0.5, 8.5));
        let parts =
            h.selectivity(&RangeQuery::new(0.5, 4.0)) + h.selectivity(&RangeQuery::new(4.0, 8.5));
        assert!((whole - parts).abs() < 1e-15);
    }

    /// The prefix-count fast path must agree with the original per-bin
    /// walk on irregular bins, zero-width point masses, and queries
    /// landing on, between, and across boundaries.
    #[test]
    fn fast_mass_matches_naive_walk() {
        fn naive(h: &BinnedHistogram, a: f64, b: f64) -> f64 {
            let k = h.counts.len();
            let mut i = h.boundaries[1..k].partition_point(|&c| c < a);
            let mut s = 0.0;
            while i < k {
                let (lo, hi) = (h.boundaries[i], h.boundaries[i + 1]);
                if lo > b {
                    break;
                }
                let count = h.counts[i] as f64;
                if count > 0.0 {
                    if hi > lo {
                        s += count * (b.min(hi) - a.max(lo)).max(0.0) / (hi - lo);
                    } else if a <= lo && lo <= b {
                        s += count;
                    }
                }
                i += 1;
            }
            s / h.n_samples as f64
        }
        // Irregular widths, an interior point-mass run, empty bins.
        let mut boundaries = vec![0.0];
        for i in 0..60 {
            let w = match i % 5 {
                0 => 0.25,
                1 => 3.0,
                2 => 0.0, // zero-width bin
                3 => 1.5,
                _ => 0.05,
            };
            boundaries.push(boundaries.last().unwrap() + w);
        }
        let hi = *boundaries.last().unwrap();
        let counts: Vec<u32> = (0..60).map(|i| ((i * 7) % 13) as u32).collect();
        let h = BinnedHistogram::new(boundaries.clone(), counts, Domain::new(0.0, hi), "stress");
        let mut probes: Vec<f64> = boundaries.clone();
        probes.extend((0..40).map(|i| (i as f64 * 1.37) % hi));
        for &a in &probes {
            for &b in &probes {
                if b < a {
                    continue;
                }
                let fast = h.mass(a, b);
                let slow = naive(&h, a, b);
                assert!(
                    (fast - slow).abs() <= 1e-14,
                    "mass({a}, {b}): fast {fast} vs walk {slow}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "boundaries must be non-decreasing")]
    fn rejects_unsorted_boundaries() {
        let _ = BinnedHistogram::new(
            vec![0.0, 5.0, 3.0, 10.0],
            vec![1, 1, 1],
            Domain::new(0.0, 10.0),
            "bad",
        );
    }

    #[test]
    #[should_panic(expected = "first boundary")]
    fn rejects_boundaries_not_spanning_domain() {
        let _ = BinnedHistogram::new(
            vec![1.0, 5.0, 10.0],
            vec![1, 1],
            Domain::new(0.0, 10.0),
            "bad",
        );
    }
}
