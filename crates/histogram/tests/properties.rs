//! Property-based tests for the histogram crate: construction invariants
//! that must hold for arbitrary samples and bin counts.

use proptest::prelude::*;
use selest_core::{Domain, RangeQuery, SelectivityEstimator};
use selest_histogram::{
    equi_depth, equi_width, max_diff, v_optimal, AverageShiftedHistogram, WaveletHistogram,
};

const LO: f64 = 0.0;
const HI: f64 = 1_024.0;

fn samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..=102_400).prop_map(|v| v as f64 / 100.0),
            Just(512.0), // heavy duplicate
        ],
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counts_always_sum_to_the_sample_size(s in samples(), k in 1usize..40) {
        let d = Domain::new(LO, HI);
        for hist in [
            equi_width(&s, d, k),
            equi_depth(&s, d, k),
            max_diff(&s, d, k),
            v_optimal(&s, d, k.min(8), 64),
        ] {
            let total: u32 = hist.counts().iter().sum();
            prop_assert_eq!(total as usize, s.len(), "{} lost samples", hist.label());
        }
    }

    #[test]
    fn boundaries_are_sorted_and_span_the_domain(s in samples(), k in 1usize..40) {
        let d = Domain::new(LO, HI);
        for hist in [equi_width(&s, d, k), equi_depth(&s, d, k), max_diff(&s, d, k)] {
            let b = hist.boundaries();
            prop_assert!(b.windows(2).all(|w| w[0] <= w[1]), "{} unsorted", hist.label());
            prop_assert_eq!(b[0], LO);
            prop_assert_eq!(*b.last().unwrap(), HI);
        }
    }

    #[test]
    fn full_domain_selectivity_is_one(s in samples(), k in 1usize..40) {
        let d = Domain::new(LO, HI);
        let q = RangeQuery::new(LO, HI);
        for est in [
            equi_width(&s, d, k),
            equi_depth(&s, d, k),
            max_diff(&s, d, k),
        ] {
            prop_assert!((est.selectivity(&q) - 1.0).abs() < 1e-9, "{}", est.label());
        }
        let ash = AverageShiftedHistogram::new(&s, d, k, 8);
        prop_assert!((ash.selectivity(&q) - 1.0).abs() < 1e-9, "ASH");
        let w = WaveletHistogram::build(&s, d, 6, 16);
        prop_assert!((w.selectivity(&q) - 1.0).abs() < 1e-9, "wavelet");
    }

    #[test]
    fn wavelet_budget_zero_is_uniform(s in samples(), a in 0.0f64..512.0, wdt in 1.0f64..512.0) {
        let d = Domain::new(LO, HI);
        let w = WaveletHistogram::build(&s, d, 6, 0);
        let b = (a + wdt).min(HI);
        let q = RangeQuery::new(a, b);
        prop_assert!((w.selectivity(&q) - (b - a) / (HI - LO)).abs() < 1e-9);
    }

    #[test]
    fn histograms_agree_on_point_free_regions(s in samples()) {
        // A query over a region with no samples and no bin boundary mass
        // must estimate at most the uniform share any bin spreads into it.
        let d = Domain::new(LO, HI);
        let hist = equi_width(&s, d, 8);
        let q = RangeQuery::new(LO, HI);
        let full = hist.selectivity(&q);
        prop_assert!((full - 1.0).abs() < 1e-9);
        // Monotonicity under nesting for a random prefix.
        let half = hist.selectivity(&RangeQuery::new(LO, (LO + HI) / 2.0));
        prop_assert!(half <= full + 1e-12);
    }
}
