#!/usr/bin/env bash
# Full verification gate: release build, test suite, and zero-warning
# clippy. Run from anywhere; operates on the workspace root.
#
#   scripts/check.sh          # standard gate (includes a 1-rep bench smoke)
#   scripts/check.sh --simd   # additionally run the full-rep perf harness
#                             # and hold it to the PR 7 SIMD gates: kernel
#                             # batch >= 4x / histogram seq >= 1.2x vs the
#                             # BENCH_PR5 scalar baseline, with per-lane
#                             # checksum_bits identical to the default path
set -euo pipefail

cd "$(dirname "$0")/.."

simd=0
for arg in "$@"; do
    case "$arg" in
        --simd) simd=1 ;;
        *) echo "unknown option $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> chaos gate (fixed-seed chaos tests under SELEST_JOBS=1 and SELEST_JOBS=7)"
# The chaos suite (tests/chaos_parallel.rs) already ran once above under the
# default worker count; the gate pins the two interesting extremes — inline
# single-worker execution and an oversubscribed pool — at the fixed default
# seed. scripts/chaos_sweep.sh widens the seed coverage on demand.
SELEST_JOBS=1 cargo test -q --test chaos_parallel
SELEST_JOBS=7 cargo test -q --test chaos_parallel

echo "==> crash-recovery gate (fixed-seed durability tests under SELEST_JOBS=1 and SELEST_JOBS=7)"
# tests/durability.rs walks every CrashPlan injection point and asserts
# reopen lands on a committed state with a healthy fsck; the two worker
# counts pin the byte-determinism of snapshot/journal/compaction output.
# scripts/chaos_sweep.sh --crash widens the seed coverage on demand.
SELEST_JOBS=1 cargo test -q --test durability
SELEST_JOBS=7 cargo test -q --test durability

echo "==> cargo build --benches (criterion targets)"
cargo build -p bench --benches

echo "==> bench harness smoke run (scratch output; BENCH_PR5.json untouched)"
scripts/bench.sh --smoke --out target/bench_smoke.json
test -s target/bench_smoke.json

echo "==> bench_compare vs committed baseline (structure + checksums; generous timing gate)"
# 1-rep smoke timings are noisy, so the ratio is deliberately loose and only
# applies above 2ms; the checksum, structure, and fault-overhead gates are
# exact (the <= 5% fault-free-overhead gate applies to full-mode files — the
# committed baseline here — not to 1-rep smoke noise). The smoke file also
# carries the per-lane rows, so the --simd bit-identity gate is exact even
# here; the timing-based speedup gates need the full-rep run below.
scripts/bench_compare.sh BENCH_PR5.json target/bench_smoke.json \
    --max-ratio 50 --min-us 2000 --checksum-tol 1e-9 --simd

echo "==> serving bench smoke run (scratch output; BENCH_PR8.json untouched)"
./target/release/selest serve --bench --smoke --out target/bench_serving_smoke.json
test -s target/bench_serving_smoke.json

echo "==> serving gate vs committed BENCH_PR8.json (checksum identity + tail/scaling)"
# Both files must serve estimates bit-identical to their own sequential
# reference at every thread count (the smoke run proves the live build,
# the committed artifact proves the cited numbers). Scaling and tail
# gates apply to the committed full-mode artifact only — 20-op smoke
# timings on a busy 1-core box cannot support a latency threshold.
scripts/bench_compare.sh BENCH_PR8.json target/bench_serving_smoke.json --serving

echo "==> ingest bench smoke run (scratch output; BENCH_PR9.json untouched)"
./target/release/selest ingest --bench --smoke --out target/bench_ingest_smoke.json
test -s target/bench_ingest_smoke.json

echo "==> incremental gate vs committed BENCH_PR9.json (rank bound + bit-identity + refresh speedup)"
# Correctness gates (merged-sketch rank bound, zero-update bit-identity)
# are exact in both files; the >= 10x refresh speedup and the
# staleness-republish liveness gates apply to the committed full-mode
# artifact only — smoke timings on a busy 1-core box are noise.
scripts/bench_compare.sh BENCH_PR9.json target/bench_ingest_smoke.json --incremental

echo "==> overload bench smoke run (scratch output; BENCH_PR10.json untouched)"
./target/release/selest serve --bench --overload --smoke --out target/bench_overload_smoke.json
test -s target/bench_overload_smoke.json

echo "==> overload gate vs committed BENCH_PR10.json (response identity + brownout goodput win)"
# Per-response checksum identity (every unshed slot bit-validated against
# its serving rung's reference) is exact in both files. The brownout-win
# gates — within-SLO goodput >= 2x the refuse-only baseline at 4x load,
# brownout p999 under the SLO cap — apply to the committed full-mode
# artifact only: a smoke run's load is too light to saturate anything.
scripts/bench_compare.sh BENCH_PR10.json target/bench_overload_smoke.json --overload

if [ "$simd" = 1 ]; then
    echo "==> SIMD determinism sweep (lanes x jobs, byte-identical)"
    cargo test -q --test simd_kernels
    echo "==> allocation-free batch gate (counting allocator)"
    cargo test -q --test alloc_free
    echo "==> committed-baseline speedup gates (BENCH_PR5 vs BENCH_PR7, deterministic)"
    # File-vs-file comparison of the committed artifacts: never flaky, and
    # it is the artifact the README/DESIGN claims cite. Kernel batch rows
    # must hold >= 4x and every ewh/edh/mdh seq row >= 1.2x.
    scripts/bench_compare.sh BENCH_PR5.json BENCH_PR7.json \
        --max-ratio 3 --min-us 100 --checksum-tol 1e-9 \
        --min-speedup-kernel-batch 4 --min-speedup-hist-seq 1.2 --simd
    echo "==> fresh full-rep perf run + SIMD gates vs BENCH_PR5.json"
    # The fresh-measurement gate covers only rows with real noise margin:
    # the kernel batch rows run 5.8-7.3x vs the 4x threshold. The 2-4us
    # histogram seq rows jitter +-30% between runs on a busy 1-core box,
    # so their speedup is gated on the committed artifact above instead.
    scripts/bench.sh --out target/bench_simd.json
    scripts/bench_compare.sh BENCH_PR5.json target/bench_simd.json \
        --max-ratio 3 --min-us 100 --checksum-tol 1e-9 \
        --min-speedup-kernel-batch 4 --simd
fi

echo "==> all checks passed"
