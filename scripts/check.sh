#!/usr/bin/env bash
# Full verification gate: release build, test suite, and zero-warning
# clippy. Run from anywhere; operates on the workspace root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --benches (criterion targets)"
cargo build -p bench --benches

echo "==> bench harness smoke run (scratch output; BENCH_PR2.json untouched)"
scripts/bench.sh --smoke --out target/bench_smoke.json
test -s target/bench_smoke.json

echo "==> all checks passed"
