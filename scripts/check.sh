#!/usr/bin/env bash
# Full verification gate: release build, test suite, and zero-warning
# clippy. Run from anywhere; operates on the workspace root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> chaos gate (fixed-seed chaos tests under SELEST_JOBS=1 and SELEST_JOBS=7)"
# The chaos suite (tests/chaos_parallel.rs) already ran once above under the
# default worker count; the gate pins the two interesting extremes — inline
# single-worker execution and an oversubscribed pool — at the fixed default
# seed. scripts/chaos_sweep.sh widens the seed coverage on demand.
SELEST_JOBS=1 cargo test -q --test chaos_parallel
SELEST_JOBS=7 cargo test -q --test chaos_parallel

echo "==> crash-recovery gate (fixed-seed durability tests under SELEST_JOBS=1 and SELEST_JOBS=7)"
# tests/durability.rs walks every CrashPlan injection point and asserts
# reopen lands on a committed state with a healthy fsck; the two worker
# counts pin the byte-determinism of snapshot/journal/compaction output.
# scripts/chaos_sweep.sh --crash widens the seed coverage on demand.
SELEST_JOBS=1 cargo test -q --test durability
SELEST_JOBS=7 cargo test -q --test durability

echo "==> cargo build --benches (criterion targets)"
cargo build -p bench --benches

echo "==> bench harness smoke run (scratch output; BENCH_PR5.json untouched)"
scripts/bench.sh --smoke --out target/bench_smoke.json
test -s target/bench_smoke.json

echo "==> bench_compare vs committed baseline (structure + checksums; generous timing gate)"
# 1-rep smoke timings are noisy, so the ratio is deliberately loose and only
# applies above 2ms; the checksum, structure, and fault-overhead gates are
# exact (the <= 5% fault-free-overhead gate applies to full-mode files — the
# committed baseline here — not to 1-rep smoke noise).
scripts/bench_compare.sh BENCH_PR5.json target/bench_smoke.json \
    --max-ratio 50 --min-us 2000 --checksum-tol 1e-9

echo "==> all checks passed"
