#!/usr/bin/env bash
# Full verification gate: release build, test suite, and zero-warning
# clippy. Run from anywhere; operates on the workspace root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> all checks passed"
