#!/usr/bin/env bash
# Full verification gate: release build, test suite, and zero-warning
# clippy. Run from anywhere; operates on the workspace root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --benches (criterion targets)"
cargo build -p bench --benches

echo "==> bench harness smoke run (scratch output; BENCH_PR4.json untouched)"
scripts/bench.sh --smoke --out target/bench_smoke.json
test -s target/bench_smoke.json

echo "==> bench_compare vs committed baseline (structure + checksums; generous timing gate)"
# 1-rep smoke timings are noisy, so the ratio is deliberately loose and only
# applies above 2ms; the checksum and structure gates are exact.
scripts/bench_compare.sh BENCH_PR4.json target/bench_smoke.json \
    --max-ratio 50 --min-us 2000 --checksum-tol 1e-9

echo "==> all checks passed"
