#!/usr/bin/env bash
# Diff two perf baselines (see scripts/bench.sh / crates/bench/src/bin/perf.rs)
# and fail on regression:
#
#   scripts/bench_compare.sh BASELINE.json NEW.json [options]
#
#   --max-ratio R      fail if build/seq/batch time grew beyond R x baseline
#                      (default 3; CI smoke runs use a generous ratio since
#                      1-rep timings are noisy)
#   --min-us US        only apply the timing gate when the baseline timing
#                      is at least US microseconds (default 100; guards the
#                      ratio check against sub-noise-floor measurements)
#   --checksum-tol T   fail if a row's query-file checksum differs from the
#                      baseline by more than T relative (default 1e-9 —
#                      checksums are deterministic across reps and worker
#                      counts, so any real drift is a semantic change)
#   --fault-overhead-max R
#                      fail if a full-mode file reports a fault_overhead
#                      ratio (fault-free try_map_chunks vs map_chunks)
#                      above R (default 1.05). Smoke files are exempt —
#                      1-rep timings cannot support a 5% gate — but must
#                      still carry the section when the baseline does.
#   --min-speedup-kernel-batch R
#                      fail unless every kernel-* row's batch_us improved
#                      by at least R x over the baseline (default 0 = off;
#                      the PR 7 SIMD gate runs this at 4 against the
#                      BENCH_PR5 scalar baseline)
#   --min-speedup-hist-seq R
#                      fail unless every ewh/edh/mdh row's seq_us improved
#                      by at least R x over the baseline (default 0 = off;
#                      the PR 7 gate runs this at 1.2 — see DESIGN.md §13
#                      for why the 10-bin fixtures Amdahl-cap this short of
#                      the kernel-path gains)
#   --simd             fail unless the new file's per-lane checksum rows
#                      (`name@lanes=scalar|4|8`) are present and carry
#                      checksum_bits exactly equal to their parent row's —
#                      i.e. every lane width is bit-identical to the
#                      default path
#   --serving          compare serving-bench files (selest serve --bench)
#                      instead of perf baselines. Within each file, every
#                      concurrency run's checksum_bits must equal the
#                      file's sequential-reference checksum_bits exactly
#                      (served estimates bit-identical to the sequential
#                      path at every thread count), and every baseline
#                      thread count must exist in the new file. Full-mode
#                      files additionally gate closed-loop scaling and
#                      absolute tail latency; smoke files are noise and
#                      only identity/structure-checked. Smoke and full
#                      runs use different sample sizes, so checksums are
#                      compared within a file, never across files.
#   --min-scaling R    (--serving) fail if a full-mode file's
#                      ratio_8_over_1 is below R (default 3 — the PR 8
#                      acceptance floor for 1 -> 8 closed-loop clients)
#   --p99-max-us US    (--serving) fail if any full-mode run's p99
#                      exceeds US microseconds (default 50000)
#   --p999-max-us US   (--serving) fail if any full-mode run's p999
#                      exceeds US microseconds (default 250000 — the tail
#                      must stay bounded while background ANALYZE
#                      rebuilds publish mid-run)
#   --incremental      compare ingest-bench files (selest ingest --bench)
#                      instead of perf baselines. Both files must carry
#                      all four sections (refresh/merge/snapshot/ingest)
#                      and pass the mode-independent correctness gates:
#                      the merged sketch's realized rank error within its
#                      bound (within_bound true) and zero-update
#                      snapshots bit-identical end to end (bit_identical
#                      true). Full-mode files additionally gate the
#                      refresh speedup and must show at least one
#                      staleness-forced republish with live readers;
#                      smoke timings are noise and only
#                      structure/correctness-checked.
#   --min-refresh-speedup R
#                      (--incremental) fail if a full-mode file's
#                      incremental-refresh speedup over the from-scratch
#                      re-ANALYZE is below R (default 10 — the PR 9
#                      acceptance floor at n = 100k)
#   --overload         compare overload-bench files (selest serve --bench
#                      --overload, BENCH_PR10.json) instead of perf
#                      baselines. Both files must parse their saturating
#                      closed-loop runs and report zero per-response
#                      checksum mismatches (the bench bit-validates every
#                      unshed slot against its serving rung's reference
#                      before writing the artifact, so a nonzero count —
#                      or a missing field — is a correctness failure in
#                      any mode). Full-mode files additionally gate the
#                      brownout win: within-SLO goodput at 4x load must
#                      beat the refuse-only baseline by the ratio below,
#                      with the brownout p999 under the SLO cap recorded
#                      in the file. Smoke timings are noise and only
#                      structure/identity-checked.
#   --min-goodput-ratio R
#                      (--overload) fail if a full-mode file's
#                      goodput_ratio_4x is below R (default 2 — the PR 10
#                      acceptance floor for brownout vs refuse-only)
#
# Structure gate: every (fixture, estimator) row of the baseline must exist
# in the new file, and if the baseline has a catalog or fault_overhead
# section the new file must too. Extra rows in the new file are allowed
# (baselines only grow).
set -euo pipefail

if [ $# -lt 2 ]; then
    echo "usage: $0 BASELINE.json NEW.json [--max-ratio R] [--min-us US] [--checksum-tol T]" >&2
    exit 2
fi

baseline=$1
new=$2
shift 2
max_ratio=3
min_us=100
checksum_tol=1e-9
fault_overhead_max=1.05
min_speedup_kernel_batch=0
min_speedup_hist_seq=0
simd_gate=0
serving=0
incremental=0
overload=0
min_scaling=3
p99_max_us=50000
p999_max_us=250000
min_refresh_speedup=10
min_goodput_ratio=2
while [ $# -gt 0 ]; do
    case "$1" in
        --max-ratio)          max_ratio=$2; shift 2 ;;
        --min-us)             min_us=$2; shift 2 ;;
        --checksum-tol)       checksum_tol=$2; shift 2 ;;
        --fault-overhead-max) fault_overhead_max=$2; shift 2 ;;
        --min-speedup-kernel-batch) min_speedup_kernel_batch=$2; shift 2 ;;
        --min-speedup-hist-seq)     min_speedup_hist_seq=$2; shift 2 ;;
        --simd)               simd_gate=1; shift ;;
        --serving)            serving=1; shift ;;
        --incremental)        incremental=1; shift ;;
        --min-scaling)        min_scaling=$2; shift 2 ;;
        --p99-max-us)         p99_max_us=$2; shift 2 ;;
        --p999-max-us)        p999_max_us=$2; shift 2 ;;
        --min-refresh-speedup) min_refresh_speedup=$2; shift 2 ;;
        --overload)           overload=1; shift ;;
        --min-goodput-ratio)  min_goodput_ratio=$2; shift 2 ;;
        *) echo "unknown option $1" >&2; exit 2 ;;
    esac
done

for f in "$baseline" "$new"; do
    if [ ! -s "$f" ]; then
        echo "bench_compare: $f missing or empty" >&2
        exit 1
    fi
done

if [ "$overload" = 1 ]; then
    awk -v min_ratio="$min_goodput_ratio" \
        -v baseline="$baseline" -v new_file="$new" '
function field_num(line, key,    r) {
    if (match(line, "\"" key "\": *-?[0-9.eE+-]+") == 0) return "NA"
    r = substr(line, RSTART, RLENGTH)
    sub("\"" key "\": *", "", r)
    return r + 0
}
function field_str(line, key,    r) {
    if (match(line, "\"" key "\": *\"[^\"]*\"") == 0) return "NA"
    r = substr(line, RSTART, RLENGTH)
    sub("\"" key "\": *\"", "", r)
    sub("\"$", "", r)
    return r
}
{
    f = FILENAME
    if (index($0, "\"load\":") > 0 && index($0, "\"goodput_per_sec\":") > 0) {
        # One saturating closed-loop run: (load multiple, serving mode).
        key = f "|" field_num($0, "load") "x" field_str($0, "mode")
        runs[key] = 1
        run_count[f]++
        run_mism[key] = field_num($0, "mismatches")
        keys_of[f] = keys_of[f] "\n" key
    } else if (index($0, "\"mode\":") > 0 && file_mode[f] == "") {
        file_mode[f] = field_str($0, "mode")
    }
    if (index($0, "\"goodput_ratio_4x\":") > 0) {
        ratio[f] = field_num($0, "goodput_ratio_4x")
        p999[f] = field_num($0, "p999_us_brownout_4x")
        p999_cap[f] = field_num($0, "p999_cap_us")
        gate_mism[f] = field_num($0, "mismatches")
    }
}
END {
    fails = 0
    split(baseline " " new_file, files, " ")
    for (fi = 1; fi <= 2; fi++) {
        f = files[fi]
        if (run_count[f] + 0 == 0) {
            printf "FAIL %s: no overload runs parsed\n", f
            fails++
            continue
        }
        # Identity gate, every mode: the bench bit-validates each unshed
        # response against its rung reference and reports the count; a
        # missing or nonzero count is a correctness failure.
        n = split(keys_of[f], ks, "\n")
        for (i = 1; i <= n; i++) {
            k = ks[i]
            if (k == "") continue
            if (run_mism[k] == "NA" || run_mism[k] + 0 != 0) {
                printf "FAIL %s: run %s reports mismatches=%s (want 0)\n", \
                    f, substr(k, length(f) + 2), run_mism[k]
                fails++
            }
        }
        if (gate_mism[f] == "NA" || gate_mism[f] + 0 != 0) {
            printf "FAIL %s: gates section mismatches=%s (want 0)\n", f, gate_mism[f]
            fails++
        }
        # Brownout-win gates only on full-mode measurements.
        if (file_mode[f] == "full") {
            if (ratio[f] == "NA") {
                printf "FAIL %s: goodput_ratio_4x missing\n", f
                fails++
            } else if (ratio[f] < min_ratio) {
                printf "FAIL %s: goodput_ratio_4x %.2f < %.1f\n", f, ratio[f], min_ratio
                fails++
            }
            if (p999[f] == "NA" || p999_cap[f] == "NA") {
                printf "FAIL %s: brownout p999 / cap missing\n", f
                fails++
            } else if (p999[f] > p999_cap[f]) {
                printf "FAIL %s: brownout p999 %.1fus > cap %.1fus\n", \
                    f, p999[f], p999_cap[f]
                fails++
            }
        }
    }
    # Structure gate: every baseline (load, mode) run must exist in the
    # new file (overload coverage only grows).
    n = split(keys_of[baseline], ks, "\n")
    for (i = 1; i <= n; i++) {
        k = ks[i]
        if (k == "") continue
        cell = substr(k, length(baseline) + 2)
        if (!((new_file "|" cell) in runs)) {
            printf "FAIL %s: run %s missing from %s\n", baseline, cell, new_file
            fails++
        }
    }
    if (fails > 0) {
        printf "bench_compare --overload: %d failure(s) (%s vs %s)\n", fails, baseline, new_file
        exit 1
    }
    printf "bench_compare --overload: %d + %d runs OK (0 response mismatches", \
        run_count[baseline], run_count[new_file]
    printf "; full-mode gates: goodput ratio >= x%.1f at 4x load, p999 under SLO cap)\n", \
        min_ratio
}
' "$baseline" "$new"
    exit $?
fi

if [ "$incremental" = 1 ]; then
    awk -v min_speedup="$min_refresh_speedup" \
        -v baseline="$baseline" -v new_file="$new" '
function field_num(line, key,    r) {
    if (match(line, "\"" key "\": *-?[0-9.eE+-]+") == 0) return "NA"
    r = substr(line, RSTART, RLENGTH)
    sub("\"" key "\": *", "", r)
    return r + 0
}
function field_str(line, key,    r) {
    if (match(line, "\"" key "\": *\"[^\"]*\"") == 0) return "NA"
    r = substr(line, RSTART, RLENGTH)
    sub("\"" key "\": *\"", "", r)
    sub("\"$", "", r)
    return r
}
function field_bool(line, key,    r) {
    if (match(line, "\"" key "\": *(true|false)") == 0) return "NA"
    r = substr(line, RSTART, RLENGTH)
    sub("\"" key "\": *", "", r)
    return r
}
{
    f = FILENAME
    if (index($0, "\"mode\":") > 0) mode[f] = field_str($0, "mode")
    if (index($0, "\"refresh\":") > 0) {
        has_refresh[f] = 1
        speedup[f] = field_num($0, "speedup")
    }
    if (index($0, "\"merge\":") > 0) {
        has_merge[f] = 1
        within[f] = field_bool($0, "within_bound")
        realized[f] = field_num($0, "realized_max_rank_error")
        bound[f] = field_num($0, "rank_error_bound")
    }
    if (index($0, "\"snapshot\":") > 0) {
        has_snapshot[f] = 1
        bitid[f] = field_bool($0, "bit_identical")
    }
    if (index($0, "\"ingest\":") > 0) {
        has_ingest[f] = 1
        republishes[f] = field_num($0, "republishes")
        reader_batches[f] = field_num($0, "reader_batches")
    }
}
END {
    fails = 0
    split(baseline " " new_file, files, " ")
    for (fi = 1; fi <= 2; fi++) {
        f = files[fi]
        if (!has_refresh[f]) { printf "FAIL %s: refresh section missing\n", f; fails++ }
        if (!has_merge[f])   { printf "FAIL %s: merge section missing\n", f; fails++ }
        if (!has_snapshot[f]){ printf "FAIL %s: snapshot section missing\n", f; fails++ }
        if (!has_ingest[f])  { printf "FAIL %s: ingest section missing\n", f; fails++ }
        # Correctness gates hold in every mode: a smoke run may be slow,
        # never wrong.
        if (has_merge[f] && within[f] != "true") {
            printf "FAIL %s: merged sketch rank error %s broke bound %s (within_bound %s)\n", \
                f, realized[f], bound[f], within[f]
            fails++
        }
        if (has_snapshot[f] && bitid[f] != "true") {
            printf "FAIL %s: zero-update snapshot not bit-identical\n", f
            fails++
        }
        # Timing and liveness gates only on full-mode measurements.
        if (mode[f] == "full") {
            if (has_refresh[f] && (speedup[f] == "NA" || speedup[f] < min_speedup)) {
                printf "FAIL %s: refresh speedup %.2f < %.1f\n", f, speedup[f], min_speedup
                fails++
            }
            if (has_ingest[f] && republishes[f] + 0 < 1) {
                printf "FAIL %s: no staleness-forced republish\n", f
                fails++
            }
            if (has_ingest[f] && reader_batches[f] + 0 < 1) {
                printf "FAIL %s: readers served nothing during ingest\n", f
                fails++
            }
        }
    }
    if (fails > 0) {
        printf "bench_compare --incremental: %d failure(s) (%s vs %s)\n", fails, baseline, new_file
        exit 1
    }
    printf "bench_compare --incremental: both files OK (rank bound + bit-identity exact"
    printf "; full-mode gates: refresh speedup >= x%.1f, republishes >= 1)\n", min_speedup
}
' "$baseline" "$new"
    exit $?
fi

if [ "$serving" = 1 ]; then
    awk -v min_scaling="$min_scaling" -v p99_max="$p99_max_us" -v p999_max="$p999_max_us" \
        -v baseline="$baseline" -v new_file="$new" '
function field_num(line, key,    r) {
    if (match(line, "\"" key "\": *-?[0-9.eE+-]+") == 0) return "NA"
    r = substr(line, RSTART, RLENGTH)
    sub("\"" key "\": *", "", r)
    return r + 0
}
function field_str(line, key,    r) {
    if (match(line, "\"" key "\": *\"[^\"]*\"") == 0) return "NA"
    r = substr(line, RSTART, RLENGTH)
    sub("\"" key "\": *\"", "", r)
    sub("\"$", "", r)
    return r
}
function field_raw(line, key,    r) {
    # u64 checksum bits overflow awk doubles; compare as strings.
    if (match(line, "\"" key "\": *-?[0-9]+") == 0) return "NA"
    r = substr(line, RSTART, RLENGTH)
    sub("\"" key "\": *", "", r)
    return r
}
{
    f = FILENAME
    if (index($0, "\"mode\":") > 0) mode[f] = field_str($0, "mode")
    if (index($0, "\"ratio_8_over_1\":") > 0) ratio[f] = field_num($0, "ratio_8_over_1")
    if (index($0, "\"threads\":") > 0 && index($0, "\"checksum_bits\":") > 0) {
        t = field_num($0, "threads")
        runs[f "|" t] = 1
        run_count[f]++
        run_bits[f "|" t] = field_raw($0, "checksum_bits")
        run_p99[f "|" t]  = field_num($0, "p99_us")
        run_p999[f "|" t] = field_num($0, "p999_us")
        threads_of[f] = threads_of[f] " " t
    } else if (index($0, "\"checksum_bits\":") > 0 && index($0, "\"decile\":") == 0) {
        top_bits[f] = field_raw($0, "checksum_bits")
    }
}
END {
    fails = 0
    split(baseline " " new_file, files, " ")
    for (fi = 1; fi <= 2; fi++) {
        f = files[fi]
        if (run_count[f] + 0 == 0) {
            printf "FAIL %s: no concurrency runs parsed\n", f
            fails++
            continue
        }
        if (top_bits[f] == "" || top_bits[f] == "NA") {
            printf "FAIL %s: sequential-reference checksum_bits missing\n", f
            fails++
            continue
        }
        n = split(threads_of[f], ts, " ")
        for (i = 1; i <= n; i++) {
            t = ts[i]
            if (t == "") continue
            # Identity gate: every thread count serves estimates whose
            # Kahan checksum is bit-identical to the sequential path.
            if (run_bits[f "|" t] != top_bits[f]) {
                printf "FAIL %s: threads=%s checksum_bits %s != sequential %s\n", \
                    f, t, run_bits[f "|" t], top_bits[f]
                fails++
            }
            # Tail gates only on full-mode (multi-op) measurements.
            if (mode[f] == "full") {
                if (run_p99[f "|" t] != "NA" && run_p99[f "|" t] > p99_max) {
                    printf "FAIL %s: threads=%s p99 %.1fus > %dus\n", \
                        f, t, run_p99[f "|" t], p99_max
                    fails++
                }
                if (run_p999[f "|" t] != "NA" && run_p999[f "|" t] > p999_max) {
                    printf "FAIL %s: threads=%s p999 %.1fus > %dus\n", \
                        f, t, run_p999[f "|" t], p999_max
                    fails++
                }
            }
        }
        if (mode[f] == "full") {
            if (ratio[f] == "" || ratio[f] == "NA") {
                printf "FAIL %s: scaling section missing\n", f
                fails++
            } else if (ratio[f] < min_scaling) {
                printf "FAIL %s: scaling ratio_8_over_1 %.4f < %.2f\n", \
                    f, ratio[f], min_scaling
                fails++
            }
        }
    }
    # Structure gate: every baseline thread count must exist in the new
    # file (concurrency coverage only grows).
    n = split(threads_of[baseline], ts, " ")
    for (i = 1; i <= n; i++) {
        t = ts[i]
        if (t == "" ) continue
        if (!((new_file "|" t) in runs)) {
            printf "FAIL %s: threads=%s run missing from %s\n", baseline, t, new_file
            fails++
        }
    }
    if (fails > 0) {
        printf "bench_compare --serving: %d failure(s) (%s vs %s)\n", fails, baseline, new_file
        exit 1
    }
    printf "bench_compare --serving: %d + %d runs OK (checksums sequential-identical", \
        run_count[baseline], run_count[new_file]
    printf "; full-mode gates: scaling >= x%.1f, p99 <= %dus, p999 <= %dus)\n", \
        min_scaling, p99_max, p999_max
}
' "$baseline" "$new"
    exit $?
fi

awk -v max_ratio="$max_ratio" -v min_us="$min_us" -v tol="$checksum_tol" \
    -v fault_max="$fault_overhead_max" \
    -v min_kb="$min_speedup_kernel_batch" -v min_hs="$min_speedup_hist_seq" \
    -v simd_gate="$simd_gate" \
    -v baseline="$baseline" -v new_file="$new" '
function field_num(line, key,    r) {
    # Extract the numeric value following "key": in a JSON row line.
    if (match(line, "\"" key "\": *-?[0-9.eE+-]+") == 0) return "NA"
    r = substr(line, RSTART, RLENGTH)
    sub("\"" key "\": *", "", r)
    return r + 0
}
function field_str(line, key,    r) {
    if (match(line, "\"" key "\": *\"[^\"]*\"") == 0) return "NA"
    r = substr(line, RSTART, RLENGTH)
    sub("\"" key "\": *\"", "", r)
    sub("\"$", "", r)
    return r
}
function field_raw(line, key,    r) {
    # Like field_num but returns the literal digit string: u64 checksum
    # bits overflow awk doubles, so they are compared as strings.
    if (match(line, "\"" key "\": *-?[0-9]+") == 0) return "NA"
    r = substr(line, RSTART, RLENGTH)
    sub("\"" key "\": *", "", r)
    return r
}
function abs(x) { return x < 0 ? -x : x }
{
    in_base = (FILENAME == baseline)
    if (index($0, "\"file\":") > 0) {
        if (in_base) base_fixture = field_str($0, "file")
        else          new_fixture = field_str($0, "file")
    }
    if (index($0, "\"catalog\":") > 0) {
        if (in_base) base_has_catalog = 1
        else          new_has_catalog = 1
    }
    if (index($0, "\"mode\":") > 0) {
        if (in_base) base_mode = field_str($0, "mode")
        else          new_mode = field_str($0, "mode")
    }
    if (index($0, "\"fault_overhead\":") > 0) {
        if (in_base) {
            base_has_fault = 1
            base_fault_ratio = field_num($0, "overhead_ratio")
        } else {
            new_has_fault = 1
            new_fault_ratio = field_num($0, "overhead_ratio")
        }
    }
    if (index($0, "\"name\":") > 0 && index($0, "\"build_us\":") > 0) {
        if (in_base) {
            key = base_fixture "|" field_str($0, "name")
            seen[key] = 1
            b_build[key] = field_num($0, "build_us")
            b_seq[key]   = field_num($0, "seq_us")
            b_batch[key] = field_num($0, "batch_us")
            b_sum[key]   = field_num($0, "checksum")
        } else {
            key = new_fixture "|" field_str($0, "name")
            n_seen[key] = 1
            n_build[key] = field_num($0, "build_us")
            n_seq[key]   = field_num($0, "seq_us")
            n_batch[key] = field_num($0, "batch_us")
            n_sum[key]   = field_num($0, "checksum")
            n_bits[key]  = field_raw($0, "checksum_bits")
        }
    }
    # Per-lane sub-rows (`name@lanes=<label>`, no build_us): collect the
    # new file'"'"'s bit patterns for the --simd identity gate.
    if (!in_base && index($0, "\"name\":") > 0) {
        nm = field_str($0, "name")
        if (index(nm, "@lanes=") > 0) {
            lane_bits[new_fixture "|" nm] = field_raw($0, "checksum_bits")
            lane_count++
        }
    }
}
END {
    fails = 0
    rows = 0
    for (key in seen) {
        rows++
        if (!(key in n_seen)) {
            printf "FAIL %s: row missing from %s\n", key, new_file
            fails++
            continue
        }
        denom = abs(b_sum[key]); if (denom < 1e-300) denom = 1e-300
        drift = abs(n_sum[key] - b_sum[key]) / denom
        if (drift > tol) {
            printf "FAIL %s: checksum drift %.3e > %.1e (%.12f -> %.12f)\n", \
                key, drift, tol, b_sum[key], n_sum[key]
            fails++
        }
        # Timing gate per measurement, only above the noise floor.
        split("build seq batch", dims, " ")
        for (d = 1; d <= 3; d++) {
            dim = dims[d]
            old = (dim == "build") ? b_build[key] : (dim == "seq") ? b_seq[key] : b_batch[key]
            cur = (dim == "build") ? n_build[key] : (dim == "seq") ? n_seq[key] : n_batch[key]
            if (old == "NA" || cur == "NA" || old < min_us) continue
            if (cur > max_ratio * old) {
                printf "FAIL %s: %s_us %.1f -> %.1f (> %.1fx baseline)\n", \
                    key, dim, old, cur, max_ratio
                fails++
            }
        }
    }
    if (rows == 0) {
        printf "FAIL no estimator rows parsed from %s\n", baseline
        fails++
    }
    if (base_has_catalog && !new_has_catalog) {
        printf "FAIL catalog section missing from %s\n", new_file
        fails++
    }
    if (base_has_fault && !new_has_fault) {
        printf "FAIL fault_overhead section missing from %s\n", new_file
        fails++
    }
    # Fault-free-path overhead gate: full-mode (multi-rep) files must keep
    # try_map_chunks within fault_max of map_chunks. Smoke timings are
    # 1-rep noise and only structure-checked.
    if (base_has_fault && base_mode == "full" && base_fault_ratio != "NA" && \
        base_fault_ratio > fault_max) {
        printf "FAIL %s: fault_overhead ratio %.4f > %.4f\n", \
            baseline, base_fault_ratio, fault_max
        fails++
    }
    if (new_has_fault && new_mode == "full" && new_fault_ratio != "NA" && \
        new_fault_ratio > fault_max) {
        printf "FAIL %s: fault_overhead ratio %.4f > %.4f\n", \
            new_file, new_fault_ratio, fault_max
        fails++
    }
    # Minimum-speedup gates (off unless a positive ratio was requested).
    # Kernel rows gate on the batched merge scan; histogram rows gate on
    # the per-query seq path the CDF-difference rewrite targets.
    for (key in seen) {
        name = key; sub(/^[^|]*\|/, "", name)
        if (min_kb > 0 && name ~ /^kernel-/ && (key in n_seen) && \
            b_batch[key] != "NA" && n_batch[key] != "NA" && n_batch[key] > 0) {
            if (b_batch[key] < min_kb * n_batch[key]) {
                printf "FAIL %s: batch speedup x%.2f < x%.2f (%.1fus -> %.1fus)\n", \
                    key, b_batch[key] / n_batch[key], min_kb, b_batch[key], n_batch[key]
                fails++
            }
        }
        if (min_hs > 0 && name ~ /^(ewh|edh|mdh)/ && (key in n_seen) && \
            b_seq[key] != "NA" && n_seq[key] != "NA" && n_seq[key] > 0) {
            if (b_seq[key] < min_hs * n_seq[key]) {
                printf "FAIL %s: seq speedup x%.2f < x%.2f (%.1fus -> %.1fus)\n", \
                    key, b_seq[key] / n_seq[key], min_hs, b_seq[key], n_seq[key]
                fails++
            }
        }
    }
    # SIMD identity gate: every per-lane sub-row in the new file must
    # string-match its parent row'"'"'s checksum_bits exactly.
    if (simd_gate) {
        if (lane_count == 0) {
            printf "FAIL --simd: no @lanes= rows found in %s\n", new_file
            fails++
        }
        for (lkey in lane_bits) {
            parent = lkey; sub(/@lanes=.*$/, "", parent)
            if (!(parent in n_bits) || n_bits[parent] == "NA") {
                printf "FAIL --simd %s: parent row checksum_bits missing\n", lkey
                fails++
            } else if (lane_bits[lkey] == "NA") {
                printf "FAIL --simd %s: lane row carries no checksum_bits\n", lkey
                fails++
            } else if (lane_bits[lkey] != n_bits[parent]) {
                printf "FAIL --simd %s: checksum_bits %s != parent %s\n", \
                    lkey, lane_bits[lkey], n_bits[parent]
                fails++
            }
        }
    }
    if (fails > 0) {
        printf "bench_compare: %d failure(s) (%s vs %s)\n", fails, baseline, new_file
        exit 1
    }
    printf "bench_compare: %d rows OK (checksum tol %.1e, timing ratio %.1fx above %dus", \
        rows, tol, max_ratio, min_us
    if (min_kb > 0) printf ", kernel batch >= x%.1f", min_kb
    if (min_hs > 0) printf ", hist seq >= x%.1f", min_hs
    if (simd_gate) printf ", %d lane rows bit-identical", lane_count
    printf ")\n"
}
' "$baseline" "$new"
