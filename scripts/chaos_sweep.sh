#!/usr/bin/env bash
# Seed sweep for the chaos suite (tests/chaos_parallel.rs): run the full
# fault-injection battery across a range of SELEST_CHAOS_SEED values and
# the two interesting worker counts (inline single-worker and an
# oversubscribed pool). The suite's assertions are seed-independent —
# every victim set drawn by the FaultInjector must quarantine cleanly and
# every survivor must stay bit-identical — so any failing combination is a
# real bug, and this script prints it as a one-line repro command.
#
#   scripts/chaos_sweep.sh             # seeds 0..7 x jobs {1, 7}
#   scripts/chaos_sweep.sh --seeds N   # seeds 0..N-1
#   scripts/chaos_sweep.sh --jobs "1 2 7"
#   scripts/chaos_sweep.sh --crash     # sweep crash-recovery seeds instead
#
# --crash switches the sweep to the durability suite (tests/durability.rs):
# each SELEST_CRASH_SEED arms a CrashPlan at one of the write path's I/O
# boundaries, and the sweep test itself additionally walks every
# enumerated crash point, so the seed range here mostly varies the
# corruption-property cases (truncation cuts, bit-flip sites).
set -euo pipefail

cd "$(dirname "$0")/.."

n_seeds=8
jobs_list="1 7"
suite=chaos_parallel
seed_var=SELEST_CHAOS_SEED
while [ $# -gt 0 ]; do
    case "$1" in
        --seeds) n_seeds=$2; shift 2 ;;
        --jobs)  jobs_list=$2; shift 2 ;;
        --crash) suite=durability; seed_var=SELEST_CRASH_SEED; shift ;;
        *) echo "unknown option $1" >&2; exit 2 ;;
    esac
done

echo "==> building $suite suite"
cargo test -q --test "$suite" --no-run

fails=0
runs=0
for seed in $(seq 0 $((n_seeds - 1))); do
    for j in $jobs_list; do
        runs=$((runs + 1))
        if env "$seed_var=$seed" SELEST_JOBS=$j \
            cargo test -q --test "$suite" >/dev/null 2>&1; then
            echo "ok   seed=$seed jobs=$j"
        else
            fails=$((fails + 1))
            echo "FAIL seed=$seed jobs=$j"
            echo "     repro: $seed_var=$seed SELEST_JOBS=$j cargo test --test $suite"
        fi
    done
done

if [ "$fails" -gt 0 ]; then
    echo "chaos_sweep: $fails of $runs combinations failed"
    exit 1
fi
echo "chaos_sweep: all $runs seed/jobs combinations passed"
