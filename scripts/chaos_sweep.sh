#!/usr/bin/env bash
# Seed sweep for the chaos suite (tests/chaos_parallel.rs): run the full
# fault-injection battery across a range of SELEST_CHAOS_SEED values and
# the two interesting worker counts (inline single-worker and an
# oversubscribed pool). The suite's assertions are seed-independent —
# every victim set drawn by the FaultInjector must quarantine cleanly and
# every survivor must stay bit-identical — so any failing combination is a
# real bug, and this script prints it as a one-line repro command.
#
#   scripts/chaos_sweep.sh             # seeds 0..7 x jobs {1, 7}
#   scripts/chaos_sweep.sh --seeds N   # seeds 0..N-1
#   scripts/chaos_sweep.sh --jobs "1 2 7"
#   scripts/chaos_sweep.sh --crash     # sweep crash-recovery seeds instead
#   scripts/chaos_sweep.sh --overload  # sweep the overload chaos test
#
# --crash switches the sweep to the durability suite (tests/durability.rs):
# each SELEST_CRASH_SEED arms a CrashPlan at one of the write path's I/O
# boundaries, and the sweep test itself additionally walks every
# enumerated crash point, so the seed range here mostly varies the
# corruption-property cases (truncation cuts, bit-flip sites).
#
# --overload switches the sweep to the overload chaos test
# (tests/serving_engine.rs): each (SELEST_OVERLOAD_SEED,
# SELEST_OVERLOAD_CLIENTS, SELEST_OVERLOAD_SLO_US) combination runs
# saturating readers against a live publisher and an injected-failure
# column whose breaker trips. The invariant is timing-independent —
# every slot is a rung-exact value or a typed refusal — so any failing
# (seed, clients, slo) triple is a real bug, printed as a repro command.
# --clients and --slos override the swept grids.
set -euo pipefail

cd "$(dirname "$0")/.."

n_seeds=8
jobs_list="1 7"
clients_list="2 6"
slos_list="200 2000 50000"
suite=chaos_parallel
seed_var=SELEST_CHAOS_SEED
overload=0
while [ $# -gt 0 ]; do
    case "$1" in
        --seeds)    n_seeds=$2; shift 2 ;;
        --jobs)     jobs_list=$2; shift 2 ;;
        --clients)  clients_list=$2; shift 2 ;;
        --slos)     slos_list=$2; shift 2 ;;
        --crash)    suite=durability; seed_var=SELEST_CRASH_SEED; shift ;;
        --overload) suite=serving_engine; seed_var=SELEST_OVERLOAD_SEED; overload=1; shift ;;
        *) echo "unknown option $1" >&2; exit 2 ;;
    esac
done

if [ "$overload" = 1 ]; then
    echo "==> building $suite suite"
    cargo test -q --test "$suite" --no-run

    fails=0
    runs=0
    for seed in $(seq 0 $((n_seeds - 1))); do
        for c in $clients_list; do
            for slo in $slos_list; do
                runs=$((runs + 1))
                if env SELEST_OVERLOAD_SEED=$seed SELEST_OVERLOAD_CLIENTS=$c \
                    SELEST_OVERLOAD_SLO_US=$slo \
                    cargo test -q --test "$suite" overload_chaos >/dev/null 2>&1; then
                    echo "ok   seed=$seed clients=$c slo_us=$slo"
                else
                    fails=$((fails + 1))
                    echo "FAIL seed=$seed clients=$c slo_us=$slo"
                    echo "     repro: SELEST_OVERLOAD_SEED=$seed" \
                         "SELEST_OVERLOAD_CLIENTS=$c SELEST_OVERLOAD_SLO_US=$slo" \
                         "cargo test --test $suite overload_chaos"
                fi
            done
        done
    done

    if [ "$fails" -gt 0 ]; then
        echo "chaos_sweep --overload: $fails of $runs combinations failed"
        exit 1
    fi
    echo "chaos_sweep --overload: all $runs (seed, clients, slo) combinations passed"
    exit 0
fi

echo "==> building $suite suite"
cargo test -q --test "$suite" --no-run

fails=0
runs=0
for seed in $(seq 0 $((n_seeds - 1))); do
    for j in $jobs_list; do
        runs=$((runs + 1))
        if env "$seed_var=$seed" SELEST_JOBS=$j \
            cargo test -q --test "$suite" >/dev/null 2>&1; then
            echo "ok   seed=$seed jobs=$j"
        else
            fails=$((fails + 1))
            echo "FAIL seed=$seed jobs=$j"
            echo "     repro: $seed_var=$seed SELEST_JOBS=$j cargo test --test $suite"
        fi
    done
done

if [ "$fails" -gt 0 ]; then
    echo "chaos_sweep: $fails of $runs combinations failed"
    exit 1
fi
echo "chaos_sweep: all $runs seed/jobs combinations passed"
