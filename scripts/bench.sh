#!/usr/bin/env bash
# Tracked perf baseline: build the release perf harness and time the
# standard fixtures (estimator build + query-file throughput, sequential
# per-query vs. batched merge scan vs. allocation-free batch_into vs.
# parallel chunked evaluation, plus one batch row per SELEST_LANES width
# with its checksum bits), plus the suite-build section (full estimator
# suite over one 100k column, legacy per-estimator construction vs. one
# shared PreparedColumn) and the fault-overhead section (fault-free
# try_map_chunks vs map_chunks on the chunked batch workload, gated <= 5%
# in full mode).
#
#   scripts/bench.sh                 # full run, writes BENCH_PR7.json
#   scripts/bench.sh --smoke         # 1-rep CI smoke run
#   scripts/bench.sh --out FILE      # alternative output path
#   scripts/bench.sh --jobs N        # engine worker count
#
# The JSON artifact is committed (BENCH_PR7.json; BENCH_PR5.json is the
# pre-SIMD scalar baseline the PR 7 speedup gates compare against) so the
# repo's perf trajectory stays diffable across PRs. Smoke runs should
# point --out at a scratch path to avoid clobbering the committed baseline
# with 1-rep noise.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release -p bench --bin perf"
cargo build --release -p bench --bin perf

echo "==> perf $*"
./target/release/perf "$@"
